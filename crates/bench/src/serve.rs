//! Seeded multi-client closed-loop workload against the
//! [`AnalysisService`] — the service-layer counterpart of the chaos
//! sweep.
//!
//! N client threads each issue a deterministic stream of mixed kernel
//! requests (subscripted-subscript kernels on their small datasets) in
//! a closed loop: submit, wait, record latency, repeat. The workload
//! runs in two phases over the same request mix — a **cold** phase that
//! populates the sharded verdict cache and a **warm** phase that must
//! be served from it — with an optional mid-run kill-a-worker fault
//! injection during the warm phase. Every response's checksum is
//! compared against the kernel's serial golden checksum; any divergence
//! is an incorrect dispatch and fails the run.
//!
//! The report carries throughput, latency quantiles, per-phase cache
//! hit rates, shed/degradation counters, and the in-flight high-water
//! mark (the acceptance bar asks for ≥8 requests genuinely in flight).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use subsub_failpoint::{self as failpoint, Arm, FailPlan, Fire};
use subsub_kernels::common::close;
use subsub_service::{AnalysisService, Outcome, Payload, Request, ServiceConfig, ShardStats};
use subsub_sparse::rng::Rng64;

/// The request mix: subscripted-subscript kernels whose guarded path
/// exercises inspection, plus one regular kernel for contrast. All on
/// the small `test` datasets so a smoke run stays fast.
pub const SERVE_MIX: &[(&str, &str)] = &[
    ("AMGmk", "test"),
    ("CHOLMOD-Supernodal", "test"),
    ("SDDMM", "test"),
    ("UA(transf)", "test"),
    ("CG", "test"),
    ("heat-3d", "test"),
];

/// Workload shape.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Workload seed (client streams derive from it).
    pub seed: u64,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests per client per phase.
    pub requests_per_client: usize,
    /// Inject a worker-killing panic mid-way through the warm phase.
    pub kill_worker: bool,
    /// Service tunables.
    pub service: ServiceConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            seed: 0x5eed_5e47,
            clients: 12,
            requests_per_client: 16,
            kill_worker: true,
            service: ServiceConfig::default(),
        }
    }
}

/// Latency quantiles in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyQuantiles {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
}

fn quantiles(mut samples: Vec<u64>) -> LatencyQuantiles {
    if samples.is_empty() {
        return LatencyQuantiles::default();
    }
    samples.sort_unstable();
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
    LatencyQuantiles {
        p50_us: at(0.50),
        p90_us: at(0.90),
        p99_us: at(0.99),
    }
}

/// Per-phase accounting.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Wall-clock duration of the phase.
    pub duration: Duration,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency quantiles over completed requests.
    pub latency: LatencyQuantiles,
    /// Verdict-cache hit rate within the phase (hits + warm + coalesced
    /// over all lookups the phase performed).
    pub hit_rate: f64,
}

/// Full workload report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The seed the workload ran under.
    pub seed: u64,
    /// Cold phase (cache population).
    pub cold: PhaseReport,
    /// Warm phase (cache service, optional chaos).
    pub warm: PhaseReport,
    /// Checksum divergences from the serial golden path (must be 0).
    pub divergences: u64,
    /// Tickets that timed out (wedged queue; must be 0).
    pub wedged: u64,
    /// Requests that failed terminally (must be 0).
    pub failures: u64,
    /// In-flight high-water mark across the whole run.
    pub max_inflight: u64,
    /// Times the service entered serialized degradation.
    pub degradations: u64,
    /// Requests executed under serialized mode.
    pub serialized_requests: u64,
    /// Final verdict-cache counters.
    pub cache: ShardStats,
}

impl ServeReport {
    /// The invariants a passing run must uphold. Returns violations as
    /// human-readable strings (empty = pass).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.divergences > 0 {
            v.push(format!(
                "{} checksum divergences from the serial golden path",
                self.divergences
            ));
        }
        if self.wedged > 0 {
            v.push(format!("{} tickets timed out (queue wedged)", self.wedged));
        }
        if self.failures > 0 {
            v.push(format!("{} requests failed terminally", self.failures));
        }
        if self.cold.completed == 0 || self.warm.completed == 0 {
            v.push("a phase completed zero requests".into());
        }
        if self.warm.hit_rate < 0.90 {
            v.push(format!(
                "warm-phase hit rate {:.1}% below the 90% bar",
                self.warm.hit_rate * 100.0
            ));
        }
        if self.max_inflight < 8 {
            v.push(format!(
                "max in-flight {} never reached 8 concurrent requests",
                self.max_inflight
            ));
        }
        v
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        fn phase(p: &PhaseReport) -> String {
            format!(
                "{{\"completed\": {}, \"shed\": {}, \"duration_ms\": {}, \"throughput_rps\": {:.1}, \
                 \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"hit_rate\": {:.4}}}",
                p.completed,
                p.shed,
                p.duration.as_millis(),
                p.throughput_rps,
                p.latency.p50_us,
                p.latency.p90_us,
                p.latency.p99_us,
                p.hit_rate,
            )
        }
        format!(
            "{{\n  \"seed\": {},\n  \"cold\": {},\n  \"warm\": {},\n  \"divergences\": {},\n  \
             \"wedged\": {},\n  \"failures\": {},\n  \"max_inflight\": {},\n  \
             \"degradations\": {},\n  \"serialized_requests\": {},\n  \
             \"cache\": {{\"hits\": {}, \"warm_hits\": {}, \"coalesced\": {}, \"misses\": {}, \
             \"evictions\": {}, \"entries\": {}}}\n}}",
            self.seed,
            phase(&self.cold),
            phase(&self.warm),
            self.divergences,
            self.wedged,
            self.failures,
            self.max_inflight,
            self.degradations,
            self.serialized_requests,
            self.cache.hits,
            self.cache.warm_hits,
            self.cache.coalesced,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
        )
    }
}

struct PhaseCounters {
    completed: AtomicU64,
    shed: AtomicU64,
    divergences: AtomicU64,
    wedged: AtomicU64,
    failures: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

impl PhaseCounters {
    fn new() -> PhaseCounters {
        PhaseCounters {
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
            wedged: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            latencies_us: Mutex::new(Vec::new()),
        }
    }
}

fn run_phase(
    service: &Arc<AnalysisService>,
    cfg: &ServeConfig,
    goldens: &HashMap<(String, String), f64>,
    phase_tag: u64,
) -> (PhaseReport, PhaseCounters) {
    let counters = Arc::new(PhaseCounters::new());
    let hits_before = {
        let s = service.stats().cache;
        (s.hits + s.warm_hits + s.coalesced, s.misses)
    };
    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let service = Arc::clone(service);
            let counters = Arc::clone(&counters);
            let goldens = goldens.clone();
            let requests = cfg.requests_per_client;
            let mut rng = Rng64::seed_from_u64(
                cfg.seed ^ (c as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ phase_tag,
            );
            std::thread::spawn(move || {
                let client = format!("client-{c}");
                for _ in 0..requests {
                    let (kernel, dataset) = SERVE_MIX[rng.gen_usize(0, SERVE_MIX.len() - 1)];
                    let submitted = Instant::now();
                    let ticket = match service.submit(Request {
                        client: client.clone(),
                        deadline: None,
                        payload: Payload::Execute {
                            kernel: kernel.into(),
                            dataset: dataset.into(),
                        },
                    }) {
                        Ok(t) => t,
                        Err(_) => {
                            counters.shed.fetch_add(1, Ordering::Relaxed);
                            // Closed loop under shed: brief backoff keeps
                            // the loop from spinning on a full queue.
                            std::thread::sleep(Duration::from_millis(1));
                            continue;
                        }
                    };
                    let Some(response) = ticket.wait_timeout(Duration::from_secs(120)) else {
                        counters.wedged.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    let latency_us = submitted.elapsed().as_micros() as u64;
                    match response.result {
                        Ok(Outcome::Executed { checksum, .. }) => {
                            counters.completed.fetch_add(1, Ordering::Relaxed);
                            let golden = goldens[&(kernel.to_string(), dataset.to_string())];
                            if !close(checksum, golden) {
                                counters.divergences.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(_) => {
                            counters.completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            counters.failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    counters
                        .latencies_us
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(latency_us);
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let duration = started.elapsed();
    let (reused_before, misses_before) = hits_before;
    let s = service.stats().cache;
    let reused = (s.hits + s.warm_hits + s.coalesced).saturating_sub(reused_before);
    let misses = s.misses.saturating_sub(misses_before);
    let lookups = reused + misses;
    let completed = counters.completed.load(Ordering::Relaxed);
    let latencies = std::mem::take(
        &mut *counters
            .latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner()),
    );
    let report = PhaseReport {
        completed,
        shed: counters.shed.load(Ordering::Relaxed),
        duration,
        throughput_rps: completed as f64 / duration.as_secs_f64().max(1e-9),
        latency: quantiles(latencies),
        hit_rate: if lookups == 0 {
            0.0
        } else {
            reused as f64 / lookups as f64
        },
    };
    let counters = Arc::try_unwrap(counters)
        .unwrap_or_else(|_| panic!("phase threads joined, counters uniquely owned"));
    (report, counters)
}

/// Runs the full two-phase workload against a fresh service and returns
/// the report plus the service (still running, so callers can snapshot
/// its cache).
pub fn run_serve_workload(cfg: &ServeConfig) -> (ServeReport, Arc<AnalysisService>) {
    let service = Arc::new(AnalysisService::start(cfg.service.clone()));
    // Golden serial checksums, computed once up front on dedicated
    // instances — the divergence oracle for every response.
    let mut goldens = HashMap::new();
    for (kernel, dataset) in SERVE_MIX {
        let g = service
            .golden_checksum(kernel, dataset)
            .unwrap_or_else(|e| panic!("golden for {kernel}:{dataset}: {e}"));
        goldens.insert((kernel.to_string(), dataset.to_string()), g);
    }

    let (cold, cold_counters) = run_phase(&service, cfg, &goldens, 0xc01d);

    // Warm phase, optionally under chaos: one omprt pool worker is
    // killed mid-phase; the pool self-heals and the service serializes
    // briefly, but every ticket must still complete correctly.
    let chaos = cfg.kill_worker.then(|| {
        failpoint::silence_injected_panics();
        failpoint::arm(FailPlan::new().with("omprt.worker.wake", Arm::Panic, Fire::nth(20)))
    });
    let (warm, warm_counters) = run_phase(&service, cfg, &goldens, 0x3a4b);
    drop(chaos);

    let stats = service.stats();
    let report = ServeReport {
        seed: cfg.seed,
        cold,
        warm,
        divergences: cold_counters.divergences.load(Ordering::Relaxed)
            + warm_counters.divergences.load(Ordering::Relaxed),
        wedged: cold_counters.wedged.load(Ordering::Relaxed)
            + warm_counters.wedged.load(Ordering::Relaxed),
        failures: cold_counters.failures.load(Ordering::Relaxed)
            + warm_counters.failures.load(Ordering::Relaxed),
        max_inflight: stats.max_inflight,
        degradations: stats.degradations,
        serialized_requests: stats.serialized_requests,
        cache: stats.cache,
    };
    (report, service)
}

/// Snapshot round-trip drill: run a short workload, write the snapshot,
/// verify (a) a one-byte corruption is rejected and the cache rebuilds,
/// and (b) the intact snapshot warm-starts a fresh service to a cache
/// hit on its first repeated request. Returns violations (empty = pass).
pub fn snapshot_roundtrip_drill(seed: u64) -> Vec<String> {
    let mut violations = Vec::new();
    let cfg = ServeConfig {
        seed,
        clients: 4,
        requests_per_client: 4,
        kill_worker: false,
        ..ServeConfig::default()
    };
    let (report, service) = run_serve_workload(&cfg);
    violations.extend(
        report
            .violations()
            .into_iter()
            // The short drill doesn't aim for the concurrency bar.
            .filter(|v| !v.contains("in-flight")),
    );
    let snapshot = service.snapshot();
    service.shutdown();
    if subsub_service::parse_snapshot(&snapshot).is_err() {
        violations.push("written snapshot does not parse back".into());
        return violations;
    }

    // (a) Corrupt one content byte: the load must reject wholesale.
    let mut corrupt = snapshot.clone().into_bytes();
    match corrupt.windows(8).position(|w| w == b"checksum") {
        Some(i) => corrupt[i + 12] ^= 0x01,
        None => violations.push("snapshot carries no entries to corrupt".into()),
    }
    let corrupt = String::from_utf8(corrupt).unwrap_or_default();
    let rebuilt = AnalysisService::start(cfg.service.clone());
    if rebuilt.warm_start(&corrupt).is_ok() {
        violations.push("corrupted snapshot was accepted".into());
    }
    if rebuilt.stats().cache.entries != 0 {
        violations.push("rejected snapshot left partial entries".into());
    }
    // Rebuild from cold still works.
    let response = rebuilt
        .submit(Request {
            client: "rebuild".into(),
            deadline: None,
            payload: Payload::Execute {
                kernel: "AMGmk".into(),
                dataset: "test".into(),
            },
        })
        .expect("admitted")
        .wait();
    if response.result.is_err() {
        violations.push("rebuild after rejected snapshot failed".into());
    }
    rebuilt.shutdown();

    // (b) The intact snapshot warm-starts a fresh service to a cache
    // hit on the first repeated request.
    let warm = AnalysisService::start(cfg.service.clone());
    match warm.warm_start(&snapshot) {
        Ok(n) if n > 0 => {}
        Ok(_) => violations.push("snapshot warm-started zero entries".into()),
        Err(e) => violations.push(format!("intact snapshot rejected: {e}")),
    }
    let response = warm
        .submit(Request {
            client: "warm".into(),
            deadline: None,
            payload: Payload::Execute {
                kernel: "AMGmk".into(),
                dataset: "test".into(),
            },
        })
        .expect("admitted")
        .wait();
    match response.telemetry.cache {
        Some(subsub_service::Lookup::WarmHit) => {}
        other => violations.push(format!(
            "first repeated request after warm-start was {other:?}, not a warm hit"
        )),
    }
    if warm.stats().cache.misses != 0 {
        violations.push("warm-started service re-inspected known content".into());
    }
    warm.shutdown();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature workload upholds the correctness invariants (the
    /// concurrency/hit-rate bars are the full bin's job).
    #[test]
    fn mini_workload_has_no_divergences() {
        let cfg = ServeConfig {
            seed: 7,
            clients: 4,
            requests_per_client: 3,
            kill_worker: false,
            ..ServeConfig::default()
        };
        let (report, service) = run_serve_workload(&cfg);
        assert_eq!(report.divergences, 0);
        assert_eq!(report.wedged, 0);
        assert_eq!(report.failures, 0);
        assert!(report.warm.hit_rate > 0.0, "warm phase must reuse verdicts");
        service.shutdown();
    }

    #[test]
    fn roundtrip_drill_passes() {
        let violations = snapshot_roundtrip_drill(11);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
