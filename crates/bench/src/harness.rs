//! The measurement/simulation harness shared by all figure binaries.

use subsub_core::AlgorithmLevel;
use subsub_kernels::{common::serial_cost, Kernel, KernelInstance, Variant};
use subsub_omprt::{
    sim, time_once, time_repeat, MachineCalibration, Schedule, SimParams, ThreadPool,
};

/// One experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Algorithm level whose decision selects the variant.
    pub level: AlgorithmLevel,
    /// Simulated core count.
    pub cores: usize,
    /// Loop schedule.
    pub sched: Schedule,
}

/// Result of one configuration.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The variant the analysis selected.
    pub variant: Variant,
    /// Simulated execution time (seconds) at `cores` cores.
    pub sim_time: f64,
    /// Measured serial time (seconds) used for calibration.
    pub serial_time: f64,
    /// Simulated speedup over serial.
    pub speedup: f64,
}

/// Calibration data for one kernel instance: measured serial seconds, the
/// abstract-unit scale, and pool overheads expressed in abstract units.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Measured serial wall time (seconds).
    pub serial_time: f64,
    /// Seconds per abstract work unit.
    pub unit: f64,
    /// Cost-model parameters in abstract units.
    pub params: SimParams,
}

/// Measured fork-join overhead of the runtime (seconds per region), the
/// quantity behind the paper's inner-parallelization anomaly: the median
/// of 7 samples of 200 back-to-back empty regions each, so one scheduler
/// hiccup cannot skew the calibration.
///
/// Floored at 1µs: the claim-based pool's real overhead is tens of
/// nanoseconds on an idle machine, which as a *simulation parameter*
/// would make fork-join free and erase the paper's Figure 13 anomaly the
/// sim exists to reproduce. Raw (unfloored) numbers come from the
/// `forkjoin_calibrate` binary.
pub fn measured_fork_join(pool: &ThreadPool) -> f64 {
    let regions = 200;
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            time_once(|| {
                for _ in 0..regions {
                    pool.run(|_| {});
                }
            }) / regions as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2].max(1e-6)
}

/// Times the instance's serial run and derives the unit scale.
///
/// The dispatch/fork-join ratio comes from this machine's
/// `BENCH_forkjoin.json` (written by `forkjoin_calibrate`) when one is
/// present; otherwise the historical 1/64 guess is used.
pub fn calibrate(inst: &mut dyn KernelInstance, fork_join_secs: f64) -> Calibration {
    let groups = inst.inner_groups();
    let total_units = serial_cost(&groups).max(1.0);
    inst.reset();
    let m = time_repeat(3, || {
        inst.reset();
        inst.run_serial();
    });
    let serial_time = m.min().max(1e-9);
    let unit = serial_time / total_units;
    let dispatch_ratio = MachineCalibration::load_default()
        .map(|c| c.dispatch_ratio())
        .unwrap_or(1.0 / 64.0);
    let params = SimParams {
        fork_join: fork_join_secs / unit,
        dispatch: (fork_join_secs / unit) * dispatch_ratio,
        mem_frac: inst.mem_bound_fraction(),
        ..SimParams::default()
    };
    Calibration {
        serial_time,
        unit,
        params,
    }
}

/// Simulated execution time (seconds) of a variant at `cores` cores.
pub fn simulate_variant(
    inst: &dyn KernelInstance,
    variant: Variant,
    cores: usize,
    sched: Schedule,
    cal: &Calibration,
) -> f64 {
    let units = match variant {
        Variant::Serial => serial_cost(&inst.inner_groups()),
        Variant::OuterParallel => {
            sim::simulate_parallel_for(&inst.outer_costs(), cores, sched, &cal.params).time
        }
        Variant::InnerParallel => {
            let groups = inst.inner_groups();
            groups
                .iter()
                .map(|g| {
                    if g.inner.is_empty() {
                        g.serial
                    } else {
                        g.serial
                            + sim::simulate_parallel_for(&g.inner, cores, sched, &cal.params).time
                    }
                })
                .sum()
        }
    };
    units * cal.unit
}

/// Runs one configuration end-to-end: decide, execute (for validation),
/// calibrate and simulate.
pub fn run_config(
    kernel: &dyn Kernel,
    dataset: &str,
    cfg: Config,
    pool: &ThreadPool,
    fork_join_secs: f64,
) -> Outcome {
    let variant = crate::decide::variant_for(kernel, cfg.level);
    let mut inst = kernel.prepare(dataset);

    // Validate the selected variant against the serial reference.
    inst.reset();
    inst.run_serial();
    let reference = inst.checksum();
    inst.reset();
    inst.run(variant, pool, cfg.sched);
    let got = inst.checksum();
    assert!(
        subsub_kernels::common::close(reference, got),
        "{} [{dataset}] variant {variant}: checksum mismatch {got} vs {reference}",
        kernel.name()
    );

    let cal = calibrate(inst.as_mut(), fork_join_secs);
    let sim_time = simulate_variant(inst.as_ref(), variant, cfg.cores, cfg.sched, &cal);
    Outcome {
        variant,
        sim_time,
        serial_time: cal.serial_time,
        speedup: cal.serial_time / sim_time.max(1e-12),
    }
}

/// Validates one variant's output against the serial reference.
pub fn validate_variant(
    kernel: &dyn Kernel,
    inst: &mut dyn KernelInstance,
    variant: Variant,
    pool: &ThreadPool,
    sched: Schedule,
) {
    inst.reset();
    inst.run_serial();
    let reference = inst.checksum();
    inst.reset();
    inst.run(variant, pool, sched);
    let got = inst.checksum();
    assert!(
        subsub_kernels::common::close(reference, got),
        "{} variant {variant}: checksum mismatch {got} vs {reference}",
        kernel.name()
    );
    inst.reset();
}

/// A prepared experiment over one (kernel, dataset): validates each needed
/// variant once, calibrates once, then answers simulation queries for any
/// (variant, cores, schedule) combination.
pub struct Series {
    inst: Box<dyn KernelInstance>,
    /// Calibration derived from the serial run.
    pub cal: Calibration,
}

impl Series {
    /// Prepares and calibrates; validates the given variants.
    pub fn new(
        kernel: &dyn Kernel,
        dataset: &str,
        variants: &[Variant],
        pool: &ThreadPool,
        fork_join_secs: f64,
    ) -> Series {
        let mut inst = kernel.prepare(dataset);
        let mut seen = Vec::new();
        for &v in variants {
            if !seen.contains(&v) {
                validate_variant(kernel, inst.as_mut(), v, pool, Schedule::static_default());
                seen.push(v);
            }
        }
        let cal = calibrate(inst.as_mut(), fork_join_secs);
        Series { inst, cal }
    }

    /// Simulated seconds for a (variant, cores, schedule) combination.
    pub fn sim(&self, variant: Variant, cores: usize, sched: Schedule) -> f64 {
        simulate_variant(self.inst.as_ref(), variant, cores, sched, &self.cal)
    }

    /// Simulated speedup over the measured serial time.
    pub fn speedup(&self, variant: Variant, cores: usize, sched: Schedule) -> f64 {
        self.cal.serial_time / self.sim(variant, cores, sched).max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_kernels::kernel_by_name;

    #[test]
    fn amgmk_outer_beats_inner_in_simulation() {
        let k = kernel_by_name("AMGmk").unwrap();
        let mut inst = k.prepare("test");
        inst.run_serial();
        let cal = Calibration {
            serial_time: 1.0,
            unit: 1.0 / subsub_kernels::common::serial_cost(&inst.inner_groups()),
            params: SimParams {
                fork_join: 5_000.0,
                dispatch: 80.0,
                mem_frac: inst.mem_bound_fraction(),
                ..SimParams::default()
            },
        };
        let outer = simulate_variant(
            inst.as_ref(),
            Variant::OuterParallel,
            8,
            Schedule::static_default(),
            &cal,
        );
        let inner = simulate_variant(
            inst.as_ref(),
            Variant::InnerParallel,
            8,
            Schedule::static_default(),
            &cal,
        );
        let serial = simulate_variant(
            inst.as_ref(),
            Variant::Serial,
            8,
            Schedule::static_default(),
            &cal,
        );
        assert!(outer < serial, "outer {outer} vs serial {serial}");
        assert!(inner > serial, "fork-join should swamp the inner strategy");
    }

    #[test]
    fn run_config_validates_and_reports() {
        let pool = ThreadPool::new(2);
        let k = kernel_by_name("AMGmk").unwrap();
        let out = run_config(
            k.as_ref(),
            "test",
            Config {
                level: subsub_core::AlgorithmLevel::New,
                cores: 4,
                sched: Schedule::static_default(),
            },
            &pool,
            5e-6,
        );
        assert_eq!(out.variant, Variant::OuterParallel);
        assert!(out.speedup > 0.0);
    }
}
