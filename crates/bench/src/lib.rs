//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (Section 4).
//!
//! Methodology. For each benchmark and algorithm level the pipeline is:
//!
//! 1. run the real compile-time analysis on the kernel's C source and map
//!    the decision to an execution [`Variant`] (serial / inner-parallel /
//!    outer-parallel);
//! 2. execute the selected variant through the `omprt` runtime on the
//!    available cores and validate checksums against the serial run;
//! 3. time the serial run to *calibrate* the abstract work model, measure
//!    the real fork-join overhead of the thread pool, and replay the
//!    schedule in the deterministic `omprt::sim` cost model for the
//!    paper's 4-, 8- and 16-core series (the CI container has one core, so
//!    multi-core numbers are simulated; see DESIGN.md).

pub mod calibration;
pub mod chaos;
pub mod chaos_serve;
pub mod conform;
pub mod decide;
pub mod guarded;
pub mod harness;
pub mod microbench;
pub mod perfgate;
pub mod reinspect;
pub mod serve;
pub mod table;
pub mod trace;

pub use calibration::{validate_calibration_doc, CalibrationSummary};
pub use chaos::{chaos_sweep, ChaosReport, CHAOS_SITES, DEFAULT_SEEDS};
pub use chaos_serve::{
    chaos_serve_storm, ChaosServeConfig, ChaosServeReport, CHAOS_SERVE_SEEDS, CHAOS_SERVE_SITES,
};
pub use conform::{
    check_source, kernel_cases, load_corpus_dir, run_conformance, ConformCase, ConformFailure,
    ConformReport,
};
pub use decide::{decision_report, variant_for};
pub use guarded::{guarded_run, GuardedHarness, GuardedOutcome};
pub use harness::{calibrate, run_config, Config, Outcome};
pub use microbench::bench;
pub use perfgate::{GateRow, GateStatus};
pub use reinspect::{run_reinspect_workload, ReinspectReport, MIN_SPEEDUP};
pub use serve::{
    run_serve_workload, snapshot_roundtrip_drill, ServeConfig, ServeReport, SERVE_MIX,
};
pub use table::Table;
pub use trace::{capture_trace, validate_trace_file, TraceArtifacts};
