//! The chaos harness: sweep seeded fault-injection schedules over the
//! whole kernel registry and check the system's end-to-end robustness
//! invariant.
//!
//! For every kernel, one guarded invocation runs with a
//! [`FailPlan::seeded`] schedule armed over [`CHAOS_SITES`] — worker
//! deaths at wake and claim, delays on the fork/join hot path, inspector
//! chunk panics, dropped or corrupted cache inserts, corrupted check
//! evaluations, dispatch faults, and panics inside the parallel kernel
//! body. Whatever fires, the invocation must end in exactly one of two
//! states:
//!
//! * **completed parallel** — the output agrees with the serial golden
//!   run (up to floating-point reassociation, [`close`]);
//! * **degraded serial** — the outcome carries a classified
//!   [`ExecError`] and the output is *bit-identical* to the golden run
//!   (the serial rescue executes the same code on reset state).
//!
//! Anything else — a panic escaping the harness, a hang, a corrupt
//! result, an unclassified fallback — is a [`ChaosReport::violations`]
//! entry, and the suite fails. Every run is reproducible from its seed.

use crate::guarded::GuardedHarness;
use std::panic::{catch_unwind, AssertUnwindSafe};
use subsub_core::AlgorithmLevel;
use subsub_failpoint::{self as failpoint, Arm, FailPlan};
use subsub_kernels::{all_kernels, common::close, Variant};
use subsub_omprt::{RegionError, Schedule, ThreadPool};
use subsub_rtcheck::ExecError;

/// Every failpoint site the runtime exposes, with the arms a chaos
/// schedule may legally draw for it. Sites on coordinator-only paths
/// (region fork/join) and sites consulted outside any `catch_unwind`
/// (cache insert, check eval, dispatch) must never panic — a panic there
/// would be a harness abort, not an injected fault — so their allowed
/// arms are restricted to what their callers are built to absorb.
pub const CHAOS_SITES: &[(&str, &[Arm])] = &[
    // Worker-side: panics kill the worker thread; the pool must reclaim
    // or abort cleanly, then respawn.
    ("omprt.worker.wake", &[Arm::Panic, Arm::Delay(1)]),
    ("omprt.worker.claim", &[Arm::Panic, Arm::Delay(2)]),
    // Worker death after a tid is attributed as started: the region
    // must abort with `WorkerLost`, which the guard absorbs as a
    // transient fault (retry, then serial rescue).
    ("omprt.worker.job", &[Arm::Panic, Arm::Delay(1)]),
    // Coordinator fork/join hot path: timing disturbance only.
    ("omprt.region.fork", &[Arm::Delay(1)]),
    ("omprt.region.join", &[Arm::Delay(1)]),
    // Inside a reduction job: caught by the region's panic containment.
    ("omprt.reduce.slot", &[Arm::Panic, Arm::Delay(1)]),
    // Inspector chunk body: a panic surfaces as a faulted inspection,
    // which must be retried / serial-rescued, never memoized.
    ("rtcheck.inspect.chunk", &[Arm::Panic, Arm::Delay(1)]),
    // Cache insert: dropped (Error) or conservatively corrupted memo.
    (
        "rtcheck.cache.insert",
        &[Arm::Error, Arm::Corrupt, Arm::Delay(1)],
    ),
    // Scalar check evaluation: corrupt = conservative deny.
    (
        "rtcheck.check.eval",
        &[Arm::Error, Arm::Corrupt, Arm::Delay(1)],
    ),
    // Dispatch boundary: a detected fault before the kernel runs.
    ("rtcheck.guard.dispatch", &[Arm::Error, Arm::Delay(1)]),
    // Inside the parallel kernel attempt (coordinator, under
    // catch_unwind): exercises retry + serial rescue + breaker.
    ("bench.kernel.parallel", &[Arm::Panic, Arm::Delay(1)]),
];

/// The pinned seeds CI sweeps (`ci.sh` step `chaos`).
pub const DEFAULT_SEEDS: &[u64] = &[17, 4242, 900_913];

/// One kernel's outcome under one seeded schedule.
#[derive(Debug, Clone)]
pub struct ChaosKernelResult {
    /// Kernel name.
    pub kernel: String,
    /// `None`: completed parallel. `Some`: degraded, with the class.
    pub degraded: Option<ExecError>,
    /// Sites whose rules actually fired during this kernel's run.
    pub fired_sites: Vec<String>,
}

/// Everything one seed's sweep over the registry produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The sweep's seed.
    pub seed: u64,
    /// Per-kernel outcomes, in registry order.
    pub results: Vec<ChaosKernelResult>,
    /// Invariant violations; empty means the sweep passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Did every kernel uphold the robustness invariant?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// `(completed parallel, degraded serial)` counts.
    pub fn outcome_counts(&self) -> (usize, usize) {
        let degraded = self.results.iter().filter(|r| r.degraded.is_some()).count();
        (self.results.len() - degraded, degraded)
    }
}

/// Derives a per-kernel sub-seed so each kernel sees its own schedule.
fn sub_seed(seed: u64, kernel: &str) -> u64 {
    kernel.bytes().fold(seed ^ 0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
    })
}

/// Quiets the default panic report for the panics chaos runs *expect*:
/// injected ones, and the runtime's re-raise of a region abort caused by
/// an injected worker death (payload [`RegionError`]). Both are caught
/// and classified by the guarded harness; only genuinely escaping panics
/// should reach stderr, and those the sweep reports as violations.
fn quiet_expected_panics() {
    use std::sync::OnceLock;
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        failpoint::silence_panics_when(|p| p.downcast_ref::<RegionError>().is_some());
    });
}

/// Runs one seeded chaos sweep over the full kernel registry.
pub fn chaos_sweep(seed: u64) -> ChaosReport {
    quiet_expected_panics();
    let mut results = Vec::new();
    let mut violations = Vec::new();
    for k in all_kernels() {
        let name = k.name().to_string();
        // Golden serial run and harness construction happen *unarmed*:
        // chaos targets the execution machinery, not the compile-time
        // analysis or dataset generation.
        let mut golden_inst = k.prepare("test");
        golden_inst.run_serial();
        let golden = golden_inst.checksum();
        let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
        let mut inst = k.prepare("test");
        let pool = ThreadPool::new(4);
        let plan = FailPlan::seeded(sub_seed(seed, &name), CHAOS_SITES);
        let planned = plan.sites();
        let (run, fired_sites) = {
            let _armed = failpoint::arm(plan);
            let run = catch_unwind(AssertUnwindSafe(|| {
                harness.run(inst.as_mut(), &pool, Schedule::dynamic_default())
            }));
            let fired: Vec<String> = planned
                .into_iter()
                .filter(|s| failpoint::fired(s) > 0)
                .collect();
            (run, fired)
        };
        let out = match run {
            Ok(out) => out,
            Err(p) => {
                let detail = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string payload".into());
                violations.push(format!(
                    "{name} [seed {seed}]: panic escaped the guarded harness: {detail}"
                ));
                continue;
            }
        };
        match &out.reason {
            None => {
                if !close(golden, out.checksum) {
                    violations.push(format!(
                        "{name} [seed {seed}]: parallel completion diverged from golden \
                         ({} != {golden})",
                        out.checksum
                    ));
                }
            }
            Some(err) => {
                if out.executed != Variant::Serial {
                    violations.push(format!(
                        "{name} [seed {seed}]: degraded outcome but executed {}",
                        out.executed
                    ));
                }
                if out.checksum.to_bits() != golden.to_bits() {
                    violations.push(format!(
                        "{name} [seed {seed}]: serial fallback not bit-identical to golden \
                         ({} != {golden}, reason {err})",
                        out.checksum
                    ));
                }
            }
        }
        results.push(ChaosKernelResult {
            kernel: name,
            degraded: out.reason,
            fired_sites,
        });
    }
    ChaosReport {
        seed,
        results,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_seeds_differ_per_kernel() {
        assert_ne!(sub_seed(7, "AMGmk"), sub_seed(7, "SDDMM"));
        assert_eq!(sub_seed(7, "AMGmk"), sub_seed(7, "AMGmk"));
    }

    #[test]
    fn site_table_restricts_coordinator_paths_to_delay() {
        for (site, arms) in CHAOS_SITES {
            if matches!(*site, "omprt.region.fork" | "omprt.region.join") {
                assert!(
                    arms.iter().all(|a| matches!(a, Arm::Delay(_))),
                    "{site} must be delay-only"
                );
            }
            if site.starts_with("rtcheck.cache")
                || site.starts_with("rtcheck.check")
                || site.starts_with("rtcheck.guard")
            {
                assert!(
                    !arms.contains(&Arm::Panic),
                    "{site} is hit outside catch_unwind; Panic would abort"
                );
            }
        }
    }
}
