//! Flight-recorder trace capture for one guarded kernel run.
//!
//! [`capture_trace`] arms the telemetry subsystem, drives one kernel
//! from the registry through the full guarded pipeline (analysis
//! decision → breaker admission → scalar check → cached inspection →
//! tamper gate → dispatch) on a real thread pool, and additionally runs
//! one pool-sized synthetic inspection so the fork-join machinery is
//! exercised even for kernels whose own index arrays sit below the
//! parallel-inspection threshold (or that are analysis-serial and never
//! reach the guard's inspector at all).
//!
//! The captured events are rendered to the Chrome `trace_event` format
//! and validated with the strict parser before being reported — the CI
//! smoke step fails on any malformed trace or any missing span family.

use crate::guarded::GuardedHarness;
use subsub_core::AlgorithmLevel;
use subsub_kernels::kernel_by_name;
use subsub_omprt::{Schedule, ThreadPool};
use subsub_rtcheck::{Bindings, GuardedExecutor, IndexArrayView, MonotoneReq, PAR_THRESHOLD};
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, TraceSummary};

/// Everything one capture produced.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// The Chrome `trace_event` JSON document.
    pub chrome_json: String,
    /// The `subsub-telemetry/v1` metrics snapshot document.
    pub snapshot_json: String,
    /// The validator's summary of the (validated) trace.
    pub summary: TraceSummary,
    /// Flight-recorder events captured during the armed scope.
    pub events: usize,
}

/// Span families every capture must contain. Each entry is (event-name
/// prefix in the trace, human description).
const REQUIRED_FAMILIES: &[(&str, &str)] = &[
    ("region", "fork-join region span"),
    ("region_fork", "region fork instant"),
    ("region_join", "region join instant"),
    ("inspect", "inspector scan span"),
    ("guard_decide", "guard decision span"),
    ("dispatch", "guarded dispatch span"),
    ("guard_verdict", "guard verdict instant"),
];

/// Captures, renders, validates, and checks completeness; any failure
/// is a human-readable string the CLI prints before exiting nonzero.
pub fn capture_trace(
    kernel_name: &str,
    dataset: Option<&str>,
    threads: usize,
) -> Result<TraceArtifacts, String> {
    let kernel =
        kernel_by_name(kernel_name).ok_or_else(|| format!("unknown kernel {kernel_name:?}"))?;
    let dataset = match dataset {
        Some(d) => d.to_string(),
        None => kernel
            .datasets()
            .first()
            .copied()
            .ok_or_else(|| format!("kernel {kernel_name:?} has no datasets"))?
            .to_string(),
    };
    let pool = ThreadPool::new(threads.max(1));

    let armed = telemetry::arm();
    let harness = GuardedHarness::new(kernel.as_ref(), AlgorithmLevel::New);
    let mut inst = kernel.prepare(&dataset);
    // Two invocations: the second exercises the inspector cache's hit
    // path, so the trace shows both a miss+scan and a revalidation.
    harness.run(inst.as_mut(), &pool, Schedule::static_default());
    inst.reset();
    harness.run(inst.as_mut(), &pool, Schedule::static_default());
    synthetic_pooled_inspection(&pool);
    let events = armed.events();
    drop(armed);

    let chrome_json = telemetry::chrome_trace(&events);
    let snapshot_json = telemetry::snapshot_json();
    let summary = telemetry::validate_chrome_trace(&chrome_json)
        .map_err(|e| format!("emitted trace failed validation: {e}"))?;
    for (prefix, what) in REQUIRED_FAMILIES {
        if !summary.has_name_prefix(prefix) {
            return Err(format!(
                "trace is missing a {what} (no event named {prefix}*); captured names: {:?}",
                summary.names
            ));
        }
    }
    Ok(TraceArtifacts {
        chrome_json,
        snapshot_json,
        summary,
        events: events.len(),
    })
}

/// One guarded decision over a synthetic strictly-monotone index array
/// large enough to push the inspector onto the thread pool
/// (`PAR_THRESHOLD` elements engage the fork-join path), so every
/// capture contains region/claim events regardless of which kernel was
/// requested.
fn synthetic_pooled_inspection(pool: &ThreadPool) {
    let ramp: Vec<usize> = (0..PAR_THRESHOLD * 2).collect();
    let view = IndexArrayView {
        name: "synthetic-ramp",
        data: &ramp,
        version: 0,
        required: MonotoneReq::Strict,
    };
    let executor = match GuardedExecutor::new(None) {
        Ok(e) => e,
        Err(_) => return, // unreachable: no check to compile
    };
    let decision =
        executor.decide_recoverable("synthetic-ramp", &Bindings::new(), &[view], Some(pool));
    let (_, _) = executor.execute_admitted(
        "synthetic-ramp",
        &decision,
        &[("synthetic-ramp", 0)],
        || Ok(()),
        || {},
        || (),
    );
}

/// Validates an already-rendered Chrome-trace document from disk (the
/// `trace --validate` mode): strict parse plus the per-tid invariants —
/// no completeness check, since an external trace may legitimately hold
/// a subset of the event families.
pub fn validate_trace_file(doc: &str) -> Result<TraceSummary, String> {
    telemetry::validate_chrome_trace(doc)
}

/// Formats a one-line human summary of a validated trace.
pub fn summarize(summary: &TraceSummary, events: usize) -> String {
    format!(
        "{events} events captured: {} spans, {} instants across {} threads; {} distinct names",
        summary.spans,
        summary.instants,
        summary.threads,
        summary.names.len()
    )
}

/// The per-kind counter lines the `trace` CLI prints under the summary.
pub fn counter_lines() -> Vec<String> {
    EventKind::all()
        .iter()
        .map(|k| format!("{:20} {}", k.name(), telemetry::metrics::kind_count(*k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amgmk_capture_contains_every_required_family() {
        let art = capture_trace("AMGmk", Some("test"), 2).expect("capture should succeed");
        assert!(art.events > 0);
        assert!(art.summary.spans > 0);
        assert!(art.summary.instants > 0);
        // The snapshot document must also be valid machine-readable JSON.
        let snap = telemetry::json::parse(&art.snapshot_json).expect("snapshot parses");
        assert_eq!(
            snap.get("schema").and_then(telemetry::json::Json::as_str),
            Some("subsub-telemetry/v1")
        );
    }

    #[test]
    fn analysis_serial_kernel_still_traces_fork_join_and_guard() {
        // IS never consults the guard or the pool on its own — the
        // synthetic inspection must still produce region + guard spans.
        let art = capture_trace("IS", None, 2).expect("capture should succeed");
        assert!(art.summary.has_name_prefix("region"));
        assert!(art.summary.has_name_prefix("guard_decide"));
        assert!(art.summary.has_name_prefix("inspect"));
    }

    #[test]
    fn unknown_kernel_is_a_clean_error() {
        let err = capture_trace("NoSuchKernel", None, 1).expect_err("must fail");
        assert!(err.contains("unknown kernel"), "{err}");
    }
}
