//! Structural validation of `BENCH_forkjoin.json` calibration files.
//!
//! The simulator's own `MachineCalibration::parse_json` is a deliberate
//! three-key scan; it cannot notice a calibration file that was
//! measured at the *wrong thread counts* (e.g. CI requests
//! `--threads 1,2,4` but a stale file measured at `1,2` is lying
//! around). [`validate_calibration_doc`] re-parses the document with the
//! strict JSON parser, checks the scalar constants the simulator needs,
//! and — when the caller says which thread counts it asked for —
//! verifies the measured `series` matches them exactly, in order.

use subsub_omprt::MachineCalibration;
use subsub_telemetry::json::{parse, Json};

/// What a valid calibration document said.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSummary {
    /// Median empty fork-join latency, nanoseconds.
    pub fork_join_ns: f64,
    /// Per-claim dynamic dispatch overhead, nanoseconds.
    pub dispatch_ns: f64,
    /// Thread count the calibration point was measured at.
    pub cal_threads: usize,
    /// Thread counts of the measured series, in document order.
    pub series_threads: Vec<usize>,
}

/// Validates a calibration document: strict JSON, expected schema,
/// finite/positive constants, a usable simulator parse, and — when
/// `requested` is given — a `series` measured at exactly those thread
/// counts with the calibration point taken at the last of them.
pub fn validate_calibration_doc(
    doc: &str,
    requested: Option<&[usize]>,
) -> Result<CalibrationSummary, String> {
    let root = parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    match root.get("schema").and_then(Json::as_str) {
        Some("subsub-forkjoin/v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    // The simulator's scanner is the consumer contract: the file must
    // still round-trip through it.
    let cal = MachineCalibration::parse_json(doc)
        .ok_or("not a valid forkjoin calibration document (simulator parse failed)")?;
    if !(cal.fork_join_ns.is_finite() && cal.fork_join_ns > 0.0) {
        return Err(format!(
            "fork_join_ns={} not finite/positive",
            cal.fork_join_ns
        ));
    }
    if !(cal.dispatch_ns.is_finite() && cal.dispatch_ns > 0.0) {
        return Err(format!(
            "dispatch_ns={} not finite/positive",
            cal.dispatch_ns
        ));
    }
    let series = root
        .get("series")
        .and_then(Json::as_array)
        .ok_or("document has no \"series\" array")?;
    let mut series_threads = Vec::with_capacity(series.len());
    for point in series {
        let t = point
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or("series point missing integer \"threads\"")?;
        series_threads.push(t as usize);
    }
    if series_threads.is_empty() {
        return Err("series is empty".to_string());
    }
    if let Some(requested) = requested {
        if series_threads != requested {
            return Err(format!(
                "series measured at thread counts {series_threads:?} but {requested:?} was \
                 requested — stale or mismatched calibration file"
            ));
        }
        if series_threads.last() != Some(&cal.threads) {
            return Err(format!(
                "cal_threads={} is not the last requested thread count {:?}",
                cal.threads,
                series_threads.last()
            ));
        }
    }
    Ok(CalibrationSummary {
        fork_join_ns: cal.fork_join_ns,
        dispatch_ns: cal.dispatch_ns,
        cal_threads: cal.threads,
        series_threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cal_threads: usize, series: &[usize]) -> String {
        let points = series
            .iter()
            .map(|t| {
                format!(
                    "{{\"threads\":{t},\"new_ns\":100.0,\"legacy_ns\":400.0,\"improvement\":4.00}}"
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":\"subsub-forkjoin/v1\",\"quick\":true,\"cal_threads\":{cal_threads},\
             \"fork_join_ns\":100.0,\"dispatch_ns\":5.00,\"legacy_fork_join_ns\":400.0,\
             \"improvement\":4.00,\"series\":[{points}]}}"
        )
    }

    #[test]
    fn valid_document_passes_with_and_without_request() {
        let d = doc(4, &[1, 2, 4]);
        let s = validate_calibration_doc(&d, None).expect("structurally valid");
        assert_eq!(s.series_threads, vec![1, 2, 4]);
        assert_eq!(s.cal_threads, 4);
        validate_calibration_doc(&d, Some(&[1, 2, 4])).expect("matches request");
    }

    #[test]
    fn thread_count_mismatch_is_rejected() {
        // A stale file measured at 1,2 when CI asked for 1,2,4.
        let d = doc(2, &[1, 2]);
        validate_calibration_doc(&d, None).expect("fine when nothing was requested");
        let err = validate_calibration_doc(&d, Some(&[1, 2, 4])).expect_err("must mismatch");
        assert!(err.contains("[1, 2]") && err.contains("[1, 2, 4]"), "{err}");
    }

    #[test]
    fn wrong_calibration_point_is_rejected() {
        // Series matches the request but the constants were measured at
        // a different team size than the last requested count.
        let d = doc(2, &[1, 2, 4]);
        let err = validate_calibration_doc(&d, Some(&[1, 2, 4])).expect_err("must reject");
        assert!(err.contains("cal_threads=2"), "{err}");
    }

    #[test]
    fn structural_defects_are_rejected() {
        assert!(validate_calibration_doc("not json", None).is_err());
        assert!(validate_calibration_doc("{\"schema\":\"other/v1\"}", None).is_err());
        let no_series = "{\"schema\":\"subsub-forkjoin/v1\",\"cal_threads\":2,\
                         \"fork_join_ns\":100.0,\"dispatch_ns\":5.0}";
        let err = validate_calibration_doc(no_series, None).expect_err("no series");
        assert!(err.contains("series"), "{err}");
        let bad_const = doc(4, &[4]).replace("\"fork_join_ns\":100.0", "\"fork_join_ns\":-1.0");
        assert!(validate_calibration_doc(&bad_const, None).is_err());
    }
}
