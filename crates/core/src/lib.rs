//! The paper's contribution: compile-time recurrence analysis determining
//! monotonicity of subscript arrays, plus the dependence tests and the
//! parallelization driver that consume the properties.
//!
//! * [`phase1`] — symbolic execution of one arbitrary loop iteration
//!   over the loop-body CFG (Section 2.3).
//! * [`phase2`] — aggregation over the iteration space: SSR/SRA (the base
//!   algorithm of Bhosale & Eigenmann, ICS'21), intermittent monotonicity
//!   (LEMMA 1) and multi-dimensional range monotonicity (LEMMA 2)
//!   (Sections 2.4–2.5).
//! * [`properties`] — the derived array properties and the property DB.
//! * [`nest`] — inside-out loop-nest analysis with loop collapsing and the
//!   function-level driver.
//! * [`classic`] — the classical automatic-parallelization baseline
//!   (dependence tests, privatization, reduction recognition).
//! * [`deptest`] — the extended dependence test using subscript-array
//!   properties, including runtime-check generation.
//! * [`driver`] — whole-program driver with the three algorithm levels
//!   compared in the paper's Figure 17 (Cetus / +BaseAlgo / +NewAlgo).

pub mod classic;
pub mod collapse;
pub mod deptest;
pub mod driver;
pub mod nest;
pub mod phase1;
pub mod phase2;
pub mod properties;
pub mod value;

pub use classic::{classic_analyze_loop, Access, ArrayDep, ClassicAnalysis};
pub use collapse::{CollapsedArrayWrite, CollapsedLoop, CollapsedMap, CollapsedScalar};
pub use deptest::{decide_loop, LoopDecision, ParallelPlan};
pub use driver::{
    analyze_lowered, analyze_program, analyze_program_with, AnalyzeError, FunctionReport,
    LoopReport, ProgramReport,
};
pub use nest::{analyze_function, FunctionAnalysis, LoopAnalysis};
pub use phase1::{phase1, Phase1Result};
pub use phase2::{phase2, Phase2Result, SsrInfo};
pub use properties::{AlgorithmLevel, ArrayProperty, Monotonicity, PropertyDb, PropertyKind};
pub use value::{ArrayWrite, Guard, Svd, TaggedVal, Val, ValueSet};

// The runtime-check IR lives in `subsub-rtcheck`; re-export the pieces a
// consumer of [`ParallelPlan`] needs to inspect or execute the check.
pub use subsub_rtcheck::{Bindings, CheckExpr, CompiledCheck};
