//! Phase-2: aggregation over the loop iteration space and property tests.
//!
//! Implements Algorithm 1 (the driver) and Algorithm 2 (`is_Mono_Array`)
//! of the paper, covering:
//!
//! * **SSR** — simple scalar recurrences `sc = sc + k` with loop-invariant
//!   PNN `k` (state of the art, [Bhosale & Eigenmann ICS'21]); conditional
//!   increments widen the per-iteration step to `[0 : k]`.
//! * **SRA** — scalar-recurrence array assignments `ar[i] = ssr_expr`,
//!   including the array self-recurrence `a[f(i)] = a[f(i)-1] + k` of the
//!   paper's Figure 2(b).
//! * **LEMMA 1** — intermittent monotonicity: `inseq[ic] = j; ic = ic + 1`
//!   under one loop-variant if-condition, `j` an SSR variable.
//! * **LEMMA 2** — multi-dimensional range monotonicity:
//!   `ax[i][*]…[*] = α·i + [rl:ru]` with `[rl:ru]` PNN and `α + rl ≥ ru`.
//!
//! The loop is then *collapsed* into aggregated assignments over `Λ_*`
//! symbols, including the multi-write simplification of Section 3.3 (the
//! six UA `idel` ranges merging into one).

use crate::collapse::{CollapsedArrayWrite, CollapsedLoop, CollapsedScalar};
use crate::properties::{AlgorithmLevel, ArrayProperty, Monotonicity, PropertyKind};
use crate::value::{ArrayWrite, Guard, Svd, TaggedVal, Val, ValueSet};
use subsub_ir::{CondTable, LoopIr};
use subsub_rtcheck::CheckExpr;
use subsub_symbolic::{Expr, Interval, Range, RangeEnv, Symbol, SymbolKind};

/// A recognized simple scalar recurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct SsrInfo {
    /// Variable name (the loop index is always an SSR variable).
    pub name: String,
    /// Effective per-iteration increment range (includes 0 when the
    /// increment is conditional).
    pub k_range: Range,
    /// True when every iteration adds a positive amount (unconditional
    /// positive `k`) — the variable is strictly monotonic.
    pub strict: bool,
    /// The tag of the conditional increment, if any.
    pub guard: Option<Guard>,
}

/// Result of Phase-2 for one loop.
#[derive(Debug, Clone)]
pub struct Phase2Result {
    /// All SSR variables found (loop index first).
    pub ssr_vars: Vec<SsrInfo>,
    /// Array properties proven for this loop, phrased over `Λ_*` /
    /// `*_max` symbols (the function driver substitutes loop-entry values).
    pub properties: Vec<ArrayProperty>,
    /// The collapsed loop (aggregated effects over `Λ_*` symbols).
    pub collapsed: CollapsedLoop,
}

/// Runs Phase-2 on the Phase-1 result of loop `l`.
pub fn phase2(
    l: &LoopIr,
    svd: &Svd,
    conds: &CondTable,
    level: AlgorithmLevel,
    env: &RangeEnv,
) -> Phase2Result {
    let idx = l.index.clone();
    let n = l.n_iters.clone();
    let mut env2 = env.clone();
    // The loop index ranges over [0 : N-1]; iteration counts are
    // non-negative by construction of the (normalized) loop.
    env2.assume(
        idx.clone(),
        Interval::finite(Expr::int(0), n.clone() - Expr::int(1)),
    );
    for s in n.free_syms() {
        if env2.interval_of(&s).is_none() {
            env2.assume(s, Interval::at_least(Expr::int(0)));
        }
    }

    // ---- Algorithm 1, scalar part: find SSR variables --------------------
    let mut ssr_vars = vec![SsrInfo {
        name: idx.name.to_string(),
        k_range: Range::ints(1, 1),
        strict: true,
        guard: None,
    }];
    for (name, vs) in &svd.scalars {
        if let Some(info) = detect_ssr(name, vs, &idx, &env2) {
            ssr_vars.push(info);
        }
    }

    // ---- Algorithm 1, array part: is_Mono_Array --------------------------
    let mut properties = Vec::new();
    if level.analyzes_arrays() {
        for (array, writes) in &svd.arrays {
            if let Some(p) = is_mono_array(l, array, writes, svd, conds, &ssr_vars, level, &env2) {
                properties.push(p);
            }
        }
    }

    // ---- Aggregation & collapse ------------------------------------------
    let collapsed = collapse_loop(l, svd, &ssr_vars, &properties, &env2);

    Phase2Result {
        ssr_vars,
        properties,
        collapsed,
    }
}

// ---------------------------------------------------------------------------
// SSR detection
// ---------------------------------------------------------------------------

/// Recognizes `v = λ_v + k` (unconditional, possibly with a range `k` from
/// a collapsed inner loop) or `v = [λ_v, ⟨λ_v + k⟩]` (conditional).
fn detect_ssr(name: &str, vs: &ValueSet, idx: &Symbol, env: &RangeEnv) -> Option<SsrInfo> {
    let lambda = Expr::lambda(name);
    let diff_of = |e: &Expr| -> Option<Expr> {
        let d = e.clone() - lambda.clone();
        let ok = !d.contains_read()
            && !d.contains_lambda()
            && !d.contains_sym(idx)
            && !d.free_syms().iter().any(|s| s.kind != SymbolKind::Var);
        ok.then_some(d)
    };

    if vs.has_tagged() {
        // Conditional SSR: untagged entries must be the identity λ_v.
        for u in vs.untagged() {
            if u.val != Val::point(lambda.clone()) {
                return None;
            }
        }
        let tagged: Vec<&TaggedVal> = vs.tagged().collect();
        let mut hi: Option<Expr> = None;
        for t in &tagged {
            let r = t.val.as_range()?;
            let dlo = diff_of(&r.lo)?;
            let dhi = diff_of(&r.hi)?;
            if !env.sign_of(&dlo).is_nonneg() {
                return None;
            }
            hi = Some(match hi {
                None => dhi,
                Some(h) if env.proves_ge(&dhi, &h) => dhi,
                Some(h) if env.proves_ge(&h, &dhi) => h,
                _ => return None,
            });
        }
        let guard = if tagged.len() == 1 {
            Some(tagged[0].guard.clone())
        } else {
            None
        };
        Some(SsrInfo {
            name: name.to_string(),
            k_range: Range::new(Expr::int(0), hi?),
            strict: false,
            guard,
        })
    } else {
        let single = vs.single_untagged()?;
        let r = single.as_range()?;
        let dlo = diff_of(&r.lo)?;
        let dhi = diff_of(&r.hi)?;
        if dlo.is_zero() && dhi.is_zero() {
            return None; // unchanged — invariant, not a recurrence
        }
        if !env.sign_of(&dlo).is_nonneg() {
            return None;
        }
        let strict = env.sign_of(&dlo).is_pos();
        Some(SsrInfo {
            name: name.to_string(),
            k_range: Range::new(dlo, dhi),
            strict,
            guard: None,
        })
    }
}

fn find_ssr<'a>(ssr_vars: &'a [SsrInfo], name: &str) -> Option<&'a SsrInfo> {
    ssr_vars.iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------------
// is_Mono_Array (Algorithm 2)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn is_mono_array(
    l: &LoopIr,
    array: &str,
    writes: &[ArrayWrite],
    svd: &Svd,
    conds: &CondTable,
    ssr_vars: &[SsrInfo],
    level: AlgorithmLevel,
    env: &RangeEnv,
) -> Option<ArrayProperty> {
    let [write] = writes else { return None };
    if write.subs.is_empty() {
        return None; // unknown write location
    }
    if write.subs.len() == 1 {
        if level.novel_concepts() {
            if let Some(p) = check_intermittent(l, array, write, svd, conds, ssr_vars, env) {
                return Some(p);
            }
        }
        return check_sra(l, array, write, ssr_vars, level, env);
    }
    if level.novel_concepts() {
        return check_multidim(l, array, write, env);
    }
    None
}

/// LEMMA 1: `inseq[ic] = j` and `ic = λ_ic + 1` under equal, loop-variant
/// if-conditions, with `j` an SSR variable.
fn check_intermittent(
    l: &LoopIr,
    array: &str,
    write: &ArrayWrite,
    svd: &Svd,
    conds: &CondTable,
    ssr_vars: &[SsrInfo],
    env: &RangeEnv,
) -> Option<ArrayProperty> {
    // Subscript snapshot must be a bare λ_s.
    let sub = write.subs[0].as_point()?;
    let s_sym = sub.as_sym()?;
    if s_sym.kind != SymbolKind::Lambda {
        return None;
    }
    let s = s_sym.name.to_string();

    // R_s: the counter must be incremented by exactly 1, conditionally.
    let r_s = svd.scalars.get(&s)?;
    let s_tagged: Vec<&TaggedVal> = r_s.tagged().collect();
    let [s_inc] = s_tagged.as_slice() else {
        return None;
    };
    let inc = s_inc.val.as_range()?.as_point()?;
    if inc.clone() - Expr::lambda(&s) != Expr::int(1) {
        return None;
    }
    let tag_s = &s_inc.guard;

    // R_v: the written value, tagged with the same condition.
    let v_tagged: Vec<&TaggedVal> = write.vals.tagged().collect();
    let [v_entry] = v_tagged.as_slice() else {
        return None;
    };
    let tag_v = &v_entry.guard;
    if !guards_equal(conds, tag_s, tag_v) {
        return None;
    }
    if !guard_is_loop_variant(conds, tag_v, l, svd) {
        return None;
    }

    // The value must be an SSR variable (the loop index qualifies) plus an
    // optional invariant constant.
    let v_expr = v_entry.val.as_range()?.as_point()?;
    let (ssr, _const) = match_ssr_expr(v_expr, ssr_vars, &l.index)?;

    let value_range = aggregate_value_expr(v_expr, l, ssr_vars, env);
    let strict = ssr.strict;
    Some(ArrayProperty {
        array: array.to_string(),
        monotonicity: if strict {
            Monotonicity::StrictlyMonotonic
        } else {
            Monotonicity::Monotonic
        },
        dim: 0,
        kind: PropertyKind::Intermittent { counter: s.clone() },
        index_range: Range::new(Expr::entry(&s), Expr::post_max(&s)),
        value_range,
        defined_in: l.id,
    })
}

/// SRA (base algorithm): `ar[i + c] = ssr_expr` assigned every iteration,
/// or the array self-recurrence `ar[i + c] = ar[i + c - 1] + k`. A constant
/// step `k >= 2` refines SMA into the strided variant with a gap bound; a
/// loop-invariant step of unknown sign yields a *guarded* SMA (NewAlgo
/// only) whose use sites must re-check `1 <= step` at runtime.
fn check_sra(
    l: &LoopIr,
    array: &str,
    write: &ArrayWrite,
    ssr_vars: &[SsrInfo],
    level: AlgorithmLevel,
    env: &RangeEnv,
) -> Option<ArrayProperty> {
    let sub = write.subs[0].as_point()?;
    let c = simple_subscript_offset(sub, &l.index)?;

    // Unconditional single value.
    let v = write.vals.single_untagged()?;
    let r = v.as_range()?;

    // Case 1: self-recurrence a[s] = a[s-1] + k (Figure 2(b)). The
    // monotone range includes the read anchor `s-1` of the first
    // iteration: a[c-1] <= a[c] holds by the recurrence itself.
    if let Some(step) = self_recurrence(array, sub, r, &l.index, env) {
        let written = subscript_range(sub, l, env)?;
        let idx_range = Range::new(written.lo - Expr::int(1), written.hi);
        let (monotonicity, kind) = match step {
            RecStep::Const(gap) if gap >= 2 => {
                (Monotonicity::StridedMonotonic { gap }, PropertyKind::Sra)
            }
            RecStep::Const(gap) => (
                if gap == 1 {
                    Monotonicity::StrictlyMonotonic
                } else {
                    Monotonicity::Monotonic
                },
                PropertyKind::Sra,
            ),
            RecStep::NonNeg { strict } => (
                if strict {
                    Monotonicity::StrictlyMonotonic
                } else {
                    Monotonicity::Monotonic
                },
                PropertyKind::Sra,
            ),
            RecStep::Unknown(step) => {
                if !level.novel_concepts() {
                    return None;
                }
                (
                    Monotonicity::StrictlyMonotonic,
                    PropertyKind::Guarded {
                        guard: Box::new(CheckExpr::le(Expr::int(1), step)),
                    },
                )
            }
        };
        return Some(ArrayProperty {
            array: array.to_string(),
            monotonicity,
            dim: 0,
            kind,
            index_range: idx_range,
            value_range: None,
            defined_in: l.id,
        });
    }

    // Case 2: ar[i+c] = λ_sc + const with sc an SSR variable, or the loop
    // index itself plus a constant. Consecutive elements differ by the
    // SSR's per-iteration step, so a constant lower bound >= 2 on that
    // step carries over as the array's gap bound.
    let v_expr = r.as_point()?;
    let (ssr, _k) = match_ssr_expr(v_expr, ssr_vars, &l.index)?;
    let monotonicity = match ssr.k_range.lo.as_int() {
        Some(gap) if ssr.strict && gap >= 2 => Monotonicity::StridedMonotonic { gap },
        _ if ssr.strict => Monotonicity::StrictlyMonotonic,
        _ => Monotonicity::Monotonic,
    };
    let value_range = aggregate_value_expr(v_expr, l, ssr_vars, env);
    let idx_range = Range::new(
        Expr::int(c),
        l.n_iters.clone() - Expr::int(1) + Expr::int(c),
    );
    Some(ArrayProperty {
        array: array.to_string(),
        monotonicity,
        dim: 0,
        kind: PropertyKind::Sra,
        index_range: idx_range,
        value_range,
        defined_in: l.id,
    })
}

/// LEMMA 2: exactly one dimension is a simple subscript of the loop index;
/// the stored value is `α·i + [rl:ru]` with `[rl:ru]` PNN and `α+rl ≥ ru`.
fn check_multidim(
    l: &LoopIr,
    array: &str,
    write: &ArrayWrite,
    env: &RangeEnv,
) -> Option<ArrayProperty> {
    let idx = &l.index;
    let mut dim = None;
    for (pos, s) in write.subs.iter().enumerate() {
        let touches = s.lo.contains_sym(idx) || s.hi.contains_sym(idx);
        if !touches {
            continue;
        }
        let point = s.as_point()?;
        simple_subscript_offset(point, idx)?;
        if dim.is_some() {
            return None; // more than one index-dependent dimension
        }
        dim = Some(pos);
    }
    let dim = dim?;

    let v = write.vals.single_untagged()?;
    let r = v.as_range()?;
    // R_v = α·i + [rl:ru]: split both bounds, α must match.
    let (a_lo, rl) = r.lo.split_linear(idx)?;
    let (a_hi, ru) = r.hi.split_linear(idx)?;
    if a_lo != a_hi {
        return None;
    }
    let alpha = a_lo;
    // remainder must be PNN (Algorithm 2 lines 24-25).
    let rem = Range::new(rl.clone(), ru.clone());
    rem.pnn(env)?;
    // α + rl ≥ ru  (strict when >).
    let lhs = alpha.clone() + rl.clone();
    if !env.proves_ge(&lhs, &ru) {
        return None;
    }
    let strict = env.proves_gt(&lhs, &ru);

    let n1 = l.n_iters.clone() - Expr::int(1);
    let point = write.subs[dim].as_point().expect("checked above");
    let c = simple_subscript_offset(point, idx).expect("checked above");
    let value_range = Range::new(rl.clone(), alpha.clone() * n1.clone() + ru.clone());
    Some(ArrayProperty {
        array: array.to_string(),
        monotonicity: if strict {
            Monotonicity::StrictlyMonotonic
        } else {
            Monotonicity::Monotonic
        },
        dim,
        kind: PropertyKind::MultiDim,
        index_range: Range::new(Expr::int(c), n1 + Expr::int(c)),
        value_range: Some(value_range),
        defined_in: l.id,
    })
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Matches `e = sym(ssr) + const` where `ssr` is the loop index (plain
/// symbol) or an SSR variable (appearing as `λ_name`); the constant must be
/// loop-invariant.
fn match_ssr_expr<'a>(
    e: &Expr,
    ssr_vars: &'a [SsrInfo],
    idx: &Symbol,
) -> Option<(&'a SsrInfo, Expr)> {
    for info in ssr_vars {
        let sym = if info.name == idx.name.as_ref() {
            idx.clone()
        } else {
            Symbol::lambda(&info.name)
        };
        if let Some((coef, rest)) = e.split_linear(&sym) {
            if coef.as_int() == Some(1)
                && !rest.contains_lambda()
                && !rest.contains_read()
                && !rest.contains_sym(idx)
            {
                return Some((info, rest));
            }
        }
    }
    None
}

/// `sub = i + c` with invariant constant `c` → `Some(c)` (c must be an
/// integer literal for the subscript to be "simple").
fn simple_subscript_offset(sub: &Expr, idx: &Symbol) -> Option<i64> {
    let (coef, rest) = sub.split_linear(idx)?;
    if coef.as_int() != Some(1) {
        return None;
    }
    rest.as_int()
}

/// Classified per-iteration step of an array self-recurrence.
enum RecStep {
    /// Constant step `c >= 0` (exact: lo == hi).
    Const(i64),
    /// Provably non-negative symbolic step; `strict` when provably positive.
    NonNeg {
        /// True when the step is provably positive.
        strict: bool,
    },
    /// Loop-invariant point step of statically unknown sign — monotone
    /// only under the runtime guard `1 <= step`.
    Unknown(Expr),
}

/// Detects `value = read(array, [sub - 1]) + k` with invariant `k` and
/// classifies the step (see [`RecStep`]).
fn self_recurrence(
    array: &str,
    sub: &Expr,
    val: &Range,
    idx: &Symbol,
    env: &RangeEnv,
) -> Option<RecStep> {
    let prev = Expr::read(array, vec![sub.clone() - Expr::int(1)]);
    let dlo = val.lo.clone() - prev.clone();
    let dhi = val.hi.clone() - prev;
    if dlo.contains_read() || dhi.contains_read() || dlo.contains_lambda() {
        return None;
    }
    if let (Some(cl), Some(ch)) = (dlo.as_int(), dhi.as_int()) {
        if cl == ch {
            return (cl >= 0).then_some(RecStep::Const(cl));
        }
    }
    if env.sign_of(&dlo).is_nonneg() {
        return Some(RecStep::NonNeg {
            strict: env.sign_of(&dlo).is_pos(),
        });
    }
    // Statically unknown sign: a loop-invariant point step can still back
    // a conditionally-monotone property, guarded by `1 <= step` at runtime.
    if dlo == dhi
        && !dlo.contains_sym(idx)
        && !dlo.free_syms().iter().any(|s| s.kind != SymbolKind::Var)
    {
        return Some(RecStep::Unknown(dlo));
    }
    None
}

/// Subscript range covered by `i + c` over the whole iteration space.
fn subscript_range(sub: &Expr, l: &LoopIr, env: &RangeEnv) -> Option<Range> {
    Range::point(sub.clone()).subst_sym_range(
        &l.index,
        &Range::new(Expr::int(0), l.n_iters.clone() - Expr::int(1)),
        env,
    )
}

/// True when every condition in the guard references the loop index or a
/// loop-variant variable (Algorithm 2 line 15's "loop variant" test).
fn guard_is_loop_variant(conds: &CondTable, guard: &Guard, l: &LoopIr, svd: &Svd) -> bool {
    !guard.is_empty()
        && guard.iter().all(|(cid, _)| {
            conds
                .get(*cid)
                .referenced_vars()
                .iter()
                .any(|v| v == l.index.name.as_ref() || svd.scalars.contains_key(v))
        })
}

/// Structural equality of two guards under the condition table.
fn guards_equal(conds: &CondTable, a: &Guard, b: &Guard) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((ca, pa), (cb, pb))| pa == pb && conds.tags_equal(*ca, *cb))
}

/// Aggregates a per-iteration value expression over the whole loop:
/// substitutes each `λ_sc` of an SSR variable with its during-loop range
/// and the loop index with `[0 : N-1]`, returning the hull.
fn aggregate_value_expr(
    e: &Expr,
    l: &LoopIr,
    ssr_vars: &[SsrInfo],
    env: &RangeEnv,
) -> Option<Range> {
    aggregate_value_range(&Range::point(e.clone()), l, ssr_vars, env)
}

fn aggregate_value_range(
    r: &Range,
    l: &LoopIr,
    ssr_vars: &[SsrInfo],
    env: &RangeEnv,
) -> Option<Range> {
    if r.lo.contains_read() || r.hi.contains_read() {
        return None;
    }
    let mut cur = r.clone();
    let n1 = l.n_iters.clone() - Expr::int(1);
    // λ_sc of SSR variables → [Λ_sc : Λ_sc + (N-1)*ubk].
    for _ in 0..16 {
        let lam: Option<Symbol> = cur
            .lo
            .free_syms()
            .into_iter()
            .chain(cur.hi.free_syms())
            .find(|s| s.kind == SymbolKind::Lambda);
        let Some(sym) = lam else { break };
        let info = find_ssr(ssr_vars, sym.name.as_ref())?;
        let span = Range::new(
            Expr::entry(&info.name),
            Expr::entry(&info.name) + n1.clone() * info.k_range.hi.clone(),
        );
        cur = cur.subst_sym_range(&sym, &span, env)?;
    }
    if cur.lo.contains_lambda() || cur.hi.contains_lambda() {
        return None;
    }
    // Loop index → [0 : N-1].
    if cur.lo.contains_sym(&l.index) || cur.hi.contains_sym(&l.index) {
        cur = cur.subst_sym_range(&l.index, &Range::new(Expr::int(0), n1), env)?;
    }
    Some(cur)
}

// ---------------------------------------------------------------------------
// Collapse
// ---------------------------------------------------------------------------

fn collapse_loop(
    l: &LoopIr,
    svd: &Svd,
    ssr_vars: &[SsrInfo],
    properties: &[ArrayProperty],
    env: &RangeEnv,
) -> CollapsedLoop {
    let mut out = CollapsedLoop::default();
    let n = l.n_iters.clone();

    // Scalars.
    for (name, vs) in &svd.scalars {
        if name == l.index.name.as_ref() {
            continue;
        }
        let val = if let Some(info) = find_ssr(ssr_vars, name) {
            Val::Range(Range::new(
                Expr::entry(name) + n.clone() * info.k_range.lo.clone(),
                Expr::entry(name) + n.clone() * info.k_range.hi.clone(),
            ))
        } else {
            collapse_plain_scalar(vs, l, ssr_vars, env)
        };
        out.scalars.push(CollapsedScalar {
            name: name.clone(),
            val,
        });
    }

    // Arrays.
    for (array, writes) in &svd.arrays {
        // Property-backed intermittent arrays collapse to the counted
        // region with the aggregated value range.
        if let Some(p) = properties
            .iter()
            .find(|p| p.array == *array && matches!(p.kind, PropertyKind::Intermittent { .. }))
        {
            out.arrays.push(CollapsedArrayWrite {
                array: array.clone(),
                subs: vec![p.index_range.clone()],
                val: p.value_range.clone().map(Val::Range).unwrap_or(Val::Bottom),
            });
            continue;
        }
        let mut aggregated = Vec::new();
        let mut unknown = false;
        for w in writes {
            match aggregate_write(w, l, ssr_vars, env) {
                Some(cw) => aggregated.push(cw),
                None => {
                    unknown = true;
                    break;
                }
            }
        }
        if unknown {
            out.arrays.push(CollapsedArrayWrite {
                array: array.clone(),
                subs: Vec::new(),
                val: Val::Bottom,
            });
            continue;
        }
        let merged = try_merge_writes(aggregated, env);
        for (subs, val) in merged {
            out.arrays.push(CollapsedArrayWrite {
                array: array.clone(),
                subs,
                val,
            });
        }
    }
    out
}

fn collapse_plain_scalar(vs: &ValueSet, l: &LoopIr, ssr_vars: &[SsrInfo], env: &RangeEnv) -> Val {
    let mut parts = Vec::new();
    for tv in vs.entries() {
        let Val::Range(r) = &tv.val else {
            return Val::Bottom;
        };
        match aggregate_value_range(r, l, ssr_vars, env) {
            Some(r) => parts.push(r),
            None => return Val::Bottom,
        }
    }
    match subsub_symbolic::simplify::hull(&parts, env) {
        Some(r) => Val::Range(r),
        None => Val::Bottom,
    }
}

/// Aggregates one write over the iteration space: subscript positions and
/// values get the loop index substituted by `[0 : N-1]`, SSR λ's by their
/// during-loop spans. Unresolvable writes return `None` (caller widens to
/// whole-array-unknown).
fn aggregate_write(
    w: &ArrayWrite,
    l: &LoopIr,
    ssr_vars: &[SsrInfo],
    env: &RangeEnv,
) -> Option<(Vec<Range>, Val)> {
    let mut subs = Vec::with_capacity(w.subs.len());
    for s in w.subs.iter() {
        if s.lo.contains_read() || s.hi.contains_read() {
            return None;
        }
        subs.push(aggregate_value_range(s, l, ssr_vars, env)?);
    }
    // Values: aggregate every non-λ_array entry; the λ_array alternative
    // (unchanged element) does not contribute a new value.
    let mut parts = Vec::new();
    for tv in w.vals.entries() {
        let Val::Range(r) = &tv.val else {
            return Some((subs, Val::Bottom));
        };
        if let Some(sym) = r.as_point().and_then(Expr::as_sym) {
            if sym.kind == SymbolKind::Lambda {
                // λ of the array itself or an unresolved scalar: if it is
                // the array's own λ, skip; otherwise aggregate normally.
                let is_array_lambda = find_ssr(ssr_vars, sym.name.as_ref()).is_none();
                if is_array_lambda {
                    continue;
                }
            }
        }
        match aggregate_value_range(r, l, ssr_vars, env) {
            Some(r) => parts.push(r),
            None => return Some((subs, Val::Bottom)),
        }
    }
    if parts.is_empty() {
        return Some((subs, Val::Bottom));
    }
    let val = match subsub_symbolic::simplify::hull(&parts, env) {
        Some(r) => Val::Range(r),
        None => Val::Bottom,
    };
    Some((subs, val))
}

/// The Section 3.3 simplification: writes identical in all dimensions but
/// one — whose subscripts are contiguous constants — merge into one write
/// with that dimension spanning the constants and the value hull, when the
/// hull is provable.
fn try_merge_writes(writes: Vec<(Vec<Range>, Val)>, env: &RangeEnv) -> Vec<(Vec<Range>, Val)> {
    if writes.len() < 2 {
        return writes;
    }
    let ndims = writes[0].0.len();
    if writes.iter().any(|(s, _)| s.len() != ndims) {
        return writes;
    }
    'dims: for d in 0..ndims {
        // All other dimensions equal across writes?
        for (s, _) in &writes[1..] {
            for (k, sub) in s.iter().enumerate() {
                if k != d && *sub != writes[0].0[k] {
                    continue 'dims;
                }
            }
        }
        // Dimension d: contiguous constant points.
        let mut consts = Vec::new();
        for (s, _) in &writes {
            match s[d].as_point().and_then(Expr::as_int) {
                Some(c) => consts.push(c),
                None => continue 'dims,
            }
        }
        let mut sorted = consts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != consts.len()
            || (sorted[sorted.len() - 1] - sorted[0] + 1) as usize != sorted.len()
        {
            continue 'dims;
        }
        // Value hull must be provable.
        let ranges: Option<Vec<Range>> =
            writes.iter().map(|(_, v)| v.as_range().cloned()).collect();
        let Some(ranges) = ranges else { continue 'dims };
        let Some(hull) = subsub_symbolic::simplify::hull(&ranges, env) else {
            continue 'dims;
        };
        let mut subs = writes[0].0.clone();
        subs[d] = Range::ints(sorted[0], sorted[sorted.len() - 1]);
        return vec![(subs, Val::Range(hull))];
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1::phase1;
    use std::collections::HashMap;
    use subsub_cfront::parse_program;
    use subsub_ir::{lower_function, LoopCfg};

    fn analyze_first_loop(src: &str, level: AlgorithmLevel) -> Phase2Result {
        let p = parse_program(src).unwrap();
        let f = lower_function(&p.funcs[0], &p.globals).unwrap();
        let loops = f.loops();
        let l = loops[0];
        let cfg = LoopCfg::build(l);
        let env = RangeEnv::new();
        let r1 = phase1(l, &cfg, &HashMap::new(), &f.types, &env);
        phase2(l, &r1.svd, &f.conds, level, &env)
    }

    const AMGMK_FILL: &str = r#"
        void f(int num_rows, int *A_i, int *A_rownnz) {
            int i; int adiag; int irownnz;
            irownnz = 0;
            for (i = 0; i < num_rows; i++) {
                adiag = A_i[i+1] - A_i[i];
                if (adiag > 0)
                    A_rownnz[irownnz++] = i;
            }
        }
    "#;

    /// Paper Section 3.1: A_rownnz is intermittently *strictly* monotonic;
    /// irownnz aggregates to [Λ : Λ + num_rows].
    #[test]
    fn amgmk_intermittent_sma() {
        let r = analyze_first_loop(AMGMK_FILL, AlgorithmLevel::New);
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "A_rownnz")
            .expect("property");
        assert!(p.monotonicity.is_strict());
        assert!(matches!(&p.kind, PropertyKind::Intermittent { counter } if counter == "irownnz"));
        assert_eq!(
            p.index_range,
            Range::new(Expr::entry("irownnz"), Expr::post_max("irownnz"))
        );
        // Value range: [0 : num_rows - 1].
        assert_eq!(
            p.value_range,
            Some(Range::new(
                Expr::int(0),
                Expr::var("num_rows") - Expr::int(1)
            ))
        );
        // irownnz is a conditional SSR with k ∈ [0:1].
        let ssr = r
            .ssr_vars
            .iter()
            .find(|s| s.name == "irownnz")
            .expect("ssr");
        assert_eq!(ssr.k_range, Range::ints(0, 1));
        assert!(!ssr.strict);
        // Collapsed scalar: irownnz = [Λ : Λ + num_rows].
        let cs = r
            .collapsed
            .scalars
            .iter()
            .find(|c| c.name == "irownnz")
            .unwrap();
        assert_eq!(
            cs.val,
            Val::Range(Range::new(
                Expr::entry("irownnz"),
                Expr::entry("irownnz") + Expr::var("num_rows")
            ))
        );
        // adiag collapses to ⊥ (paper: adiag = ⊥).
        let ad = r
            .collapsed
            .scalars
            .iter()
            .find(|c| c.name == "adiag")
            .unwrap();
        assert_eq!(ad.val, Val::Bottom);
    }

    /// The base algorithm must NOT find the intermittent property.
    #[test]
    fn amgmk_base_level_fails() {
        let r = analyze_first_loop(AMGMK_FILL, AlgorithmLevel::Base);
        assert!(r.properties.is_empty());
    }

    /// Paper Section 3.2 (SDDMM): col_ptr strictly monotonic, holder
    /// aggregates to [Λ : Λ + nonzeros].
    #[test]
    fn sddmm_intermittent_sma() {
        let r = analyze_first_loop(
            r#"
            void fill(int nonzeros, int *col_val, int *col_ptr) {
                int i; int holder; int r;
                holder = 1; col_ptr[0] = 0; r = col_val[0];
                for (i = 0; i < nonzeros; i++) {
                    if (col_val[i] != r) {
                        col_ptr[holder++] = i;
                        r = col_val[i];
                    }
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "col_ptr")
            .expect("property");
        assert!(p.monotonicity.is_strict());
        assert_eq!(
            p.value_range,
            Some(Range::new(
                Expr::int(0),
                Expr::var("nonzeros") - Expr::int(1)
            ))
        );
    }

    /// SRA (Figure 2(a) outer pattern): a[i] = p with p an unconditional
    /// positive recurrence → strictly monotonic, continuous.
    #[test]
    fn sra_unconditional() {
        let r = analyze_first_loop(
            "void f(int n, int *a) { int i; int p; p = 0; for (i=0;i<n;i++) { a[i] = p; p = p + 2; } }",
            AlgorithmLevel::Base,
        );
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "a")
            .expect("property");
        assert!(p.monotonicity.is_strict());
        assert!(matches!(p.kind, PropertyKind::Sra));
        assert_eq!(
            p.index_range,
            Range::new(Expr::int(0), Expr::var("n") - Expr::int(1))
        );
    }

    /// A constant step >= 2 refines SMA into the strided variant carrying
    /// the gap bound (non-unit-stride recurrence, arXiv 1911.05839).
    #[test]
    fn sra_strided_gap_bound() {
        let r = analyze_first_loop(
            "void f(int n, int *a) { int i; int p; p = 0; for (i=0;i<n;i++) { a[i] = p; p = p + 2; } }",
            AlgorithmLevel::Base,
        );
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "a")
            .expect("property");
        assert_eq!(p.monotonicity, Monotonicity::StridedMonotonic { gap: 2 });
        assert_eq!(p.monotonicity.min_gap(), 2);
        assert!(matches!(p.kind, PropertyKind::Sra));
    }

    /// The self-recurrence form also carries the gap bound.
    #[test]
    fn sra_self_recurrence_strided() {
        let r = analyze_first_loop(
            "void f(int n, int *a) { int i; a[0] = 0; for (i=0;i<n;i++) { a[i+1] = a[i] + 3; } }",
            AlgorithmLevel::Base,
        );
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "a")
            .expect("property");
        assert_eq!(p.monotonicity, Monotonicity::StridedMonotonic { gap: 3 });
        assert_eq!(p.index_range, Range::new(Expr::int(0), Expr::var("n")));
    }

    /// A loop-invariant step of unknown sign is conditionally monotone:
    /// strict SMA under the runtime guard `1 <= step` (NewAlgo only).
    #[test]
    fn sra_guarded_recurrence() {
        let src = r#"
            void f(int n, int gstep, int *a) {
                int i;
                for (i = 0; i < n; i++) { a[i+1] = a[i] + gstep; }
            }
        "#;
        let r = analyze_first_loop(src, AlgorithmLevel::New);
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "a")
            .expect("property");
        assert!(p.monotonicity.is_strict());
        let PropertyKind::Guarded { guard } = &p.kind else {
            panic!("expected guarded kind, got {:?}", p.kind);
        };
        assert_eq!(guard.to_string(), "1 <= gstep");
        assert_eq!(p.index_range, Range::new(Expr::int(0), Expr::var("n")));

        // The base algorithm must not claim the guarded property.
        let rb = analyze_first_loop(src, AlgorithmLevel::Base);
        assert!(rb.properties.is_empty());
    }

    /// Figure 2(b): the array self-recurrence a[i+1] = a[i] + k.
    #[test]
    fn sra_self_recurrence() {
        let r = analyze_first_loop(
            "void f(int n, int *a) { int i; a[0] = 0; for (i=0;i<n;i++) { a[i+1] = a[i] + 3; } }",
            AlgorithmLevel::Base,
        );
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "a")
            .expect("property");
        assert!(p.monotonicity.is_strict());
        // Monotone over [0:n]: the read anchor a[0] is included because
        // a[1] = a[0] + k implies a[0] <= a[1].
        assert_eq!(p.index_range, Range::new(Expr::int(0), Expr::var("n")));
    }

    /// Self-recurrence with a symbolic non-negative increment is monotone
    /// but not strict.
    #[test]
    fn sra_self_recurrence_nonneg() {
        let src = r#"
            void f(int n, int *a, int *cnt) {
                int i;
                for (i = 0; i < n; i++) { a[i+1] = a[i] + 0; }
            }
        "#;
        let r = analyze_first_loop(src, AlgorithmLevel::Base);
        let p = r
            .properties
            .iter()
            .find(|p| p.array == "a")
            .expect("property");
        assert!(!p.monotonicity.is_strict());
    }

    /// A decreasing recurrence must NOT be monotonic.
    #[test]
    fn decreasing_is_rejected() {
        let r = analyze_first_loop(
            "void f(int n, int *a) { int i; int p; p = 0; for (i=0;i<n;i++) { a[i] = p; p = p - 1; } }",
            AlgorithmLevel::New,
        );
        assert!(r.properties.is_empty());
        assert!(!r.ssr_vars.iter().any(|s| s.name == "p"));
    }

    /// A counter incremented by 2 under the condition does not match
    /// LEMMA 1 (requires increment by exactly 1).
    #[test]
    fn intermittent_requires_unit_increment() {
        let r = analyze_first_loop(
            r#"
            void f(int n, int *a, int *flag) {
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {
                    if (flag[i] > 0) {
                        a[m] = i;
                        m = m + 2;
                    }
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        assert!(r.properties.is_empty());
    }

    /// Different conditions on the write and the counter increment
    /// invalidate LEMMA 1.
    #[test]
    fn intermittent_requires_equal_tags() {
        let r = analyze_first_loop(
            r#"
            void f(int n, int *a, int *flag, int *other) {
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {
                    if (flag[i] > 0) a[m] = i;
                    if (other[i] > 0) m = m + 1;
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        assert!(r.properties.is_empty());
    }

    /// A loop-INVARIANT condition does not generate an intermittent
    /// sequence (Algorithm 2 line 15 requires loop variance).
    #[test]
    fn intermittent_requires_variant_condition() {
        let r = analyze_first_loop(
            r#"
            void f(int n, int t, int *a) {
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {
                    if (t > 0) {
                        a[m] = i;
                        m = m + 1;
                    }
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        assert!(r.properties.is_empty());
    }

    /// Collapsed writes merge per Section 3.3 when the dimension constants
    /// are contiguous and the value hull is provable.
    #[test]
    fn merge_writes_contiguous() {
        let env = RangeEnv::new();
        let mk = |c: i64, lo: i64, hi: i64| {
            (
                vec![
                    Range::point(Expr::var("iel")),
                    Range::ints(c, c),
                    Range::ints(0, 4),
                ],
                Val::Range(Range::new(
                    Expr::entry("ntemp") + Expr::int(lo),
                    Expr::entry("ntemp") + Expr::int(hi),
                )),
            )
        };
        let writes = vec![
            mk(0, 4, 124),
            mk(1, 0, 120),
            mk(2, 20, 124),
            mk(3, 0, 104),
            mk(4, 100, 124),
            mk(5, 0, 24),
        ];
        let merged = try_merge_writes(writes, &env);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].0[1], Range::ints(0, 5));
        assert_eq!(
            merged[0].1,
            Val::Range(Range::new(
                Expr::entry("ntemp"),
                Expr::entry("ntemp") + Expr::int(124)
            ))
        );
    }

    /// Non-contiguous constants do not merge.
    #[test]
    fn merge_writes_noncontiguous_kept() {
        let env = RangeEnv::new();
        let mk = |c: i64| (vec![Range::ints(c, c)], Val::Range(Range::ints(0, 1)));
        let writes = vec![mk(0), mk(2)];
        let merged = try_merge_writes(writes, &env);
        assert_eq!(merged.len(), 2);
    }
}
