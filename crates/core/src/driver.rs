//! Whole-program driver: parse → lower → analyze → decide, per function
//! and per loop, at a chosen [`AlgorithmLevel`] — the workflow whose
//! output the paper's Figure 17 compares across Cetus / Cetus+BaseAlgo /
//! Cetus+NewAlgo.

use crate::deptest::{decide_loop, LoopDecision};
use crate::nest::analyze_function;
use crate::properties::{AlgorithmLevel, PropertyDb};
use std::fmt;
use subsub_cfront::diag::{Diagnostic, ParseBudget};
use subsub_cfront::parser::parse_program_with;
use subsub_ir::{lower_function, IrStmt, LoopId, LoopIr};
use subsub_symbolic::RangeEnv;

/// Why a translation unit was rejected before analysis could run.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// Lexer/parser rejection — carries the full typed diagnostic
    /// (code, span, line) so callers can render carets or map the
    /// stable code into a protocol response.
    Parse(Diagnostic),
    /// The program parsed but a function uses constructs outside the
    /// analyzable subset.
    Lower {
        /// The function that failed to lower.
        function: String,
        /// Human-readable reason.
        detail: String,
    },
}

impl AnalyzeError {
    /// Stable machine-readable code: the diagnostic's kebab name for
    /// parse rejections, `"lower"` for subset violations.
    pub fn code(&self) -> &'static str {
        match self {
            AnalyzeError::Parse(d) => d.code.name(),
            AnalyzeError::Lower { .. } => "lower",
        }
    }
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Parse(d) => write!(f, "{d}"),
            AnalyzeError::Lower { function, detail } => {
                write!(f, "function {function}: {detail}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Analysis + decision for one loop.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Loop id (pre-order within the function).
    pub id: LoopId,
    /// The loop variable name.
    pub index_var: String,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Parallelization decision.
    pub decision: LoopDecision,
}

/// Report for one function.
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Per-loop reports in pre-order.
    pub loops: Vec<LoopReport>,
    /// Proven array properties (display form).
    pub properties: Vec<String>,
}

impl FunctionReport {
    /// The report of a specific loop.
    pub fn loop_report(&self, id: LoopId) -> Option<&LoopReport> {
        self.loops.iter().find(|l| l.id == id)
    }

    /// The first parallelizable loop at the outermost possible depth —
    /// what a parallelizer would actually annotate. Inner loops under an
    /// already-parallel ancestor are not returned.
    pub fn outermost_parallel(&self) -> Option<&LoopReport> {
        let min_depth = self
            .loops
            .iter()
            .filter(|l| l.decision.is_parallel())
            .map(|l| l.depth)
            .min()?;
        self.loops
            .iter()
            .find(|l| l.depth == min_depth && l.decision.is_parallel())
    }

    /// True if some loop at depth 0 is parallel.
    pub fn has_outer_parallelism(&self) -> bool {
        self.loops
            .iter()
            .any(|l| l.depth == 0 && l.decision.is_parallel())
    }

    /// The reports of the *last top-level loop nest* — by the inline-
    /// expansion methodology of the paper, the compute nest follows the
    /// subscript-array fill loops, so the last nest is the one whose
    /// performance the evaluation measures.
    pub fn last_nest(&self) -> &[LoopReport] {
        let Some(start) = self.loops.iter().rposition(|l| l.depth == 0) else {
            return &self.loops;
        };
        // Pre-order ids: the last depth-0 loop's subtree is the suffix.
        &self.loops[start..]
    }

    /// The best (outermost) parallel loop within the last top-level nest.
    pub fn last_nest_parallel(&self) -> Option<&LoopReport> {
        let nest = self.last_nest();
        let min_depth = nest
            .iter()
            .filter(|l| l.decision.is_parallel())
            .map(|l| l.depth)
            .min()?;
        nest.iter()
            .find(|l| l.depth == min_depth && l.decision.is_parallel())
    }
}

/// Report for a whole translation unit.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// The algorithm level the analysis ran at.
    pub level: AlgorithmLevel,
    /// Per-function reports.
    pub functions: Vec<FunctionReport>,
}

impl ProgramReport {
    /// Finds a function's report.
    pub fn function(&self, name: &str) -> Option<&FunctionReport> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl fmt::Display for ProgramReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.level)?;
        for func in &self.functions {
            writeln!(f, "function {}:", func.name)?;
            for p in &func.properties {
                writeln!(f, "  property: {p}")?;
            }
            for l in &func.loops {
                writeln!(
                    f,
                    "  {:indent$}loop {} ({}): {}",
                    "",
                    l.id,
                    l.index_var,
                    l.decision,
                    indent = l.depth * 2
                )?;
                // Surface the executable form of the guard: which runtime
                // scalars the compiled predicate will read.
                if let Some(c) = l.decision.plan().and_then(|p| p.runtime_check.as_ref()) {
                    let binds = match subsub_rtcheck::CompiledCheck::compile(c) {
                        Ok(p) => p
                            .required_symbols()
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        Err(e) => format!("not executable: {e}"),
                    };
                    writeln!(
                        f,
                        "  {:indent$}  runtime check: {c}  [binds: {binds}]",
                        "",
                        indent = l.depth * 2
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Parses and analyzes a C-subset translation unit at the given level,
/// under the default [`ParseBudget`].
pub fn analyze_program(src: &str, level: AlgorithmLevel) -> Result<ProgramReport, AnalyzeError> {
    analyze_program_with(src, level, &ParseBudget::DEFAULT)
}

/// Parses and analyzes a translation unit under an explicit parse
/// budget — the entry point for services facing untrusted sources.
pub fn analyze_program_with(
    src: &str,
    level: AlgorithmLevel,
    budget: &ParseBudget,
) -> Result<ProgramReport, AnalyzeError> {
    let prog = parse_program_with(src, budget).map_err(AnalyzeError::Parse)?;
    let mut lowered = Vec::new();
    for func in &prog.funcs {
        lowered.push(
            lower_function(func, &prog.globals).map_err(|e| AnalyzeError::Lower {
                function: func.name.clone(),
                detail: e.to_string(),
            })?,
        );
    }
    Ok(analyze_lowered(&lowered, level))
}

/// Analyzes already-lowered functions at the given level — the entry
/// point for callers (the analysis service) that hold pre-lowered IR
/// nests instead of C source. Infallible: lowering is where programs
/// get rejected; every lowered function analyzes to *some* report.
pub fn analyze_lowered(
    funcs: &[subsub_ir::LoweredFunction],
    level: AlgorithmLevel,
) -> ProgramReport {
    let env = RangeEnv::new();
    let mut functions = Vec::new();
    for lowered in funcs {
        let fa = if level.analyzes_arrays() {
            analyze_function(lowered, level, &env)
        } else {
            // Classical level still needs the (empty) property DB shape.
            crate::nest::FunctionAnalysis {
                name: lowered.name.clone(),
                properties: PropertyDb::new(),
                loops: Default::default(),
                collapsed: Default::default(),
            }
        };
        let mut loops = Vec::new();
        collect_with_depth(&lowered.body, 0, &mut |l: &LoopIr, depth| {
            let decision = decide_loop(
                l,
                &lowered.types,
                &lowered.conds,
                &fa.properties,
                level,
                &env,
            );
            loops.push(LoopReport {
                id: l.id,
                index_var: l.original_index.clone(),
                depth,
                decision,
            });
        });
        functions.push(FunctionReport {
            name: lowered.name.clone(),
            loops,
            properties: fa.properties.iter().map(|p| p.to_string()).collect(),
        });
    }
    ProgramReport { level, functions }
}

fn collect_with_depth(body: &[IrStmt], depth: usize, f: &mut impl FnMut(&LoopIr, usize)) {
    for s in body {
        match s {
            IrStmt::Loop(l) => {
                f(l, depth);
                collect_with_depth(&l.body, depth + 1, f);
            }
            IrStmt::If { then_s, else_s, .. } => {
                collect_with_depth(then_s, depth, f);
                collect_with_depth(else_s, depth, f);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AMGMK: &str = r#"
        void amgmk(int num_rows, int num_rownnz, int *A_i, int *A_j,
                   double *A_data, double *x_data, double *y_data, int *A_rownnz) {
            int i; int adiag; int irownnz; int jj; int m; double tempx;
            irownnz = 0;
            for (i = 0; i < num_rows; i++) {
                adiag = A_i[i+1] - A_i[i];
                if (adiag > 0)
                    A_rownnz[irownnz++] = i;
            }
            for (i = 0; i < num_rownnz; i++) {
                m = A_rownnz[i];
                tempx = y_data[m];
                for (jj = A_i[m]; jj < A_i[m+1]; jj++)
                    tempx += A_data[jj] * x_data[A_j[jj]];
                y_data[m] = tempx;
            }
        }
    "#;

    /// The three Figure-17 configurations on AMGmk: classical finds only
    /// the inner reduction loop; the new algorithm promotes parallelism to
    /// the outer SpMV loop.
    #[test]
    fn figure17_amgmk_levels() {
        let classic = analyze_program(AMGMK, AlgorithmLevel::Classic).unwrap();
        let f = classic.function("amgmk").unwrap();
        let best = f.outermost_parallel().unwrap();
        assert_eq!(best.depth, 1, "classical parallelism is at the inner loop");

        let new = analyze_program(AMGMK, AlgorithmLevel::New).unwrap();
        let f = new.function("amgmk").unwrap();
        let best = f.outermost_parallel().unwrap();
        assert_eq!(best.depth, 0, "new algorithm parallelizes the outer loop");
        assert_eq!(best.id, LoopId(1));
        assert!(f.has_outer_parallelism());
    }

    #[test]
    fn display_renders_decisions() {
        let rep = analyze_program(AMGMK, AlgorithmLevel::New).unwrap();
        let text = rep.to_string();
        assert!(text.contains("Cetus+NewAlgo"));
        assert!(text.contains("omp parallel for"));
        assert!(text.contains("irownnz_max"));
        assert!(text.contains("runtime check: num_rownnz - 1 <= irownnz_max"));
        assert!(text.contains("binds:"));
    }

    #[test]
    fn bad_source_reports_error() {
        assert!(analyze_program("void f( {", AlgorithmLevel::New).is_err());
    }

    #[test]
    fn bad_source_yields_typed_parse_diagnostic() {
        let err = analyze_program("void f( {", AlgorithmLevel::New).unwrap_err();
        match &err {
            AnalyzeError::Parse(d) => {
                assert!(d.code.code() > 0);
                assert!(d.line >= 1);
            }
            other => panic!("expected a parse diagnostic, got {other:?}"),
        }
        assert!(!err.code().is_empty());
    }

    #[test]
    fn budget_violation_surfaces_through_analyze() {
        let budget = ParseBudget {
            max_input_bytes: 16,
            ..ParseBudget::DEFAULT
        };
        let err = analyze_program_with("void f() { int abcdef; }", AlgorithmLevel::New, &budget)
            .unwrap_err();
        match err {
            AnalyzeError::Parse(d) => assert!(d.is_budget(), "{d:?}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multiple_functions_reported() {
        let src = r#"
            void a(int n, double *x) { int i; for (i=0;i<n;i++) x[i] = 0.0; }
            void b(int n, double *x) { int i; for (i=0;i<n;i++) x[i] = 1.0; }
        "#;
        let rep = analyze_program(src, AlgorithmLevel::Classic).unwrap();
        assert_eq!(rep.functions.len(), 2);
        assert!(rep.function("a").unwrap().has_outer_parallelism());
        assert!(rep.function("b").unwrap().has_outer_parallelism());
    }
}
