//! Collapsed loops: the aggregated effect of an analyzed loop.
//!
//! After Phase-2 the loop "is collapsed and replaced by a single node …
//! containing a sequence of assignment statements, representing the effect
//! of the loop on each LVV" (paper, Section 2.5). The effects are phrased
//! over `Λ_v` (loop-entry) symbols; when an *outer* Phase-1 run reaches the
//! collapsed node it substitutes each `Λ_v` with the current value of `v`.

use crate::value::Val;
use std::collections::HashMap;
use subsub_ir::LoopId;
use subsub_symbolic::Range;

/// Aggregated effect of a loop on one scalar LVV.
#[derive(Debug, Clone, PartialEq)]
pub struct CollapsedScalar {
    /// Variable name.
    pub name: String,
    /// Value after the loop, over `Λ_name` (and loop-invariant) symbols.
    pub val: Val,
}

/// Aggregated effect of a loop on one array region.
#[derive(Debug, Clone, PartialEq)]
pub struct CollapsedArrayWrite {
    /// Array name.
    pub array: String,
    /// Aggregated subscript ranges, outermost dimension first (e.g.
    /// `idel[iel][0:5][j][0:4]` after collapsing the innermost UA loop).
    pub subs: Vec<Range>,
    /// Aggregated value stored in the region, over `Λ_*` symbols.
    pub val: Val,
}

/// The collapsed form of one analyzed loop.
#[derive(Debug, Clone, Default)]
pub struct CollapsedLoop {
    /// Scalar effects.
    pub scalars: Vec<CollapsedScalar>,
    /// Array-region effects.
    pub arrays: Vec<CollapsedArrayWrite>,
}

/// Map from loop id to its collapsed form — filled inside-out by the nest
/// driver and consulted by outer Phase-1 runs at `InnerLoop` CFG nodes.
pub type CollapsedMap = HashMap<LoopId, CollapsedLoop>;
