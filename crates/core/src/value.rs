//! The symbolic value domain and Symbolic Value Dictionary (SVD).
//!
//! Phase-1 (paper, Section 2.3) represents the value of each Loop-Variant
//! Variable (LVV) as a symbolic range expression `[lb:ub]`, possibly
//! *tagged* with the if-condition under which it was assigned (`⟨expr⟩`),
//! and stores a **set** of such values when more than one expression can
//! assign the variable (may semantics at merge points). The SVD maps each
//! LVV to its value set; array LVVs additionally carry the *subscript
//! snapshot* at which the write happened (e.g. `ind[m] = [λ_ind, ⟨j⟩]`).

use std::collections::BTreeMap;
use std::fmt;
use subsub_ir::CondId;
use subsub_symbolic::{Expr, Range, RangeEnv, Symbol, SymbolKind};

/// The conditions (with polarity) under which a value was assigned — the
/// paper's tag. Empty means unconditional.
pub type Guard = Vec<(CondId, bool)>;

/// A symbolic value: a range (a point range for single expressions) or the
/// unknown value ⊥.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A symbolic range `[lb:ub]` (point ranges represent single values).
    Range(Range),
    /// Unknown (the paper's ⊥).
    Bottom,
}

impl Val {
    /// A single symbolic expression as a point range.
    pub fn point(e: Expr) -> Val {
        Val::Range(Range::point(e))
    }

    /// The range payload, if any.
    pub fn as_range(&self) -> Option<&Range> {
        match self {
            Val::Range(r) => Some(r),
            Val::Bottom => None,
        }
    }

    /// True for ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Val::Bottom)
    }

    /// Substitutes a symbol in both range bounds; ⊥ stays ⊥.
    pub fn subst_sym(&self, sym: &Symbol, e: &Expr) -> Val {
        match self {
            Val::Range(r) => Val::Range(r.subst_sym(sym, e)),
            Val::Bottom => Val::Bottom,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Range(r) => write!(f, "{r}"),
            Val::Bottom => write!(f, "⊥"),
        }
    }
}

/// A value together with the guard it was assigned under.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedVal {
    /// Conditions under which this value holds (empty = unconditional).
    pub guard: Guard,
    /// The value.
    pub val: Val,
}

impl TaggedVal {
    /// An unconditional value.
    pub fn plain(val: Val) -> TaggedVal {
        TaggedVal {
            guard: Vec::new(),
            val,
        }
    }

    /// A guarded value.
    pub fn tagged(guard: Guard, val: Val) -> TaggedVal {
        TaggedVal { guard, val }
    }

    /// True if the value carries a non-empty tag.
    pub fn is_tagged(&self) -> bool {
        !self.guard.is_empty()
    }
}

impl fmt::Display for TaggedVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tagged() {
            write!(f, "⟨{}⟩", self.val)
        } else {
            write!(f, "{}", self.val)
        }
    }
}

/// Maximum number of alternative values tracked per LVV before the analysis
/// gives up and widens to ⊥.
const MAX_VALUES: usize = 16;

/// The set of possible values of one LVV (may semantics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValueSet {
    vals: Vec<TaggedVal>,
}

impl ValueSet {
    /// The empty set (no information yet).
    pub fn new() -> ValueSet {
        ValueSet::default()
    }

    /// A set holding one unconditional value.
    pub fn single(val: Val) -> ValueSet {
        ValueSet {
            vals: vec![TaggedVal::plain(val)],
        }
    }

    /// A set holding one unconditional point expression.
    pub fn point(e: Expr) -> ValueSet {
        ValueSet::single(Val::point(e))
    }

    /// The `λ_name` initial value of a scalar LVV.
    pub fn lambda(name: &str) -> ValueSet {
        ValueSet::point(Expr::lambda(name))
    }

    /// A set holding just ⊥.
    pub fn bottom() -> ValueSet {
        ValueSet::single(Val::Bottom)
    }

    /// The entries.
    pub fn entries(&self) -> &[TaggedVal] {
        &self.vals
    }

    /// Builds from raw entries, deduplicating and widening past the cap.
    pub fn from_entries(vals: Vec<TaggedVal>) -> ValueSet {
        let mut out: Vec<TaggedVal> = Vec::with_capacity(vals.len());
        for v in vals {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        if out.len() > MAX_VALUES {
            return ValueSet::bottom();
        }
        ValueSet { vals: out }
    }

    /// Pushes one entry (dedup + widening).
    pub fn push(&mut self, v: TaggedVal) {
        if !self.vals.contains(&v) {
            self.vals.push(v);
        }
        if self.vals.len() > MAX_VALUES {
            *self = ValueSet::bottom();
        }
    }

    /// May-union with another set (merge-point semantics).
    pub fn union(&self, other: &ValueSet) -> ValueSet {
        let mut vals = self.vals.clone();
        for v in &other.vals {
            if !vals.contains(v) {
                vals.push(v.clone());
            }
        }
        ValueSet::from_entries(vals)
    }

    /// True if any entry is ⊥.
    pub fn any_bottom(&self) -> bool {
        self.vals.iter().any(|v| v.val.is_bottom())
    }

    /// True if the set is exactly one unconditional value.
    pub fn single_untagged(&self) -> Option<&Val> {
        match self.vals.as_slice() {
            [v] if !v.is_tagged() => Some(&v.val),
            _ => None,
        }
    }

    /// The tagged entries (the paper's "tagged sub-expressions").
    pub fn tagged(&self) -> impl Iterator<Item = &TaggedVal> {
        self.vals.iter().filter(|v| v.is_tagged())
    }

    /// The untagged entries.
    pub fn untagged(&self) -> impl Iterator<Item = &TaggedVal> {
        self.vals.iter().filter(|v| !v.is_tagged())
    }

    /// True if at least one entry is tagged.
    pub fn has_tagged(&self) -> bool {
        self.vals.iter().any(TaggedVal::is_tagged)
    }

    /// Substitutes a symbol in all entries.
    pub fn subst_sym(&self, sym: &Symbol, e: &Expr) -> ValueSet {
        ValueSet::from_entries(
            self.vals
                .iter()
                .map(|v| TaggedVal {
                    guard: v.guard.clone(),
                    val: v.val.subst_sym(sym, e),
                })
                .collect(),
        )
    }

    /// The hull of all entry ranges when every comparison is provable;
    /// `None` if any entry is ⊥ or the hull is undecidable.
    pub fn hull(&self, env: &RangeEnv) -> Option<Range> {
        let ranges: Option<Vec<Range>> = self
            .vals
            .iter()
            .map(|v| v.val.as_range().cloned())
            .collect();
        subsub_symbolic::simplify::hull(&ranges?, env)
    }
}

impl fmt::Display for ValueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vals.len() == 1 {
            return write!(f, "{}", self.vals[0]);
        }
        write!(f, "[")?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// One recorded write to an array: the subscript snapshot (ranges — points
/// for ordinary subscripts, proper ranges after inner-loop aggregation) and
/// the set of values stored there.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayWrite {
    /// Subscript snapshot, outermost dimension first.
    pub subs: Vec<Range>,
    /// Values written (with `λ_array` as the "unchanged" alternative once
    /// the write merges with a path that did not write).
    pub vals: ValueSet,
}

impl fmt::Display for ArrayWrite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.subs {
            write!(f, "[{s}]")?;
        }
        write!(f, " = {}", self.vals)
    }
}

/// The Symbolic Value Dictionary: LVV → value set, plus per-array write
/// records.
#[derive(Debug, Clone, Default)]
pub struct Svd {
    /// Scalar LVV values.
    pub scalars: BTreeMap<String, ValueSet>,
    /// Array LVV writes, keyed by array name.
    pub arrays: BTreeMap<String, Vec<ArrayWrite>>,
}

impl Svd {
    /// An empty SVD.
    pub fn new() -> Svd {
        Svd::default()
    }

    /// Merge-point union of two SVDs. Scalars union per variable; an array
    /// write present on only one side gains the untagged `λ_array`
    /// alternative (the "not written on the other path" case).
    pub fn merge(&self, other: &Svd) -> Svd {
        let mut out = Svd::new();
        for (k, v) in &self.scalars {
            match other.scalars.get(k) {
                Some(o) => {
                    out.scalars.insert(k.clone(), v.union(o));
                }
                None => {
                    out.scalars.insert(k.clone(), v.clone());
                }
            }
        }
        for (k, o) in &other.scalars {
            out.scalars.entry(k.clone()).or_insert_with(|| o.clone());
        }
        for name in self.arrays.keys().chain(other.arrays.keys()) {
            if out.arrays.contains_key(name) {
                continue;
            }
            let a = self.arrays.get(name).cloned().unwrap_or_default();
            let b = other.arrays.get(name).cloned().unwrap_or_default();
            out.arrays.insert(name.clone(), merge_writes(name, a, b));
        }
        out
    }

    /// Record a write, updating an existing entry with an identical
    /// subscript snapshot or appending a new one.
    pub fn record_write(&mut self, array: &str, subs: Vec<Range>, vals: ValueSet) {
        let writes = self.arrays.entry(array.to_string()).or_default();
        if let Some(w) = writes.iter_mut().find(|w| w.subs == subs) {
            w.vals = vals;
        } else {
            writes.push(ArrayWrite { subs, vals });
        }
    }

    /// Pretty rendering in the paper's `{v = …, …}` style.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{");
        let mut first = true;
        for (name, writes) in &self.arrays {
            for w in writes {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "{name}{w}");
            }
        }
        for (name, v) in &self.scalars {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "{name} = {v}");
        }
        out.push('}');
        out
    }
}

fn merge_writes(name: &str, a: Vec<ArrayWrite>, b: Vec<ArrayWrite>) -> Vec<ArrayWrite> {
    let mut out: Vec<ArrayWrite> = Vec::new();
    let lambda = TaggedVal::plain(Val::point(Expr::sym(Symbol {
        kind: SymbolKind::Lambda,
        name: name.into(),
    })));
    for w in a.iter() {
        match b.iter().find(|o| o.subs == w.subs) {
            Some(o) => out.push(ArrayWrite {
                subs: w.subs.clone(),
                vals: w.vals.union(&o.vals),
            }),
            None => {
                let mut vals = ValueSet::new();
                vals.push(lambda.clone());
                let merged = vals.union(&w.vals);
                out.push(ArrayWrite {
                    subs: w.subs.clone(),
                    vals: merged,
                });
            }
        }
    }
    for o in b.iter() {
        if a.iter().any(|w| w.subs == o.subs) {
            continue;
        }
        let mut vals = ValueSet::new();
        vals.push(lambda.clone());
        let merged = vals.union(&o.vals);
        out.push(ArrayWrite {
            subs: o.subs.clone(),
            vals: merged,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_dedups() {
        let a = ValueSet::point(Expr::var("x"));
        let b = ValueSet::point(Expr::var("x"));
        assert_eq!(a.union(&b).entries().len(), 1);
    }

    #[test]
    fn widening_past_cap() {
        let mut s = ValueSet::new();
        for i in 0..20 {
            s.push(TaggedVal::plain(Val::point(Expr::int(i))));
        }
        assert!(s.any_bottom());
    }

    #[test]
    fn tagged_display() {
        let tv = TaggedVal::tagged(vec![(CondId(0), true)], Val::point(Expr::var("j")));
        assert_eq!(tv.to_string(), "⟨j⟩");
    }

    #[test]
    fn svd_merge_adds_lambda_for_one_sided_array_write() {
        // then-branch writes ind[λ_m] = ⟨j⟩; else branch writes nothing.
        let mut then_svd = Svd::new();
        let mut vals = ValueSet::new();
        vals.push(TaggedVal::tagged(
            vec![(CondId(0), true)],
            Val::point(Expr::var("j")),
        ));
        then_svd.record_write("ind", vec![Range::point(Expr::lambda("m"))], vals);
        let else_svd = Svd::new();
        let merged = then_svd.merge(&else_svd);
        let writes = &merged.arrays["ind"];
        assert_eq!(writes.len(), 1);
        // Value set now contains untagged λ_ind plus the tagged ⟨j⟩.
        let vs = &writes[0].vals;
        assert_eq!(vs.entries().len(), 2);
        assert!(vs
            .untagged()
            .any(|v| v.val == Val::point(Expr::lambda("ind"))));
        assert!(vs.has_tagged());
    }

    #[test]
    fn svd_merge_scalar_union() {
        let mut a = Svd::new();
        a.scalars
            .insert("m".into(), ValueSet::point(Expr::lambda("m")));
        let mut b = Svd::new();
        let mut vs = ValueSet::new();
        vs.push(TaggedVal::tagged(
            vec![(CondId(0), true)],
            Val::point(Expr::lambda("m") + Expr::int(1)),
        ));
        b.scalars.insert("m".into(), vs);
        let m = a.merge(&b);
        assert_eq!(m.scalars["m"].entries().len(), 2);
    }

    #[test]
    fn hull_of_value_set() {
        let env = RangeEnv::new();
        let mut vs = ValueSet::new();
        vs.push(TaggedVal::plain(Val::Range(Range::ints(0, 5))));
        vs.push(TaggedVal::plain(Val::Range(Range::ints(3, 9))));
        assert_eq!(vs.hull(&env), Some(Range::ints(0, 9)));
        vs.push(TaggedVal::plain(Val::Bottom));
        assert_eq!(vs.hull(&env), None);
    }
}
