//! Phase-1: symbolic execution of one arbitrary loop iteration.
//!
//! Implements Section 2.3 of the paper: a forward dataflow traversal of the
//! loop-body CFG in topological order. At the entry node every LVV is
//! initialized to its `λ` value; each assignment node updates the SVD by
//! symbolically executing the statement; control-flow diverge points tag
//! values with the relevant if-condition; merge points take the
//! conservative union of the predecessors (may semantics). The SVD at the
//! exit node is the Phase-1 result.

use crate::collapse::CollapsedMap;
use crate::value::{ArrayWrite, Guard, Svd, TaggedVal, Val, ValueSet};
use subsub_ir::{CfgPayload, LValue, LoopCfg, LoopIr, Rhs, TypeEnv};
use subsub_symbolic::{Atom, Expr, Range, RangeEnv, Symbol, SymbolKind};

/// Result of Phase-1 for one loop.
#[derive(Debug, Clone)]
pub struct Phase1Result {
    /// The SVD at the exit node (`SVD_stn` in the paper).
    pub svd: Svd,
    /// Per-node OUT states, for diagnostics (indexed by CFG node id).
    pub per_node: Vec<Svd>,
}

/// Runs Phase-1 on `l` using its CFG. `collapsed` supplies the aggregated
/// effects of already-analyzed inner loops; `types` identifies integer
/// LVVs; `env` carries range assumptions for symbolic reasoning.
pub fn phase1(
    l: &LoopIr,
    cfg: &LoopCfg,
    collapsed: &CollapsedMap,
    types: &TypeEnv,
    env: &RangeEnv,
) -> Phase1Result {
    // Initial SVD: integer scalar LVVs start at λ_v; non-integer LVVs are ⊥.
    let mut init = Svd::new();
    for v in l.assigned_vars() {
        if types.is_array(&v) {
            continue; // arrays tracked through writes
        }
        if types.is_integer(&v) {
            init.scalars.insert(v.clone(), ValueSet::lambda(&v));
        } else {
            init.scalars.insert(v.clone(), ValueSet::bottom());
        }
    }

    let n = cfg.nodes.len();
    let mut out: Vec<Option<Svd>> = vec![None; n];
    for id in cfg.topo_order() {
        let node = cfg.node(id);
        // IN = merge of predecessor OUT states (entry gets the init SVD).
        let mut input = if node.preds.is_empty() {
            init.clone()
        } else {
            let mut it = node.preds.iter();
            let first = match it.next() {
                Some(p) => out[p.0].clone().expect("topo order"),
                // Unreachable: guarded by the `preds.is_empty()` branch.
                None => init.clone(),
            };
            it.fold(first, |acc, p| {
                acc.merge(out[p.0].as_ref().expect("topo order"))
            })
        };
        match &node.payload {
            CfgPayload::Entry | CfgPayload::Branch(_) | CfgPayload::Join | CfgPayload::Exit => {}
            CfgPayload::Assign(a) => transfer_assign(a, &node.guards, &mut input, env),
            CfgPayload::InnerLoop(id) => {
                transfer_inner_loop(collapsed, *id, &node.guards, &mut input, env)
            }
            CfgPayload::Opaque(_) => {
                // Should not occur in eligible loops; degrade soundly.
                for (_, v) in input.scalars.iter_mut() {
                    *v = ValueSet::bottom();
                }
            }
        }
        out[id.0] = Some(input);
    }

    let svd = out[cfg.exit.0].clone().expect("exit visited");
    Phase1Result {
        svd,
        per_node: out.into_iter().map(Option::unwrap).collect(),
    }
}

fn transfer_assign(a: &subsub_ir::Assign, guards: &Guard, svd: &mut Svd, env: &RangeEnv) {
    let value = match &a.rhs {
        Rhs::Expr(e) if a.integer => eval_expr(e, svd, env),
        _ => ValueSet::bottom(),
    };
    let value = apply_guard(value, guards);
    match &a.lhs {
        LValue::Scalar(name) => {
            svd.scalars.insert(name.clone(), value);
        }
        LValue::Array { name, subs } => {
            let mut resolved = Vec::with_capacity(subs.len());
            for s in subs {
                match resolve_subscript(s, svd, env) {
                    Some(r) => resolved.push(r),
                    None => {
                        // Unknown write location: the whole array becomes ⊥.
                        svd.arrays.insert(
                            name.clone(),
                            vec![ArrayWrite {
                                subs: Vec::new(),
                                vals: ValueSet::bottom(),
                            }],
                        );
                        return;
                    }
                }
            }
            svd.record_write(name, resolved, value);
        }
    }
}

/// Applies the collapsed effect of an inner loop: substitute each `Λ_v`
/// with the current value of `v`, then update the SVD.
fn transfer_inner_loop(
    collapsed: &CollapsedMap,
    id: subsub_ir::LoopId,
    guards: &Guard,
    svd: &mut Svd,
    env: &RangeEnv,
) {
    let Some(c) = collapsed.get(&id) else {
        // Unanalyzed inner loop: all information is lost.
        for (_, v) in svd.scalars.iter_mut() {
            *v = ValueSet::bottom();
        }
        svd.arrays.clear();
        return;
    };
    // Resolve all scalar effects against the *pre-loop* state first.
    let resolved: Vec<(String, ValueSet)> = c
        .scalars
        .iter()
        .map(|cs| {
            let vs = match &cs.val {
                Val::Bottom => ValueSet::bottom(),
                Val::Range(r) => subst_entry_syms_range(r, svd, env)
                    .map(|r| ValueSet::single(Val::Range(r)))
                    .unwrap_or_else(ValueSet::bottom),
            };
            (cs.name.clone(), apply_guard(vs, guards))
        })
        .collect();
    let array_effects: Vec<(String, Option<Vec<Range>>, ValueSet)> = c
        .arrays
        .iter()
        .map(|cw| {
            let subs: Option<Vec<Range>> = cw
                .subs
                .iter()
                .map(|r| subst_entry_syms_range(r, svd, env))
                .collect();
            let val = match &cw.val {
                Val::Bottom => ValueSet::bottom(),
                Val::Range(r) => subst_entry_syms_range(r, svd, env)
                    .map(|r| ValueSet::single(Val::Range(r)))
                    .unwrap_or_else(ValueSet::bottom),
            };
            (cw.array.clone(), subs, apply_guard(val, guards))
        })
        .collect();
    for (name, vs) in resolved {
        svd.scalars.insert(name, vs);
    }
    for (name, subs, val) in array_effects {
        match subs {
            Some(subs) => svd.record_write(&name, subs, val),
            None => {
                svd.arrays.insert(
                    name,
                    vec![ArrayWrite {
                        subs: Vec::new(),
                        vals: ValueSet::bottom(),
                    }],
                );
            }
        }
    }
}

fn apply_guard(vs: ValueSet, guards: &Guard) -> ValueSet {
    if guards.is_empty() {
        return vs;
    }
    ValueSet::from_entries(
        vs.entries()
            .iter()
            .map(|tv| {
                let mut g = guards.clone();
                for e in &tv.guard {
                    if !g.contains(e) {
                        g.push(*e);
                    }
                }
                TaggedVal {
                    guard: g,
                    val: tv.val.clone(),
                }
            })
            .collect(),
    )
}

/// Substitutes collapsed-loop symbols with current values: `Λ_x` becomes
/// the current value of `x` (or plain `x` when `x` has no SVD entry, i.e.
/// is loop-invariant here), and plain symbols that are LVVs *of this outer
/// loop* — invariants from the inner loop's perspective — are also rebound
/// to their current values. Returns `None` when a substitution is not
/// single-valued.
fn subst_entry_syms_range(r: &Range, svd: &Svd, env: &RangeEnv) -> Option<Range> {
    let mut cur = r.clone();
    for _ in 0..32 {
        let sym = cur
            .lo
            .free_syms()
            .into_iter()
            .chain(cur.hi.free_syms())
            .find(|s| match s.kind {
                SymbolKind::Entry => true,
                SymbolKind::Var => svd.scalars.contains_key(s.name.as_ref()),
                _ => false,
            });
        let Some(sym) = sym else { return Some(cur) };
        let var_name = sym.name.to_string();
        match svd.scalars.get(&var_name) {
            None => {
                // Loop-invariant here: Λ_x ≡ x.
                debug_assert_eq!(sym.kind, SymbolKind::Entry);
                let plain = Expr::var(&var_name);
                cur = cur.subst_sym(&sym, &plain);
            }
            Some(vs) => match vs.single_untagged() {
                Some(Val::Range(rv)) if rv.is_point() => {
                    cur = cur.subst_sym(&sym, &rv.lo);
                }
                Some(Val::Range(rv)) => {
                    cur = cur.subst_sym_range(&sym, rv, env)?;
                }
                _ => return None,
            },
        }
    }
    None
}

/// Resolves one subscript expression to a snapshot range: the subscript's
/// current value must be a single entry (tags are irrelevant for the
/// snapshot — the write's own guard carries the condition).
fn resolve_subscript(s: &Expr, svd: &Svd, env: &RangeEnv) -> Option<Range> {
    let vs = eval_expr(s, svd, env);
    match vs.entries() {
        [tv] => tv.val.as_range().cloned(),
        _ => None,
    }
}

/// Symbolically evaluates an expression under the current SVD, producing
/// the set of possible values (with merged tags).
pub fn eval_expr(e: &Expr, svd: &Svd, env: &RangeEnv) -> ValueSet {
    if reads_modified_array(e, svd) {
        return ValueSet::bottom();
    }
    let mut cur: Vec<TaggedVal> = vec![TaggedVal::plain(Val::Range(Range::point(e.clone())))];
    for _ in 0..64 {
        let Some((idx, sym)) = find_substitutable(&cur, svd) else {
            return ValueSet::from_entries(cur);
        };
        let entry = cur.remove(idx);
        let Val::Range(r) = &entry.val else {
            unreachable!("only ranges have syms")
        };
        let state = svd
            .scalars
            .get(sym.name.as_ref())
            .expect("checked by finder");
        for sv in state.entries() {
            let guard = merge_guards(&entry.guard, &sv.guard);
            let val = match &sv.val {
                Val::Bottom => Val::Bottom,
                Val::Range(rv) => {
                    if rv.is_point() {
                        Val::Range(r.subst_sym(&sym, &rv.lo))
                    } else {
                        match r.subst_sym_range(&sym, rv, env) {
                            Some(nr) => Val::Range(nr),
                            None => Val::Bottom,
                        }
                    }
                }
            };
            cur.push(TaggedVal { guard, val });
            if cur.len() > 32 {
                return ValueSet::bottom();
            }
        }
    }
    ValueSet::bottom()
}

fn merge_guards(a: &Guard, b: &Guard) -> Guard {
    let mut g = a.clone();
    for e in b {
        if !g.contains(e) {
            g.push(*e);
        }
    }
    g
}

fn find_substitutable(cur: &[TaggedVal], svd: &Svd) -> Option<(usize, Symbol)> {
    for (i, tv) in cur.iter().enumerate() {
        let Val::Range(r) = &tv.val else { continue };
        for sym in r.lo.free_syms().into_iter().chain(r.hi.free_syms()) {
            if sym.kind == SymbolKind::Var && svd.scalars.contains_key(sym.name.as_ref()) {
                return Some((i, sym));
            }
        }
    }
    None
}

/// True if the expression reads an array that the loop has already written
/// this iteration (its element values are no longer the pre-iteration
/// ones, so the read must be treated as unknown).
fn reads_modified_array(e: &Expr, svd: &Svd) -> bool {
    fn walk(e: &Expr, svd: &Svd) -> bool {
        for t in e.terms() {
            for a in &t.atoms {
                if let Atom::Read { array, indices } = a {
                    if svd.arrays.contains_key(array.as_ref()) {
                        return true;
                    }
                    if indices.iter().any(|ix| walk(ix, svd)) {
                        return true;
                    }
                }
            }
        }
        false
    }
    walk(e, svd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use subsub_cfront::parse_program;
    use subsub_ir::{lower_function, LoopCfg};

    fn run_phase1(src: &str) -> (Phase1Result, subsub_ir::LoweredFunction) {
        let p = parse_program(src).unwrap();
        let f = lower_function(&p.funcs[0], &p.globals).unwrap();
        let loops = f.loops();
        let l = loops[0];
        let cfg = LoopCfg::build(l);
        let env = RangeEnv::new();
        let r = phase1(l, &cfg, &HashMap::new(), &f.types, &env);
        (r, f)
    }

    /// The paper's running example (Figures 4 and 5): after Phase-1,
    /// `SVD_stn = { ind[λ_m] = [λ_ind, ⟨j⟩], m = [λ_m, ⟨1+λ_m⟩] }`.
    #[test]
    fn figure5_final_svd() {
        let (r, _) = run_phase1(
            r#"
            void f(int npts, double *xdos, int *ind, double t, double width) {
                int m; int j;
                m = 0;
                for (j = 0; j < npts; j++) {
                    if ((xdos[j] - t) < width)
                        ind[m++] = j;
                }
            }
            "#,
        );
        let m = &r.svd.scalars["m"];
        assert_eq!(m.entries().len(), 2);
        let untagged: Vec<&TaggedVal> = m.untagged().collect();
        assert_eq!(untagged.len(), 1);
        assert_eq!(untagged[0].val, Val::point(Expr::lambda("m")));
        let tagged: Vec<&TaggedVal> = m.tagged().collect();
        assert_eq!(tagged.len(), 1);
        assert_eq!(tagged[0].val, Val::point(Expr::lambda("m") + Expr::int(1)));

        let writes = &r.svd.arrays["ind"];
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].subs, vec![Range::point(Expr::lambda("m"))]);
        let vals = &writes[0].vals;
        assert!(vals
            .untagged()
            .any(|v| v.val == Val::point(Expr::lambda("ind"))));
        assert!(vals.tagged().any(|v| v.val == Val::point(Expr::var("j"))));
    }

    /// AMGmk fill loop (paper Figure 9): Phase-1 yields
    /// `A_rownnz[λ_irownnz]=[λ_A_rownnz,⟨i⟩], irownnz=[λ,⟨1+λ⟩],
    ///  adiag=A_i[i+1]-A_i[i]`.
    #[test]
    fn amgmk_phase1() {
        let (r, _) = run_phase1(
            r#"
            void f(int num_rows, int *A_i, int *A_rownnz) {
                int i; int adiag; int irownnz;
                irownnz = 0;
                for (i = 0; i < num_rows; i++) {
                    adiag = A_i[i+1] - A_i[i];
                    if (adiag > 0)
                        A_rownnz[irownnz++] = i;
                }
            }
            "#,
        );
        let adiag = &r.svd.scalars["adiag"];
        let expected = Expr::read("A_i", vec![Expr::int(1) + Expr::var("i")])
            - Expr::read("A_i", vec![Expr::var("i")]);
        assert_eq!(adiag.single_untagged(), Some(&Val::point(expected)));
        let w = &r.svd.arrays["A_rownnz"][0];
        assert_eq!(w.subs, vec![Range::point(Expr::lambda("irownnz"))]);
        assert!(w.vals.tagged().any(|v| v.val == Val::point(Expr::var("i"))));
    }

    /// Unconditional SSR: p = p + 1 each iteration.
    #[test]
    fn unconditional_recurrence() {
        let (r, _) = run_phase1(
            "void f(int n, int *a) { int i; int p; p = 0; for (i=0;i<n;i++) { a[i] = p; p = p + 1; } }",
        );
        let p = &r.svd.scalars["p"];
        assert_eq!(
            p.single_untagged(),
            Some(&Val::point(Expr::lambda("p") + Expr::int(1)))
        );
        // a written at subscript i with value λ_p (p before increment).
        let w = &r.svd.arrays["a"][0];
        assert_eq!(w.subs, vec![Range::point(Expr::var("i"))]);
        assert!(w
            .vals
            .untagged()
            .any(|v| v.val == Val::point(Expr::lambda("p"))));
    }

    /// Reading an array already written this iteration yields ⊥.
    #[test]
    fn read_after_write_is_bottom() {
        let (r, _) = run_phase1(
            "void f(int n, int *a, int *b) { int i; int x; x = 0; for (i=0;i<n;i++) { a[i] = i; x = a[i]; } }",
        );
        assert!(r.svd.scalars["x"].any_bottom());
    }

    /// Values read from an unmodified array stay as uninterpreted reads.
    #[test]
    fn invariant_array_read_kept() {
        let (r, _) = run_phase1(
            "void f(int n, int *col_val) { int i; int rr; rr = 0; for (i=0;i<n;i++) { rr = col_val[i]; } }",
        );
        assert_eq!(
            r.svd.scalars["rr"].single_untagged(),
            Some(&Val::point(Expr::read("col_val", vec![Expr::var("i")])))
        );
    }

    /// Multi-dimensional writes record one entry per distinct subscript
    /// snapshot (six for the UA idel loop).
    #[test]
    fn ua_innermost_writes() {
        let (r, _) = run_phase1(
            r#"
            void f(int ntemp, int idel[10][6][5][5], int iel, int j) {
                int i;
                for (i = 0; i < 5; i++) {
                    idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                    idel[iel][1][j][i] = ntemp + i*5 + j*25;
                    idel[iel][2][j][i] = ntemp + i + j*25 + 20;
                    idel[iel][3][j][i] = ntemp + i + j*25;
                    idel[iel][4][j][i] = ntemp + i + j*5 + 100;
                    idel[iel][5][j][i] = ntemp + i + j*5;
                }
            }
            "#,
        );
        let writes = &r.svd.arrays["idel"];
        assert_eq!(writes.len(), 6);
        // First write value: ntemp + 5i + 25j + 4 (all invariant but i).
        let expected = Expr::var("ntemp")
            + Expr::int(5) * Expr::var("i")
            + Expr::int(25) * Expr::var("j")
            + Expr::int(4);
        assert!(writes[0]
            .vals
            .untagged()
            .any(|v| v.val == Val::point(expected.clone())));
    }

    /// Float accumulators are LVVs with ⊥ values.
    #[test]
    fn float_lvv_is_bottom() {
        let (r, _) = run_phase1(
            "void f(int n, double *x) { int i; double s; s = 0.0; for (i=0;i<n;i++) { s = s + x[i]; } }",
        );
        assert!(r.svd.scalars["s"].any_bottom());
    }
}
