//! Subscript-array properties and the property database.
//!
//! Section 2.1 of the paper: loops with subscripted subscripts can often be
//! parallelized if the subscript array is known to be *monotonic* — in some
//! cases non-strict monotonicity suffices, in others the array must be
//! *strictly* monotonic (hence injective). Multi-dimensional arrays use
//! *range monotonicity* (Definition 1): the value range of slice `i` lies
//! entirely at-or-below the value range of slice `i+1` along one dimension.

use std::collections::HashMap;
use std::fmt;
use subsub_ir::LoopId;
use subsub_rtcheck::CheckExpr;
use subsub_symbolic::Range;

/// Which analysis capabilities are enabled — the three configurations the
/// paper's Figure 17 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmLevel {
    /// Classical Cetus automatic parallelization only: no subscript-array
    /// property analysis at all.
    Classic,
    /// The method of Bhosale & Eigenmann ICS'21 ("BaseAlgo"): SSR + SRA —
    /// continuous monotonicity of one-dimensional arrays.
    Base,
    /// The paper's new algorithm ("NewAlgo"): Base plus intermittent
    /// monotonicity (LEMMA 1) and multi-dimensional range monotonicity
    /// (LEMMA 2).
    New,
}

impl AlgorithmLevel {
    /// True if subscript-array analysis runs at all.
    pub fn analyzes_arrays(self) -> bool {
        !matches!(self, AlgorithmLevel::Classic)
    }

    /// True if the novel concepts (LEMMA 1 / LEMMA 2) are enabled.
    pub fn novel_concepts(self) -> bool {
        matches!(self, AlgorithmLevel::New)
    }
}

impl fmt::Display for AlgorithmLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmLevel::Classic => write!(f, "Cetus"),
            AlgorithmLevel::Base => write!(f, "Cetus+BaseAlgo"),
            AlgorithmLevel::New => write!(f, "Cetus+NewAlgo"),
        }
    }
}

/// Degree of monotonicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Monotonicity {
    /// `a[i] <= a[i+1]` (the paper's MA).
    Monotonic,
    /// `a[i] < a[i+1]` (the paper's SMA) — implies injectivity.
    StrictlyMonotonic,
    /// `a[i] + gap <= a[i+1]` with a constant `gap >= 2` — a non-unit-stride
    /// recurrence (precursor paper, arXiv 1911.05839). Strictly monotone,
    /// hence injective, and additionally every pair of written indices is
    /// at least `gap` apart, which licenses strided partitioning.
    StridedMonotonic {
        /// Guaranteed minimum difference between consecutive elements.
        gap: i64,
    },
}

impl Monotonicity {
    /// True for SMA (any variant that implies `a[i] < a[i+1]`).
    pub fn is_strict(self) -> bool {
        match self {
            Monotonicity::Monotonic => false,
            Monotonicity::StrictlyMonotonic => true,
            Monotonicity::StridedMonotonic { gap } => gap >= 1,
        }
    }

    /// The guaranteed minimum gap between consecutive elements (0 for MA,
    /// 1 for SMA, `gap` for strided).
    pub fn min_gap(self) -> i64 {
        match self {
            Monotonicity::Monotonic => 0,
            Monotonicity::StrictlyMonotonic => 1,
            Monotonicity::StridedMonotonic { gap } => gap,
        }
    }

    /// The paper's `#MA` / `#SMA` suffix (strided prints as the base SMA
    /// tag here; [`ArrayProperty`]'s `Display` appends the `+gap` bound).
    pub fn suffix(self) -> &'static str {
        match self {
            Monotonicity::Monotonic => "#MA",
            Monotonicity::StrictlyMonotonic | Monotonicity::StridedMonotonic { .. } => "#SMA",
        }
    }
}

impl fmt::Display for Monotonicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Monotonicity::StridedMonotonic { gap } => write!(f, "#SMA+{gap}"),
            other => write!(f, "{}", other.suffix()),
        }
    }
}

/// How the property was established.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyKind {
    /// Scalar Recurrence Array Assignment (continuous; base algorithm).
    Sra,
    /// Intermittent monotonic sequence (LEMMA 1). Carries the counter
    /// scalar whose post-loop value bounds the written index range.
    Intermittent {
        /// The element counter (`ic` in LEMMA 1, `irownnz` in AMGmk).
        counter: String,
    },
    /// Multi-dimensional range monotonicity (LEMMA 2).
    MultiDim,
    /// Conditionally-monotone recurrence (*Inductive Loop Analysis*,
    /// arXiv 2511.06052): the recurrence step is a loop-invariant symbol of
    /// statically unknown sign, so the property only holds under the given
    /// runtime guard (e.g. `1 <= gstep`). Use sites must conjoin the guard
    /// into their runtime-check set.
    Guarded {
        /// The predicate under which the monotonicity claim is valid.
        guard: Box<CheckExpr>,
    },
}

/// A proven property of one subscript array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayProperty {
    /// Array name.
    pub array: String,
    /// MA or SMA.
    pub monotonicity: Monotonicity,
    /// Dimension position w.r.t. which monotonicity holds (0 for 1-D
    /// arrays; the paper's `DIM` for multi-dimensional ones).
    pub dim: usize,
    /// How the property was proven.
    pub kind: PropertyKind,
    /// Subscript range over which the property holds (e.g.
    /// `[0 : irownnz_max]`). Bounds may contain `*_max` post-loop symbols,
    /// in which case a runtime check is required at the use site.
    pub index_range: Range,
    /// Aggregated value range of the monotone elements, when known
    /// (e.g. `[0 : num_rows-1]`).
    pub value_range: Option<Range>,
    /// The loop that established the property.
    pub defined_in: LoopId,
}

impl ArrayProperty {
    /// Strict monotonicity implies injectivity on the covered range.
    pub fn is_injective(&self) -> bool {
        self.monotonicity.is_strict()
    }
}

impl fmt::Display for ArrayProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}:{}]{}",
            self.array, self.index_range.lo, self.index_range.hi, self.monotonicity
        )?;
        if self.dim > 0 {
            write!(f, "(dim {})", self.dim)?;
        }
        if let Some(v) = &self.value_range {
            write!(f, " = {v}")?;
        }
        if let PropertyKind::Guarded { guard } = &self.kind {
            write!(f, " if {guard}")?;
        }
        Ok(())
    }
}

/// Database of proven array properties, keyed by array name. Later
/// definitions overwrite earlier ones (program order).
#[derive(Debug, Clone, Default)]
pub struct PropertyDb {
    props: HashMap<String, ArrayProperty>,
}

impl PropertyDb {
    /// An empty database.
    pub fn new() -> PropertyDb {
        PropertyDb::default()
    }

    /// Records (or replaces) the property of an array.
    pub fn insert(&mut self, p: ArrayProperty) {
        self.props.insert(p.array.clone(), p);
    }

    /// Looks up the property of an array.
    pub fn get(&self, array: &str) -> Option<&ArrayProperty> {
        self.props.get(array)
    }

    /// Invalidates a property (the array was overwritten by an
    /// unanalyzable construct).
    pub fn invalidate(&mut self, array: &str) {
        self.props.remove(array);
    }

    /// Number of known properties.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// True if no properties are known.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Iterates over all properties.
    pub fn iter(&self) -> impl Iterator<Item = &ArrayProperty> {
        self.props.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_symbolic::Expr;

    #[test]
    fn strict_implies_injective() {
        let p = ArrayProperty {
            array: "A_rownnz".into(),
            monotonicity: Monotonicity::StrictlyMonotonic,
            dim: 0,
            kind: PropertyKind::Intermittent {
                counter: "irownnz".into(),
            },
            index_range: Range::new(Expr::int(0), Expr::post_max("irownnz")),
            value_range: Some(Range::new(
                Expr::int(0),
                Expr::var("num_rows") - Expr::int(1),
            )),
            defined_in: LoopId(0),
        };
        assert!(p.is_injective());
        assert_eq!(p.monotonicity.suffix(), "#SMA");
        assert_eq!(
            p.to_string(),
            "A_rownnz[0:irownnz_max]#SMA = [0:num_rows - 1]"
        );
    }

    #[test]
    fn strided_is_strict_with_gap_bound() {
        let p = ArrayProperty {
            array: "off".into(),
            monotonicity: Monotonicity::StridedMonotonic { gap: 2 },
            dim: 0,
            kind: PropertyKind::Sra,
            index_range: Range::new(Expr::int(0), Expr::var("n") - Expr::int(1)),
            value_range: None,
            defined_in: LoopId(0),
        };
        assert!(p.is_injective());
        assert_eq!(p.monotonicity.min_gap(), 2);
        assert_eq!(p.monotonicity.suffix(), "#SMA");
        assert_eq!(p.to_string(), "off[0:n - 1]#SMA+2");
    }

    #[test]
    fn guarded_property_displays_its_guard() {
        let p = ArrayProperty {
            array: "off".into(),
            monotonicity: Monotonicity::StrictlyMonotonic,
            dim: 0,
            kind: PropertyKind::Guarded {
                guard: Box::new(CheckExpr::le(Expr::int(1), Expr::var("gstep"))),
            },
            index_range: Range::new(Expr::int(0), Expr::var("n")),
            value_range: None,
            defined_in: LoopId(0),
        };
        assert!(p.is_injective());
        assert_eq!(p.to_string(), "off[0:n]#SMA if 1 <= gstep");
    }

    #[test]
    fn db_overwrite_and_invalidate() {
        let mut db = PropertyDb::new();
        let mk = |strict| ArrayProperty {
            array: "a".into(),
            monotonicity: if strict {
                Monotonicity::StrictlyMonotonic
            } else {
                Monotonicity::Monotonic
            },
            dim: 0,
            kind: PropertyKind::Sra,
            index_range: Range::ints(0, 9),
            value_range: None,
            defined_in: LoopId(0),
        };
        db.insert(mk(false));
        db.insert(mk(true));
        assert!(db.get("a").unwrap().is_injective());
        db.invalidate("a");
        assert!(db.get("a").is_none());
        assert!(db.is_empty());
    }

    #[test]
    fn algorithm_level_gates() {
        assert!(!AlgorithmLevel::Classic.analyzes_arrays());
        assert!(AlgorithmLevel::Base.analyzes_arrays());
        assert!(!AlgorithmLevel::Base.novel_concepts());
        assert!(AlgorithmLevel::New.novel_concepts());
        assert_eq!(AlgorithmLevel::New.to_string(), "Cetus+NewAlgo");
    }
}
