//! Function-level analysis: inside-out nest traversal, loop collapsing and
//! final property determination.
//!
//! The paper's algorithm "proceeds in program order, analyzing the loops in
//! each nest from inside out" (Section 2.2), and determines "the final
//! SVD_stn if LG is outermost" (Algorithm 1, line 21) by substituting the
//! values variables hold *before* the loop (e.g. `Λ_irownnz = 0` in the
//! AMGmk example). This module owns that program-order walk: it keeps a
//! symbolic top-level state, analyzes each eligible nest with
//! [`crate::phase1`]/[`crate::phase2`], substitutes loop-entry values into
//! the proven properties, and accumulates the [`PropertyDb`].

use crate::collapse::CollapsedMap;
use crate::phase1::phase1;
use crate::phase2::{phase2, Phase2Result, SsrInfo};
use crate::properties::{AlgorithmLevel, ArrayProperty, Monotonicity, PropertyDb};
use crate::value::{Svd, Val};
use std::collections::HashMap;
use subsub_ir::{check_loop_eligibility, IrStmt, LValue, LoopCfg, LoopId, LoweredFunction, Rhs};
use subsub_symbolic::{Expr, Range, RangeEnv, SymbolKind};

/// Per-loop analysis outcome.
#[derive(Debug, Clone)]
pub struct LoopAnalysis {
    /// Whether the loop was eligible for Phase-1/Phase-2.
    pub eligible: bool,
    /// The ineligibility reason, if any.
    pub ineligibility: Option<String>,
    /// Phase-1 SVD at the exit node (empty for ineligible loops).
    pub svd: Svd,
    /// SSR variables found by Phase-2.
    pub ssr_vars: Vec<SsrInfo>,
    /// Properties proven for this loop (over `Λ_*` symbols, i.e. before
    /// loop-entry substitution).
    pub loop_properties: Vec<ArrayProperty>,
}

/// Whole-function analysis result.
#[derive(Debug, Clone)]
pub struct FunctionAnalysis {
    /// Function name.
    pub name: String,
    /// Final array properties, with loop-entry values substituted.
    pub properties: PropertyDb,
    /// Per-loop analysis outcomes.
    pub loops: HashMap<LoopId, LoopAnalysis>,
    /// Collapsed forms of analyzed loops.
    pub collapsed: CollapsedMap,
}

impl FunctionAnalysis {
    /// Looks up the outcome of one loop.
    pub fn loop_analysis(&self, id: LoopId) -> Option<&LoopAnalysis> {
        self.loops.get(&id)
    }
}

/// Symbolic top-level state while walking the function in program order.
#[derive(Debug, Clone, Default)]
struct TopState {
    /// Current scalar values (over function inputs).
    scalars: HashMap<String, Val>,
    /// Direct constant array writes (`col_ptr[0] = 0`): array → (idx, val).
    const_writes: HashMap<String, Vec<(i64, i64)>>,
}

/// Analyzes one lowered function at the given algorithm level.
pub fn analyze_function(
    f: &LoweredFunction,
    level: AlgorithmLevel,
    env: &RangeEnv,
) -> FunctionAnalysis {
    let mut out = FunctionAnalysis {
        name: f.name.clone(),
        properties: PropertyDb::new(),
        loops: HashMap::new(),
        collapsed: CollapsedMap::new(),
    };
    let mut state = TopState::default();
    walk_stmts(&f.body, f, level, env, &mut state, &mut out, true);
    out
}

fn walk_stmts(
    body: &[IrStmt],
    f: &LoweredFunction,
    level: AlgorithmLevel,
    env: &RangeEnv,
    state: &mut TopState,
    out: &mut FunctionAnalysis,
    top_level: bool,
) {
    for s in body {
        match s {
            IrStmt::Assign(a) => apply_top_assign(a, state, out),
            IrStmt::If { then_s, else_s, .. } => {
                // Conservative: variables assigned under a top-level branch
                // become unknown; loops under top-level branches are
                // analyzed but their properties are not published.
                let mut dummy = state.clone();
                walk_stmts(then_s, f, level, env, &mut dummy, out, false);
                walk_stmts(else_s, f, level, env, &mut dummy, out, false);
                clobber_assigned(then_s, state, out);
                clobber_assigned(else_s, state, out);
            }
            IrStmt::Loop(l) => {
                if level.analyzes_arrays() {
                    analyze_nest(l, f, level, env, out);
                }
                // Loop-entry substitution & property publication only for
                // loops in straight-line (top-level) position.
                if top_level {
                    publish_loop_results(l.id, state, out, env);
                }
                apply_collapsed_to_state(l.id, state, out, env);
            }
            IrStmt::Opaque(t) => {
                if t != "return" {
                    // Unknown effect: drop everything.
                    state.scalars.clear();
                    state.const_writes.clear();
                    let names: Vec<String> =
                        out.properties.iter().map(|p| p.array.clone()).collect();
                    for n in names {
                        out.properties.invalidate(&n);
                    }
                }
            }
        }
    }
}

/// Analyzes a nest inside-out, filling `out.loops` and `out.collapsed`.
fn analyze_nest(
    l: &subsub_ir::LoopIr,
    f: &LoweredFunction,
    level: AlgorithmLevel,
    env: &RangeEnv,
    out: &mut FunctionAnalysis,
) {
    for inner in l.inner_loops() {
        analyze_nest(inner, f, level, env, out);
    }
    if let Err(e) = check_loop_eligibility(l) {
        out.loops.insert(
            l.id,
            LoopAnalysis {
                eligible: false,
                ineligibility: Some(e.to_string()),
                svd: Svd::new(),
                ssr_vars: Vec::new(),
                loop_properties: Vec::new(),
            },
        );
        return;
    }
    let cfg = LoopCfg::build(l);
    let p1 = phase1(l, &cfg, &out.collapsed, &f.types, env);
    let p2: Phase2Result = phase2(l, &p1.svd, &f.conds, level, env);
    out.collapsed.insert(l.id, p2.collapsed);
    out.loops.insert(
        l.id,
        LoopAnalysis {
            eligible: true,
            ineligibility: None,
            svd: p1.svd,
            ssr_vars: p2.ssr_vars,
            loop_properties: p2.properties,
        },
    );
}

/// Substitutes loop-entry values (`Λ_x` → value of `x` before the loop)
/// into the loop's proven properties and publishes them in the DB.
fn publish_loop_results(id: LoopId, state: &TopState, out: &mut FunctionAnalysis, env: &RangeEnv) {
    let Some(la) = out.loops.get(&id) else { return };
    let props = la.loop_properties.clone();
    for p in props {
        let Some(index_range) = subst_entry_range(&p.index_range, state, env) else {
            continue;
        };
        let value_range = p
            .value_range
            .as_ref()
            .and_then(|r| subst_entry_range(r, state, env));
        let mut published = ArrayProperty {
            index_range,
            value_range,
            ..p
        };

        // The SDDMM idiom: the counted region starts at 1 because slot 0
        // was assigned directly before the loop (`col_ptr[0] = 0`). Extend
        // the monotone range to include the directly-written prefix; the
        // extension is published as non-strict unless the prefix value is
        // provably below the appended values.
        if let Some(lo) = published.index_range.lo.as_int() {
            if lo == 1 {
                if let Some(ws) = state.const_writes.get(&published.array) {
                    if let Some((_, v0)) = ws.iter().find(|(i, _)| *i == 0) {
                        let below = published
                            .value_range
                            .as_ref()
                            .map(|vr| env.proves_lt(&Expr::int(*v0), &vr.lo))
                            .unwrap_or(false);
                        let at_or_below = below
                            || published
                                .value_range
                                .as_ref()
                                .map(|vr| env.proves_le(&Expr::int(*v0), &vr.lo))
                                .unwrap_or(false);
                        if at_or_below {
                            published.index_range.lo = Expr::int(0);
                            if !below {
                                published.monotonicity = Monotonicity::Monotonic;
                            }
                        }
                    }
                }
            }
        }
        out.properties.insert(published);
    }
    // Arrays written by the loop without a surviving property lose any
    // previously known property.
    let collapsed = out.collapsed.get(&id).cloned().unwrap_or_default();
    for w in &collapsed.arrays {
        let has_prop = out
            .loops
            .get(&id)
            .map(|la| la.loop_properties.iter().any(|p| p.array == w.array))
            .unwrap_or(false);
        if !has_prop {
            out.properties.invalidate(&w.array);
        }
    }
}

/// Applies the collapsed scalar effects of a loop to the top-level state.
fn apply_collapsed_to_state(
    id: LoopId,
    state: &mut TopState,
    out: &FunctionAnalysis,
    env: &RangeEnv,
) {
    let Some(c) = out.collapsed.get(&id) else {
        // Unanalyzed loop: unknown effects on everything it assigns.
        state.scalars.clear();
        state.const_writes.clear();
        return;
    };
    let updates: Vec<(String, Val)> = c
        .scalars
        .iter()
        .map(|cs| {
            let v = match &cs.val {
                Val::Bottom => Val::Bottom,
                Val::Range(r) => subst_entry_range(r, state, env)
                    .map(Val::Range)
                    .unwrap_or(Val::Bottom),
            };
            (cs.name.clone(), v)
        })
        .collect();
    for (name, v) in updates {
        state.scalars.insert(name, v);
    }
    for w in &c.arrays {
        state.const_writes.remove(&w.array);
    }
}

/// Substitutes `Λ_x` with the top-level value of `x`; `x_max` symbols stay
/// (they are runtime values). Plain symbols with known constant state are
/// also substituted. Returns `None` when a needed value is ⊥.
fn subst_entry_range(r: &Range, state: &TopState, env: &RangeEnv) -> Option<Range> {
    let mut cur = r.clone();
    for _ in 0..32 {
        let sym = cur
            .lo
            .free_syms()
            .into_iter()
            .chain(cur.hi.free_syms())
            .find(|s| match s.kind {
                SymbolKind::Entry => true,
                SymbolKind::Var => matches!(
                    state.scalars.get(s.name.as_ref()),
                    Some(Val::Range(r)) if r.is_point() && r.lo != Expr::sym(s.clone())
                ),
                _ => false,
            });
        let Some(sym) = sym else { return Some(cur) };
        match state.scalars.get(sym.name.as_ref()) {
            None => {
                // Λ of a variable never assigned at top level: it is the
                // incoming (parameter) value — the plain symbol.
                cur = cur.subst_sym(&sym, &Expr::var(&sym.name));
            }
            Some(Val::Range(rv)) if rv.is_point() => {
                cur = cur.subst_sym(&sym, &rv.lo);
            }
            Some(Val::Range(rv)) => {
                cur = cur.subst_sym_range(&sym, rv, env)?;
            }
            Some(Val::Bottom) => return None,
        }
    }
    None
}

fn apply_top_assign(a: &subsub_ir::Assign, state: &mut TopState, out: &mut FunctionAnalysis) {
    match &a.lhs {
        LValue::Scalar(name) => {
            let v = match &a.rhs {
                Rhs::Expr(e) if a.integer => {
                    // Resolve against known point values.
                    let mut cur = e.clone();
                    for _ in 0..16 {
                        let sub = cur.free_syms().into_iter().find(|s| {
                            s.kind == SymbolKind::Var
                                && matches!(
                                    state.scalars.get(s.name.as_ref()),
                                    Some(Val::Range(r)) if r.is_point()
                                        && r.lo != Expr::sym(s.clone())
                                )
                        });
                        let Some(s) = sub else { break };
                        let Some(Val::Range(r)) = state.scalars.get(s.name.as_ref()) else {
                            break;
                        };
                        let point = r.lo.clone();
                        cur = cur.subst_sym(&s, &point);
                    }
                    if cur.contains_read() {
                        Val::Bottom
                    } else {
                        Val::point(cur)
                    }
                }
                _ => Val::Bottom,
            };
            state.scalars.insert(name.clone(), v);
        }
        LValue::Array { name, subs } => {
            // Track constant writes; any other direct write invalidates a
            // previously proven property of the array.
            let idx = subs.iter().map(Expr::as_int).collect::<Option<Vec<i64>>>();
            let val = a.rhs.as_expr().and_then(Expr::as_int);
            match (idx.as_deref(), val) {
                (Some([i]), Some(v)) => {
                    state
                        .const_writes
                        .entry(name.clone())
                        .or_default()
                        .push((*i, v));
                }
                _ => {
                    out.properties.invalidate(name);
                }
            }
        }
    }
}

fn clobber_assigned(body: &[IrStmt], state: &mut TopState, out: &mut FunctionAnalysis) {
    for s in body {
        match s {
            IrStmt::Assign(a) => match &a.lhs {
                LValue::Scalar(n) => {
                    state.scalars.insert(n.clone(), Val::Bottom);
                }
                LValue::Array { name, .. } => {
                    state.const_writes.remove(name);
                    out.properties.invalidate(name);
                }
            },
            IrStmt::If { then_s, else_s, .. } => {
                clobber_assigned(then_s, state, out);
                clobber_assigned(else_s, state, out);
            }
            IrStmt::Loop(l) => clobber_assigned(&l.body, state, out),
            IrStmt::Opaque(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::PropertyKind;
    use subsub_cfront::parse_program;
    use subsub_ir::lower_function;

    fn analyze(src: &str, level: AlgorithmLevel) -> FunctionAnalysis {
        let p = parse_program(src).unwrap();
        let f = lower_function(&p.funcs[0], &p.globals).unwrap();
        analyze_function(&f, level, &RangeEnv::new())
    }

    /// Paper Section 3.1 end-to-end: with Λ_irownnz = 0 substituted,
    /// A_rownnz[0 : irownnz_max] = [0 : num_rows-1] #SMA.
    #[test]
    fn amgmk_final_property() {
        let fa = analyze(
            r#"
            void f(int num_rows, int *A_i, int *A_rownnz) {
                int i; int adiag; int irownnz;
                irownnz = 0;
                for (i = 0; i < num_rows; i++) {
                    adiag = A_i[i+1] - A_i[i];
                    if (adiag > 0)
                        A_rownnz[irownnz++] = i;
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        let p = fa.properties.get("A_rownnz").expect("property");
        assert!(p.monotonicity.is_strict());
        assert_eq!(
            p.index_range,
            Range::new(Expr::int(0), Expr::post_max("irownnz"))
        );
        assert_eq!(
            p.value_range,
            Some(Range::new(
                Expr::int(0),
                Expr::var("num_rows") - Expr::int(1)
            ))
        );
    }

    /// Paper Section 3.2 end-to-end: col_ptr extends over the directly
    /// written slot 0 (Λ_holder = 1, col_ptr[0] = 0).
    #[test]
    fn sddmm_final_property() {
        let fa = analyze(
            r#"
            void fill(int nonzeros, int *col_val, int *col_ptr) {
                int i; int holder; int r;
                holder = 1; col_ptr[0] = 0; r = col_val[0];
                for (i = 0; i < nonzeros; i++) {
                    if (col_val[i] != r) {
                        col_ptr[holder++] = i;
                        r = col_val[i];
                    }
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        let p = fa.properties.get("col_ptr").expect("property");
        assert_eq!(
            p.index_range,
            Range::new(Expr::int(0), Expr::post_max("holder"))
        );
        // Extension over the constant prefix keeps (at least) non-strict
        // monotonicity — sufficient for the SDDMM use loop.
        assert!(matches!(&p.kind, PropertyKind::Intermittent { counter } if counter == "holder"));
    }

    /// Paper Section 3.3 end-to-end: the UA idel nest collapses twice and
    /// LEMMA 2 proves strict monotonicity w.r.t. dimension 0.
    #[test]
    fn ua_idel_multidim() {
        let fa = analyze(
            r#"
            void init(int LELT, int idel[64][6][5][5]) {
                int iel; int j; int i; int ntemp;
                for (iel = 0; iel < LELT; iel++) {
                    ntemp = 125 * iel;
                    for (j = 0; j < 5; j++) {
                        for (i = 0; i < 5; i++) {
                            idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                            idel[iel][1][j][i] = ntemp + i*5 + j*25;
                            idel[iel][2][j][i] = ntemp + i + j*25 + 20;
                            idel[iel][3][j][i] = ntemp + i + j*25;
                            idel[iel][4][j][i] = ntemp + i + j*5 + 100;
                            idel[iel][5][j][i] = ntemp + i + j*5;
                        }
                    }
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        let p = fa.properties.get("idel").expect("property");
        assert!(p.monotonicity.is_strict());
        assert_eq!(p.dim, 0);
        assert!(matches!(p.kind, PropertyKind::MultiDim));
        // Value range: [0 : 125*(LELT-1) + 124].
        assert_eq!(
            p.value_range,
            Some(Range::new(
                Expr::int(0),
                Expr::int(125) * (Expr::var("LELT") - Expr::int(1)) + Expr::int(124)
            ))
        );
    }

    /// The base algorithm proves neither the intermittent nor the
    /// multi-dimensional property.
    #[test]
    fn base_level_misses_novel_properties() {
        let src = r#"
            void f(int num_rows, int *A_i, int *A_rownnz) {
                int i; int adiag; int irownnz;
                irownnz = 0;
                for (i = 0; i < num_rows; i++) {
                    adiag = A_i[i+1] - A_i[i];
                    if (adiag > 0)
                        A_rownnz[irownnz++] = i;
                }
            }
        "#;
        let fa = analyze(src, AlgorithmLevel::Base);
        assert!(fa.properties.get("A_rownnz").is_none());
        let fa = analyze(src, AlgorithmLevel::New);
        assert!(fa.properties.get("A_rownnz").is_some());
    }

    /// The base algorithm DOES prove the continuous SRA property
    /// (prefix-sum fill, the CHOLMOD-style pattern).
    #[test]
    fn base_level_proves_sra() {
        let fa = analyze(
            r#"
            void f(int n, int *colptr, int *cnt) {
                int i;
                colptr[0] = 0;
                for (i = 0; i < n; i++) {
                    colptr[i+1] = colptr[i] + 5;
                }
            }
            "#,
            AlgorithmLevel::Base,
        );
        let p = fa.properties.get("colptr").expect("property");
        assert!(p.monotonicity.is_strict());
        assert!(matches!(p.kind, PropertyKind::Sra));
    }

    /// A later unanalyzable write invalidates the property.
    #[test]
    fn later_write_invalidates() {
        let fa = analyze(
            r#"
            void f(int n, int *a, int *perm) {
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {
                    if (perm[i] > 0) {
                        a[m] = i;
                        m = m + 1;
                    }
                }
                a[perm[0]] = 7;
            }
            "#,
            AlgorithmLevel::New,
        );
        assert!(fa.properties.get("a").is_none());
    }

    /// Input-dependent subscript arrays (Incomplete Cholesky pattern) get
    /// no property: the fill loop reads the values from program input.
    #[test]
    fn input_dependent_fill_gets_no_property() {
        let fa = analyze(
            r#"
            void f(int n, int *a, int *input) {
                int i;
                for (i = 0; i < n; i++) {
                    a[i] = input[i];
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        assert!(fa.properties.get("a").is_none());
    }

    /// An ineligible loop (break) produces no analysis.
    #[test]
    fn ineligible_loop_recorded() {
        let fa = analyze(
            r#"
            void f(int n, int *a) {
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {
                    if (a[i] > 0) break;
                    m = m + 1;
                }
            }
            "#,
            AlgorithmLevel::New,
        );
        let la = fa.loops.values().next().unwrap();
        assert!(!la.eligible);
        assert!(la.ineligibility.as_deref().unwrap().contains("break"));
    }
}
