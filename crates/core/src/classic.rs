//! Classical automatic-parallelization analysis (the "Cetus" baseline of
//! the paper's Figure 17): data-dependence testing on affine subscripts,
//! scalar privatization, and reduction recognition — with *no* knowledge of
//! subscript-array properties. Loops whose only cross-iteration conflicts
//! go through a subscripted subscript are conservatively serialized here;
//! the extended test in [`crate::deptest`] revisits exactly those.

use std::collections::{BTreeMap, BTreeSet};
use subsub_ir::{CondKind, CondTable, IrStmt, LValue, LoopIr, TypeEnv};
use subsub_symbolic::{Atom, Expr, RangeEnv, Symbol};

/// One array access (read or write) observed in a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Array name.
    pub array: String,
    /// Subscript expressions (outermost first); empty when inexact.
    pub subs: Vec<Expr>,
    /// True for writes.
    pub is_write: bool,
    /// False when a subscript could not be derived; the access then
    /// conflicts with everything.
    pub exact: bool,
}

/// An array whose cross-iteration independence could not be proven
/// classically, with every access that participates in the conflict.
#[derive(Debug, Clone)]
pub struct ArrayDep {
    /// Array name.
    pub array: String,
    /// All accesses to the array in the loop body.
    pub accesses: Vec<Access>,
}

/// First access kind per scalar, for privatization.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FirstAccess {
    Read,
    Write,
}

/// Result of the classical per-loop analysis.
#[derive(Debug, Clone)]
pub struct ClassicAnalysis {
    /// True when no scalar loop-carried dependence blocks parallelization.
    pub scalar_ok: bool,
    /// Scalars with loop-carried dependences (read-before-write, not
    /// reductions).
    pub scalar_blockers: Vec<String>,
    /// Privatizable scalars (written before read every iteration).
    pub private: Vec<String>,
    /// Recognized scalar reductions, as `op:var` (e.g. `+:tempx`).
    pub reductions: Vec<String>,
    /// Arrays with unresolved cross-iteration conflicts.
    pub array_blockers: Vec<ArrayDep>,
}

impl ClassicAnalysis {
    /// True when the loop is parallelizable by classical analysis alone.
    pub fn parallel(&self) -> bool {
        self.scalar_ok && self.array_blockers.is_empty()
    }
}

/// Runs the classical dependence analysis on one loop.
pub fn classic_analyze_loop(
    l: &LoopIr,
    types: &TypeEnv,
    conds: &CondTable,
    env: &RangeEnv,
) -> ClassicAnalysis {
    let mut col = Collector {
        types,
        conds,
        first: BTreeMap::new(),
        written: BTreeSet::new(),
        reduction_ops: BTreeMap::new(),
        non_reduction_write: BTreeSet::new(),
        read_outside_own_stmt: BTreeSet::new(),
        inner_indices: BTreeSet::new(),
        accesses: Vec::new(),
        copies: BTreeMap::new(),
        copy_candidates: BTreeMap::new(),
        depth: 0,
    };
    col.prescan_copies(&l.body);
    col.walk(&l.body);

    // ---- Scalars ----------------------------------------------------------
    let mut private = Vec::new();
    let mut reductions = Vec::new();
    let mut blockers = Vec::new();
    for name in &col.written {
        if name == l.index.name.as_ref() || col.inner_indices.contains(name) {
            continue; // loop indices are private by construction
        }
        if types.is_array(name) {
            continue; // arrays are handled by the dependence tests below
        }
        let is_reduction = col.reduction_ops.contains_key(name)
            && !col.non_reduction_write.contains(name)
            && !col.read_outside_own_stmt.contains(name);
        if is_reduction {
            reductions.push(format!("{}:{}", col.reduction_ops[name], name));
            continue;
        }
        match col.first.get(name) {
            Some(FirstAccess::Write) | None => private.push(name.clone()),
            Some(FirstAccess::Read) => blockers.push(name.clone()),
        }
    }
    // Inner loop indices are private.
    for ix in &col.inner_indices {
        private.push(ix.clone());
    }
    private.sort();
    private.dedup();

    // ---- Arrays -----------------------------------------------------------
    let mut array_blockers = Vec::new();
    let mut by_array: BTreeMap<String, Vec<Access>> = BTreeMap::new();
    for a in &col.accesses {
        by_array.entry(a.array.clone()).or_default().push(a.clone());
    }
    for (array, accesses) in by_array {
        if !accesses.iter().any(|a| a.is_write) {
            continue; // read-only arrays never conflict
        }
        let mut blocked = false;
        'pairs: for (i, a) in accesses.iter().enumerate() {
            for b in accesses.iter().skip(i) {
                if !a.is_write && !b.is_write {
                    continue;
                }
                if !pair_independent(a, b, &l.index, &col.inner_indices, env) {
                    blocked = true;
                    break 'pairs;
                }
            }
        }
        if blocked {
            array_blockers.push(ArrayDep { array, accesses });
        }
    }

    ClassicAnalysis {
        scalar_ok: blockers.is_empty(),
        scalar_blockers: blockers,
        private,
        reductions,
        array_blockers,
    }
}

/// Decides whether the pair of accesses is free of *loop-carried*
/// dependences w.r.t. `idx`:
///
/// 1. A shared subscript dimension that is affine in `idx` with non-zero
///    coefficient and *identical* on both sides pins the accesses of
///    different iterations to different elements.
/// 2. A dimension where both subscripts are affine in `idx` with the same
///    constant coefficient `c` and constant difference `k` is independent
///    when `c ∤ k` (GCD test).
pub fn pair_independent(
    a: &Access,
    b: &Access,
    idx: &Symbol,
    inner_indices: &BTreeSet<String>,
    env: &RangeEnv,
) -> bool {
    if !a.exact || !b.exact || a.subs.len() != b.subs.len() {
        return false;
    }
    for (sa, sb) in a.subs.iter().zip(&b.subs) {
        // Rule 1: identical and strictly varying with the iteration. The
        // non-index part must be invariant within an iteration: no inner
        // loop indices anywhere (including inside array-read subscripts
        // — a read like `col_ptr[r]` that is invariant w.r.t. this loop
        // is fine; `split_linear` already rejects subscripts where the
        // loop index hides inside a read).
        if sa == sb {
            if let Some((coef, rest)) = sa.split_linear(idx) {
                let sign = env.sign_of(&coef);
                let nonzero = sign.is_pos() || matches!(sign, subsub_symbolic::Sign::Neg);
                let rest_invariant = !rest
                    .free_syms()
                    .iter()
                    .any(|s| inner_indices.contains(s.name.as_ref()));
                if nonzero && rest_invariant {
                    return true;
                }
            }
        }
        // Rule 2: same coefficient, non-divisible constant difference.
        if let (Some((ca, ra)), Some((cb, rb))) = (sa.split_linear(idx), sb.split_linear(idx)) {
            if let (Some(ca), Some(cb)) = (ca.as_int(), cb.as_int()) {
                if ca == cb && ca != 0 {
                    let diff = ra - rb;
                    if let Some(k) = diff.as_int() {
                        if k != 0 && k % ca != 0 {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

struct Collector<'a> {
    types: &'a TypeEnv,
    conds: &'a CondTable,
    first: BTreeMap<String, FirstAccess>,
    written: BTreeSet<String>,
    reduction_ops: BTreeMap<String, char>,
    non_reduction_write: BTreeSet<String>,
    read_outside_own_stmt: BTreeSet<String>,
    inner_indices: BTreeSet<String>,
    accesses: Vec<Access>,
    /// Forward-substitutable scalar copies: name → defining expression.
    copies: BTreeMap<String, Expr>,
    copy_candidates: BTreeMap<String, u32>,
    depth: u32,
}

impl<'a> Collector<'a> {
    /// Counts scalar assignments so that a scalar assigned exactly once,
    /// not under an `if`, qualifies as a forward-substitutable copy
    /// (`m = A_rownnz[i]; … y_data[m] …`, `il = idel[…]; tx[il] …`).
    /// Assignments inside `if` branches count double, disqualifying the
    /// variable. The copies themselves are registered during the walk, in
    /// program order, so only uses *after* the definition are substituted.
    fn prescan_copies(&mut self, body: &[IrStmt]) {
        fn count(body: &[IrStmt], counts: &mut BTreeMap<String, u32>, in_branch: bool) {
            for s in body {
                match s {
                    IrStmt::Assign(a) => {
                        if let LValue::Scalar(n) = &a.lhs {
                            *counts.entry(n.clone()).or_insert(0) += if in_branch { 2 } else { 1 };
                        }
                    }
                    IrStmt::If { then_s, else_s, .. } => {
                        count(then_s, counts, true);
                        count(else_s, counts, true);
                    }
                    IrStmt::Loop(l) => count(&l.body, counts, in_branch),
                    IrStmt::Opaque(_) => {}
                }
            }
        }
        let mut counts = BTreeMap::new();
        count(body, &mut counts, false);
        self.copy_candidates = counts;
    }

    fn subst_copies(&self, e: &Expr) -> Expr {
        let mut cur = e.clone();
        for _ in 0..8 {
            let Some(sym) = cur
                .free_syms()
                .into_iter()
                .find(|s| self.copies.contains_key(s.name.as_ref()))
            else {
                return cur;
            };
            let def = self.copies[sym.name.as_ref()].clone();
            cur = cur.subst_sym(&sym, &def);
        }
        cur
    }

    fn mark_read(&mut self, name: &str) {
        self.first
            .entry(name.to_string())
            .or_insert(FirstAccess::Read);
    }

    fn mark_write(&mut self, name: &str) {
        self.first
            .entry(name.to_string())
            .or_insert(FirstAccess::Write);
        self.written.insert(name.to_string());
    }

    fn walk(&mut self, body: &[IrStmt]) {
        for s in body {
            match s {
                IrStmt::Assign(a) => self.visit_assign(a),
                IrStmt::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    let c = self.conds.get(*cond);
                    for v in c.referenced_vars() {
                        if !self.types.is_array(&v) {
                            self.mark_read(&v);
                            self.read_outside_own_stmt.insert(v.clone());
                        }
                    }
                    if let CondKind::Cmp { lhs, rhs, .. } = &c.kind {
                        for e in [lhs, rhs] {
                            let e = self.subst_copies(e);
                            self.collect_expr_reads(&e);
                        }
                    } else {
                        for v in c.referenced_vars() {
                            if self.types.is_array(&v) {
                                self.accesses.push(Access {
                                    array: v.clone(),
                                    subs: vec![],
                                    is_write: false,
                                    exact: false,
                                });
                            }
                        }
                    }
                    self.walk(then_s);
                    self.walk(else_s);
                }
                IrStmt::Loop(l) => {
                    self.inner_indices.insert(l.index.name.to_string());
                    for s in l.n_iters.free_syms() {
                        if !self.types.is_array(s.name.as_ref()) {
                            self.mark_read(s.name.as_ref());
                            self.read_outside_own_stmt.insert(s.name.to_string());
                        }
                    }
                    let bounds = self.subst_copies(&l.n_iters);
                    self.collect_expr_reads(&bounds);
                    self.depth += 1;
                    self.walk(&l.body);
                    self.depth -= 1;
                }
                IrStmt::Opaque(_) => {
                    // Unknown statement: conservatively, everything breaks —
                    // approximate by an inexact write to a pseudo-array.
                    self.accesses.push(Access {
                        array: "<opaque>".into(),
                        subs: vec![],
                        is_write: true,
                        exact: false,
                    });
                }
            }
        }
    }

    fn visit_assign(&mut self, a: &subsub_ir::Assign) {
        // Reads first (RHS executes before the write commits).
        let target = a.lhs.name().to_string();
        for r in &a.rhs_idents {
            if self.types.is_array(r) {
                continue; // array reads recorded via a.reads
            }
            self.mark_read(r);
            let is_self = *r == target && a.compound_op.is_some() && !a.lhs.is_array();
            if !is_self {
                self.read_outside_own_stmt.insert(r.clone());
            }
        }
        for rd in &a.reads {
            let subs: Vec<Expr> = rd.subs.iter().map(|e| self.subst_copies(e)).collect();
            self.accesses.push(Access {
                array: rd.array.clone(),
                subs,
                is_write: false,
                exact: rd.exact,
            });
        }
        // Then the write.
        match &a.lhs {
            LValue::Scalar(name) => {
                self.mark_write(name);
                // Register forward-substitutable copies in program order.
                if self.copy_candidates.get(name) == Some(&1) {
                    if let Some(e) = a.rhs.as_expr() {
                        if !e.contains_sym(&Symbol::var(name)) {
                            let resolved = self.subst_copies(e);
                            self.copies.insert(name.clone(), resolved);
                        }
                    }
                }
                match a.compound_op {
                    Some(op) => {
                        let c = match op {
                            subsub_cfront::BinOp::Add => '+',
                            subsub_cfront::BinOp::Sub => '-',
                            subsub_cfront::BinOp::Mul => '*',
                            _ => '?',
                        };
                        self.reduction_ops.entry(name.clone()).or_insert(c);
                    }
                    None => {
                        self.non_reduction_write.insert(name.clone());
                    }
                }
            }
            LValue::Array { name, subs } => {
                self.mark_write(name);
                let subs: Vec<Expr> = subs.iter().map(|e| self.subst_copies(e)).collect();
                self.accesses.push(Access {
                    array: name.clone(),
                    subs,
                    is_write: true,
                    exact: true,
                });
            }
        }
    }

    fn collect_expr_reads(&mut self, e: &Expr) {
        for t in e.terms() {
            for atom in &t.atoms {
                if let Atom::Read { array, indices } = atom {
                    let subs: Vec<Expr> = indices.iter().map(|x| self.subst_copies(x)).collect();
                    for ix in indices {
                        self.collect_expr_reads(ix);
                        for s in ix.free_syms() {
                            if !self.types.is_array(s.name.as_ref()) {
                                self.mark_read(s.name.as_ref());
                            }
                        }
                    }
                    self.accesses.push(Access {
                        array: array.to_string(),
                        subs,
                        is_write: false,
                        exact: true,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subsub_cfront::parse_program;
    use subsub_ir::lower_function;

    fn analyze_loop(src: &str, nth: usize) -> ClassicAnalysis {
        let p = parse_program(src).unwrap();
        let f = lower_function(&p.funcs[0], &p.globals).unwrap();
        let loops = f.loops();
        classic_analyze_loop(loops[nth], &f.types, &f.conds, &RangeEnv::new())
    }

    #[test]
    fn simple_affine_loop_parallel() {
        let a = analyze_loop(
            "void f(int n, double *x, double *y) { int i; for (i=0;i<n;i++) y[i] = x[i] + x[i]; }",
            0,
        );
        assert!(a.parallel(), "{a:?}");
    }

    #[test]
    fn stencil_carried_dependence_serial() {
        // a[i+1] read, a[i] written: distance-1 carried dependence.
        let a = analyze_loop(
            "void f(int n, double *a) { int i; for (i=0;i<n;i++) a[i] = a[i+1]; }",
            0,
        );
        assert!(!a.parallel());
    }

    #[test]
    fn scalar_reduction_recognized() {
        let a = analyze_loop(
            "void f(int n, double *x) { int i; double s; s = 0.0; for (i=0;i<n;i++) s += x[i]; }",
            0,
        );
        assert!(a.parallel(), "{a:?}");
        assert_eq!(a.reductions, vec!["+:s".to_string()]);
    }

    #[test]
    fn written_before_read_scalar_is_private() {
        let a = analyze_loop(
            r#"
            void f(int n, double *x, double *y) {
                int i; double t;
                for (i=0;i<n;i++) { t = x[i] * 2.0; y[i] = t + 1.0; }
            }
            "#,
            0,
        );
        assert!(a.parallel(), "{a:?}");
        assert!(a.private.contains(&"t".to_string()));
    }

    #[test]
    fn read_before_write_scalar_blocks() {
        // m is read (subscript) before being incremented: carried.
        let a = analyze_loop(
            r#"
            void f(int n, int *ind) {
                int i; int m;
                m = 0;
                for (i=0;i<n;i++) { ind[m] = i; m = m + 1; }
            }
            "#,
            0,
        );
        assert!(!a.scalar_ok);
        assert!(a.scalar_blockers.contains(&"m".to_string()));
    }

    #[test]
    fn subscripted_subscript_write_blocks() {
        let a = analyze_loop(
            r#"
            void f(int n, double *y, int *ind, double *g) {
                int j;
                for (j=0;j<n;j++) y[ind[j]] = y[ind[j]] + g[j];
            }
            "#,
            0,
        );
        assert!(a.scalar_ok);
        assert_eq!(a.array_blockers.len(), 1);
        assert_eq!(a.array_blockers[0].array, "y");
    }

    #[test]
    fn subscripted_subscript_read_only_is_fine() {
        // CG-style: gather reads through colidx, affine write to y.
        let a = analyze_loop(
            r#"
            void f(int n, double *y, double *x, int *colidx, double *a) {
                int i;
                for (i=0;i<n;i++) y[i] = a[i] * x[colidx[i]];
            }
            "#,
            0,
        );
        assert!(a.parallel(), "{a:?}");
    }

    #[test]
    fn two_dim_outer_parallel() {
        let a = analyze_loop(
            r#"
            void f(int n, int m, double A[100][100], double B[100][100]) {
                int i; int j;
                for (i=0;i<n;i++)
                    for (j=0;j<m;j++)
                        A[i][j] = B[i][j] * 2.0;
            }
            "#,
            0,
        );
        assert!(a.parallel(), "{a:?}");
    }

    #[test]
    fn copy_propagation_through_scalar() {
        // m = ind[i]; y[m] = … — the write subscript sees ind[i].
        let a = analyze_loop(
            r#"
            void f(int n, double *y, int *ind) {
                int i; int m;
                for (i=0;i<n;i++) { m = ind[i]; y[m] = 0.0; }
            }
            "#,
            0,
        );
        // Still blocked (subscripted subscript), but the access records the
        // substituted subscript so the extended test can resolve it.
        assert_eq!(a.array_blockers.len(), 1);
        let acc = &a.array_blockers[0].accesses;
        assert!(acc
            .iter()
            .any(|x| x.is_write && x.subs == vec![Expr::read("ind", vec![Expr::var("i")])]));
    }

    #[test]
    fn inner_loop_reduction_parallel() {
        // The AMGmk inner jj-loop: tempx += A_data[jj] * x_data[A_j[jj]].
        let a = analyze_loop(
            r#"
            void f(int lo, int hi, double *A_data, double *x_data, int *A_j, double *y) {
                int jj; double tempx;
                tempx = 0.0;
                for (jj = lo; jj < hi; jj++)
                    tempx += A_data[jj] * x_data[A_j[jj]];
                y[0] = tempx;
            }
            "#,
            0,
        );
        assert!(a.parallel(), "{a:?}");
        assert!(a.reductions.contains(&"+:tempx".to_string()));
    }

    #[test]
    fn time_loop_with_sweep_is_serial() {
        // fdtd/heat-style: the outer time loop carries dependences.
        let a = analyze_loop(
            r#"
            void f(int t, int n, double *a, double *b) {
                int s; int i;
                for (s=0;s<t;s++) {
                    for (i=1;i<n;i++) a[i] = b[i] + b[i-1];
                    for (i=1;i<n;i++) b[i] = a[i] + a[i-1];
                }
            }
            "#,
            0,
        );
        assert!(!a.parallel());
    }

    #[test]
    fn inner_spatial_loop_of_time_sweep_is_parallel() {
        let a = analyze_loop(
            r#"
            void f(int t, int n, double *a, double *b) {
                int s; int i;
                for (s=0;s<t;s++) {
                    for (i=1;i<n;i++) a[i] = b[i] + b[i-1];
                }
            }
            "#,
            1,
        );
        assert!(a.parallel(), "{a:?}");
    }
}
