//! The extended data-dependence test: consumes subscript-array properties
//! to disprove cross-iteration dependences that classical analysis cannot,
//! inserting runtime checks where the analysis bound is a post-loop value
//! (paper Sections 3.1–3.2; the "forthcoming contribution" dependence test
//! whose effect the evaluation measures).
//!
//! Two access patterns are resolved:
//!
//! * **Gather/scatter** (`y[ind[i]]`, AMGmk / UA): every conflicting access
//!   goes through the same subscript-array read whose monotone dimension is
//!   indexed by the parallel loop variable. *Strict* monotonicity
//!   (injectivity) makes the touched elements pairwise distinct. A runtime
//!   check `-1 + N <= counter_max` guards symbolic analysis bounds.
//! * **Segments** (`p[col_ptr[r] + ind]`, SDDMM / CHOLMOD): the inner loop
//!   runs exactly from `B[r]` to `B[r+1]`; *non-strict* monotonicity of `B`
//!   makes per-iteration segments disjoint.

use crate::classic::{classic_analyze_loop, Access, ArrayDep, ClassicAnalysis};
use crate::properties::{AlgorithmLevel, ArrayProperty, PropertyDb, PropertyKind};
use std::fmt;
use subsub_ir::{CondTable, IrStmt, LoopIr, TypeEnv};
use subsub_rtcheck::CheckExpr;
use subsub_symbolic::{Atom, Expr, RangeEnv, Symbol, SymbolKind};

/// The plan for a parallelizable loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelPlan {
    /// The full OpenMP-style pragma, e.g.
    /// `omp parallel for if(-1+num_rownnz <= irownnz_max) private(…)`.
    pub pragma: String,
    /// Privatized scalars.
    pub private: Vec<String>,
    /// Reduction clauses (`+:tempx`).
    pub reductions: Vec<String>,
    /// Runtime check guarding the parallel execution, if any — a
    /// structured expression (see [`subsub_rtcheck::CheckExpr`]) that both
    /// pretty-prints into the pragma and compiles to an executable
    /// predicate.
    pub runtime_check: Option<CheckExpr>,
    /// Array properties the decision relied on (display form).
    pub properties_used: Vec<String>,
}

/// Outcome of the (extended) dependence test for one loop.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopDecision {
    /// The loop can be executed as an OpenMP-style parallel for.
    Parallel(ParallelPlan),
    /// The loop must stay serial.
    Serial {
        /// Why parallelization failed.
        reason: String,
    },
}

impl LoopDecision {
    /// True for parallel decisions.
    pub fn is_parallel(&self) -> bool {
        matches!(self, LoopDecision::Parallel(_))
    }

    /// The plan, if parallel.
    pub fn plan(&self) -> Option<&ParallelPlan> {
        match self {
            LoopDecision::Parallel(p) => Some(p),
            LoopDecision::Serial { .. } => None,
        }
    }
}

impl fmt::Display for LoopDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopDecision::Parallel(p) => write!(f, "#pragma {}", p.pragma),
            LoopDecision::Serial { reason } => write!(f, "serial ({reason})"),
        }
    }
}

/// Decides parallelizability of one loop at the given algorithm level.
pub fn decide_loop(
    l: &LoopIr,
    types: &TypeEnv,
    conds: &CondTable,
    props: &PropertyDb,
    level: AlgorithmLevel,
    env: &RangeEnv,
) -> LoopDecision {
    let classic: ClassicAnalysis = classic_analyze_loop(l, types, conds, env);
    if !classic.scalar_ok {
        return LoopDecision::Serial {
            reason: format!(
                "loop-carried scalar dependence on {}",
                classic.scalar_blockers.join(", ")
            ),
        };
    }
    let mut checks: Vec<CheckExpr> = Vec::new();
    let mut used: Vec<String> = Vec::new();
    for dep in &classic.array_blockers {
        if !level.analyzes_arrays() {
            return LoopDecision::Serial {
                reason: format!("cross-iteration dependence on array {}", dep.array),
            };
        }
        match resolve_array_dep(dep, l, props, env) {
            Some(res) => {
                for c in res.runtime_checks {
                    // Structural (canonical) equality, so algebraically
                    // equal checks like `-1 + N <= m` and `N - 1 <= m`
                    // collapse to one conjunct.
                    if !checks.contains(&c) {
                        checks.push(c);
                    }
                }
                for p in res.properties {
                    if !used.contains(&p) {
                        used.push(p);
                    }
                }
            }
            None => {
                return LoopDecision::Serial {
                    reason: format!("cross-iteration dependence on array {}", dep.array),
                };
            }
        }
    }
    let runtime_check = if checks.is_empty() {
        None
    } else {
        Some(CheckExpr::and(checks))
    };
    let mut pragma = String::from("omp parallel for");
    if let Some(c) = &runtime_check {
        pragma.push_str(&format!(" if({c})"));
    }
    if !classic.private.is_empty() {
        pragma.push_str(&format!(" private({})", classic.private.join(", ")));
    }
    for r in &classic.reductions {
        pragma.push_str(&format!(" reduction({r})"));
    }
    LoopDecision::Parallel(ParallelPlan {
        pragma,
        private: classic.private,
        reductions: classic.reductions,
        runtime_check,
        properties_used: used,
    })
}

struct Resolution {
    /// Display form of every property the discharge relied on (the outer
    /// *and* inner array for composed two-level indirection).
    properties: Vec<String>,
    /// Runtime conjuncts guarding the discharge (containment checks plus
    /// the validity guards of any conditionally-proven property).
    runtime_checks: Vec<CheckExpr>,
}

/// A [`PropertyKind::Guarded`] property is only valid under its predicate;
/// every use site must re-establish it at runtime.
fn push_guard(prop: &ArrayProperty, checks: &mut Vec<CheckExpr>) {
    if let PropertyKind::Guarded { guard } = &prop.kind {
        push_unique(checks, (**guard).clone());
    }
}

fn push_unique(checks: &mut Vec<CheckExpr>, c: CheckExpr) {
    if !checks.contains(&c) {
        checks.push(c);
    }
}

/// Attempts to discharge all conflicting accesses of one array using a
/// subscript-array property.
fn resolve_array_dep(
    dep: &ArrayDep,
    l: &LoopIr,
    props: &PropertyDb,
    env: &RangeEnv,
) -> Option<Resolution> {
    if dep.accesses.iter().any(|a| !a.exact) {
        return None;
    }
    try_gather_scatter(dep, l, props, env).or_else(|| try_segments(dep, l, props, env))
}

/// Pattern 1: all accesses are `host[S[ρ…] + c]` through one monotone
/// subscript array `S` whose monotone dimension is indexed by the loop
/// variable. Requires strict monotonicity (injectivity).
fn try_gather_scatter(
    dep: &ArrayDep,
    l: &LoopIr,
    props: &PropertyDb,
    env: &RangeEnv,
) -> Option<Resolution> {
    let idx = &l.index;
    // Decompose the first access; all others must agree.
    let first = decompose_indirect(&dep.accesses[0])?;
    for a in &dep.accesses[1..] {
        let d = decompose_indirect(a)?;
        if d.sub_array != first.sub_array || d.offset != first.offset || d.rho != first.rho {
            return None;
        }
    }
    let prop = props.get(&first.sub_array)?;
    if !prop.is_injective() {
        return None;
    }
    if prop.defined_in >= l.id {
        return None; // property established only after this loop
    }
    let mut checks: Vec<CheckExpr> = Vec::new();
    let mut used = vec![prop.to_string()];
    push_guard(prop, &mut checks);
    // The property's monotone dimension must be indexed by the loop
    // variable (same offset across accesses ensures consistency).
    for a in &dep.accesses {
        let d = decompose_indirect(a)?;
        if prop.dim >= d.rho.len() {
            return None;
        }
        // Non-monotone dimensions may hold any legal value (Definition 1),
        // but they must not depend on the outer loop index (two iterations
        // picking the same slice would alias).
        for (p, r) in d.rho.iter().enumerate() {
            if p != prop.dim && r.contains_sym(idx) {
                return None;
            }
        }
        let rho = &d.rho[prop.dim];
        if let Some(k) = simple_offset(rho, idx) {
            if let Some(c) = range_containment_check(k, l, prop, env)? {
                push_unique(&mut checks, c);
            }
        } else {
            // Multi-level indirection: the monotone dimension is itself a
            // subscript-array read, `S[T[i + k2]]`. Injective ∘ injective
            // is injective, so distinct iterations still touch pairwise
            // distinct elements — provided the composition stays within
            // the domains both properties cover:
            //   (a) the loop range [k2 : N-1+k2] lies in T's index range;
            //   (b) T's value range lies in S's monotone index range.
            let (inner_name, inner_indices, rest) = split_single_read(rho)?;
            if !rest.is_zero() {
                return None;
            }
            let [inner_idx] = inner_indices.as_slice() else {
                return None;
            };
            let k2 = simple_offset(inner_idx, idx)?;
            let inner = props.get(&inner_name)?;
            if !inner.is_injective() || inner.dim != 0 || inner.defined_in >= l.id {
                return None;
            }
            push_guard(inner, &mut checks);
            if let Some(c) = range_containment_check(k2, l, inner, env)? {
                push_unique(&mut checks, c);
            }
            let iv = inner.value_range.as_ref()?;
            if !env.proves_le(&prop.index_range.lo, &iv.lo) {
                return None;
            }
            if let Some(c) = containment_upper(iv.hi.clone(), prop, env)? {
                push_unique(&mut checks, c);
            }
            let shown = inner.to_string();
            if !used.contains(&shown) {
                used.push(shown);
            }
        }
    }
    Some(Resolution {
        properties: used,
        runtime_checks: checks,
    })
}

/// Pattern 2: all accesses are `host[B[i + k] + jv]` where `jv` is the
/// index of an inner loop running exactly `B[i+k+1] - B[i+k]` iterations.
/// Non-strict monotonicity of `B` suffices.
fn try_segments(
    dep: &ArrayDep,
    l: &LoopIr,
    props: &PropertyDb,
    env: &RangeEnv,
) -> Option<Resolution> {
    let idx = &l.index;
    let inner = collect_inner_loops(&l.body);
    let mut checks: Vec<CheckExpr> = Vec::new();
    let mut prop_used = None;
    for a in &dep.accesses {
        if a.subs.len() != 1 {
            return None;
        }
        // subs = Read(B, [i + k]) + jv  (coefficient 1 on both parts).
        let s = &a.subs[0];
        let (b_array, b_indices, rest) = split_single_read(s)?;
        let [b_index] = b_indices.as_slice() else {
            return None;
        };
        let k = simple_offset(b_index, idx)?;
        // rest must be exactly one inner loop's index variable.
        let jv = rest.as_sym()?.clone();
        if jv.kind != SymbolKind::Var {
            return None;
        }
        let (_, n_iters) = inner.iter().find(|(name, _)| *name == jv.name.as_ref())?;
        // The inner trip count must be B[i+k+1] - B[i+k].
        let expected = Expr::read(&b_array, vec![Expr::sym(idx.clone()) + Expr::int(k + 1)])
            - Expr::read(&b_array, vec![Expr::sym(idx.clone()) + Expr::int(k)]);
        if *n_iters != expected {
            return None;
        }
        let prop = props.get(&b_array)?;
        if prop.dim != 0 || prop.defined_in >= l.id {
            return None;
        }
        // Segments [B[i] : B[i+1]-1] are disjoint under (non-strict)
        // monotonicity. The property must cover subscripts up to N + k.
        push_guard(prop, &mut checks);
        if let Some(c) = segment_containment_check(k, l, prop, env)? {
            push_unique(&mut checks, c);
        }
        prop_used = Some(prop.to_string());
    }
    Some(Resolution {
        properties: vec![prop_used?],
        runtime_checks: checks,
    })
}

struct Indirect {
    sub_array: String,
    rho: Vec<Expr>,
    offset: i64,
}

/// `host_sub = Read(S, ρ) + c` with integer `c`.
fn decompose_indirect(a: &Access) -> Option<Indirect> {
    if a.subs.len() != 1 {
        return None;
    }
    let (array, rho, rest) = split_single_read(&a.subs[0])?;
    let offset = rest_to_int(&rest)?;
    Some(Indirect {
        sub_array: array,
        rho,
        offset,
    })
}

fn rest_to_int(e: &Expr) -> Option<i64> {
    e.as_int()
}

/// Splits `e = Read(A, ρ) + rest` where the read occurs exactly once with
/// coefficient 1. For multi-index reads, returns all indices.
fn split_single_read(e: &Expr) -> Option<(String, Vec<Expr>, Expr)> {
    let mut found: Option<(String, Vec<Expr>)> = None;
    let mut rest_terms = Vec::new();
    for t in e.terms() {
        let reads: Vec<&Atom> = t
            .atoms
            .iter()
            .filter(|a| matches!(a, Atom::Read { .. }))
            .collect();
        match reads.len() {
            0 => rest_terms.push(t.clone()),
            1 if t.atoms.len() == 1 && t.coeff == 1 => {
                if found.is_some() {
                    return None; // more than one read
                }
                let Atom::Read { array, indices } = reads[0] else {
                    unreachable!()
                };
                found = Some((array.to_string(), indices.clone()));
            }
            _ => return None,
        }
    }
    let (array, rho) = found?;
    Some((array, rho, Expr::from_terms(rest_terms)))
}

/// `e = idx + k` → `k`.
fn simple_offset(e: &Expr, idx: &Symbol) -> Option<i64> {
    let (coef, rest) = e.split_linear(idx)?;
    if coef.as_int() != Some(1) {
        return None;
    }
    rest.as_int()
}

/// Checks that `[k : N-1+k]` lies inside the property's index range,
/// returning the runtime check when the upper bound is a post-loop value.
/// Result is `Some(check)` on success (check may be `None` when provable
/// at compile time); `None` when containment fails outright.
fn range_containment_check(
    k: i64,
    l: &LoopIr,
    prop: &ArrayProperty,
    env: &RangeEnv,
) -> Option<Option<CheckExpr>> {
    // Lower end.
    if !env.proves_le(&prop.index_range.lo, &Expr::int(k)) {
        return None;
    }
    let hi_access = l.n_iters.clone() - Expr::int(1) + Expr::int(k);
    containment_upper(hi_access, prop, env)
}

/// Segment accesses reach `B[N + k]`, one past the last segment start.
fn segment_containment_check(
    k: i64,
    l: &LoopIr,
    prop: &ArrayProperty,
    env: &RangeEnv,
) -> Option<Option<CheckExpr>> {
    if !env.proves_le(&prop.index_range.lo, &Expr::int(k)) {
        return None;
    }
    // The paper's runtime check compares the last segment *start* index
    // (`-1 + n_cols <= holder_max`); we follow that form.
    let hi_access = l.n_iters.clone() - Expr::int(1) + Expr::int(k);
    containment_upper(hi_access, prop, env)
}

fn containment_upper(
    hi_access: Expr,
    prop: &ArrayProperty,
    env: &RangeEnv,
) -> Option<Option<CheckExpr>> {
    let hi = &prop.index_range.hi;
    let has_postmax = hi.free_syms().iter().any(|s| s.kind == SymbolKind::PostMax);
    if has_postmax {
        Some(Some(CheckExpr::le(hi_access, hi.clone())))
    } else if env.proves_le(&hi_access, hi) {
        Some(None)
    } else {
        // Not provable at compile time: still emit a runtime check on the
        // symbolic bound.
        Some(Some(CheckExpr::le(hi_access, hi.clone())))
    }
}

fn collect_inner_loops(body: &[IrStmt]) -> Vec<(String, Expr)> {
    let mut out = Vec::new();
    fn walk(body: &[IrStmt], out: &mut Vec<(String, Expr)>) {
        for s in body {
            match s {
                IrStmt::Loop(l) => {
                    out.push((l.index.name.to_string(), l.n_iters.clone()));
                    walk(&l.body, out);
                }
                IrStmt::If { then_s, else_s, .. } => {
                    walk(then_s, out);
                    walk(else_s, out);
                }
                _ => {}
            }
        }
    }
    walk(body, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::analyze_function;
    use subsub_cfront::parse_program;
    use subsub_ir::lower_function;

    /// Analyzes a whole function and returns the decision for the loop at
    /// pre-order position `nth` under `level`.
    fn decide(src: &str, nth: usize, level: AlgorithmLevel) -> LoopDecision {
        let p = parse_program(src).unwrap();
        let f = lower_function(&p.funcs[0], &p.globals).unwrap();
        let env = RangeEnv::new();
        let fa = analyze_function(&f, level, &env);
        let loops = f.loops();
        decide_loop(loops[nth], &f.types, &f.conds, &fa.properties, level, &env)
    }

    /// Inline-expanded AMGmk: fill loop then the SpMV use loop (Figures 8+9).
    const AMGMK: &str = r#"
        void amgmk(int num_rows, int num_rownnz, int *A_i, int *A_j,
                   double *A_data, double *x_data, double *y_data, int *A_rownnz) {
            int i; int adiag; int irownnz; int jj; int m; double tempx;
            irownnz = 0;
            for (i = 0; i < num_rows; i++) {
                adiag = A_i[i+1] - A_i[i];
                if (adiag > 0)
                    A_rownnz[irownnz++] = i;
            }
            for (i = 0; i < num_rownnz; i++) {
                m = A_rownnz[i];
                tempx = y_data[m];
                for (jj = A_i[m]; jj < A_i[m+1]; jj++)
                    tempx += A_data[jj] * x_data[A_j[jj]];
                y_data[m] = tempx;
            }
        }
    "#;

    /// The paper's headline result (Section 3.1): the outer SpMV loop is
    /// parallel under the new algorithm, with the runtime check
    /// `-1 + num_rownnz <= irownnz_max`.
    #[test]
    fn amgmk_use_loop_parallel_under_new() {
        let d = decide(AMGMK, 1, AlgorithmLevel::New);
        let plan = d.plan().unwrap_or_else(|| panic!("expected parallel: {d}"));
        let check = plan.runtime_check.as_ref().expect("runtime check");
        assert_eq!(check.to_string(), "num_rownnz - 1 <= irownnz_max");
        assert!(plan.private.contains(&"jj".to_string()));
        assert!(plan.private.contains(&"m".to_string()));
        assert!(plan.private.contains(&"tempx".to_string()));
    }

    /// Classical analysis and the base algorithm keep the loop serial.
    #[test]
    fn amgmk_use_loop_serial_under_classic_and_base() {
        assert!(!decide(AMGMK, 1, AlgorithmLevel::Classic).is_parallel());
        assert!(!decide(AMGMK, 1, AlgorithmLevel::Base).is_parallel());
    }

    /// The fill loop itself stays serial at every level (carried scalar
    /// recurrence on irownnz).
    #[test]
    fn amgmk_fill_loop_serial() {
        for level in [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ] {
            assert!(!decide(AMGMK, 0, level).is_parallel());
        }
    }

    /// The inner jj-loop is parallel even classically (reduction).
    #[test]
    fn amgmk_inner_loop_parallel_classically() {
        let d = decide(AMGMK, 2, AlgorithmLevel::Classic);
        let plan = d.plan().unwrap_or_else(|| panic!("expected parallel: {d}"));
        assert!(plan.reductions.contains(&"+:tempx".to_string()));
    }

    /// Inline-expanded SDDMM (Figures 10+11): segment pattern.
    const SDDMM: &str = r#"
        void sddmm(int n_cols, int nonzeros, int k, int *col_val, int *col_ptr,
                   int *row_ind, double *W, double *H, double *nnz_val, double *p) {
            int i; int holder; int r; int ind; int t; double sm;
            holder = 1; col_ptr[0] = 0; r = col_val[0];
            for (i = 0; i < nonzeros; i++) {
                if (col_val[i] != r) {
                    col_ptr[holder++] = i;
                    r = col_val[i];
                }
            }
            for (r = 0; r < n_cols; r++) {
                for (ind = col_ptr[r]; ind < col_ptr[r+1]; ind++) {
                    sm = 0.0;
                    for (t = 0; t < k; t++) {
                        sm += W[r*k + t] * H[row_ind[ind]*k + t];
                    }
                    p[ind] = sm * nnz_val[ind];
                }
            }
        }
    "#;

    /// Section 3.2: the outer r-loop parallelizes under the new algorithm
    /// with the check `-1 + n_cols <= holder_max`.
    #[test]
    fn sddmm_outer_parallel_under_new() {
        let d = decide(SDDMM, 1, AlgorithmLevel::New);
        let plan = d.plan().unwrap_or_else(|| panic!("expected parallel: {d}"));
        assert_eq!(
            plan.runtime_check
                .as_ref()
                .map(|c| c.to_string())
                .as_deref(),
            Some("n_cols - 1 <= holder_max")
        );
    }

    #[test]
    fn sddmm_outer_serial_under_classic_and_base() {
        assert!(!decide(SDDMM, 1, AlgorithmLevel::Classic).is_parallel());
        assert!(!decide(SDDMM, 1, AlgorithmLevel::Base).is_parallel());
    }

    /// The inner ind-loop is classically parallel (affine write p[ind],
    /// reduction sm).
    #[test]
    fn sddmm_inner_parallel_classically() {
        let d = decide(SDDMM, 2, AlgorithmLevel::Classic);
        assert!(d.is_parallel(), "{d}");
    }

    /// CHOLMOD-style supernodal pattern: the column pointer is a prefix sum
    /// (unconditional SRA) — the BASE algorithm already parallelizes the
    /// use loop; classical does not.
    const CHOLMOD: &str = r#"
        void cholmod(int n, int *colptr, int *cnt, double *L_x, double *work) {
            int j; int p;
            colptr[0] = 0;
            for (j = 0; j < n; j++) {
                colptr[j+1] = colptr[j] + 7;
            }
            for (j = 0; j < n; j++) {
                for (p = colptr[j]; p < colptr[j+1]; p++) {
                    L_x[p] = L_x[p] * work[j];
                }
            }
        }
    "#;

    #[test]
    fn cholmod_use_loop_parallel_under_base_and_new() {
        for level in [AlgorithmLevel::Base, AlgorithmLevel::New] {
            let d = decide(CHOLMOD, 1, level);
            assert!(d.is_parallel(), "level {level}: {d}");
        }
        assert!(!decide(CHOLMOD, 1, AlgorithmLevel::Classic).is_parallel());
    }

    /// IS-style key histogram: the subscript array values come from input
    /// data — no property, serial at every level.
    const IS: &str = r#"
        void rank(int n, int *key, int *count) {
            int i;
            for (i = 0; i < n; i++) {
                count[key[i]] = count[key[i]] + 1;
            }
        }
    "#;

    #[test]
    fn is_histogram_serial_everywhere() {
        for level in [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ] {
            assert!(!decide(IS, 0, level).is_parallel());
        }
    }

    /// UA-style gather through a multi-dimensional subscript array proven
    /// range-monotone w.r.t. dimension 0 (its slices are disjoint).
    const UA: &str = r#"
        void transf(int LELT, int idel[64][6][5][5], double *tx, double *tmort) {
            int iel; int j; int i; int ntemp; int il;
            for (iel = 0; iel < LELT; iel++) {
                ntemp = 125 * iel;
                for (j = 0; j < 5; j++) {
                    for (i = 0; i < 5; i++) {
                        idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                        idel[iel][1][j][i] = ntemp + i*5 + j*25;
                        idel[iel][2][j][i] = ntemp + i + j*25 + 20;
                        idel[iel][3][j][i] = ntemp + i + j*25;
                        idel[iel][4][j][i] = ntemp + i + j*5 + 100;
                        idel[iel][5][j][i] = ntemp + i + j*5;
                    }
                }
            }
            for (iel = 0; iel < LELT; iel++) {
                for (j = 0; j < 5; j++) {
                    for (i = 0; i < 5; i++) {
                        il = idel[iel][0][j][i];
                        tx[il] = tx[il] + tmort[il];
                    }
                }
            }
        }
    "#;

    #[test]
    fn ua_use_loop_parallel_under_new_only() {
        let d = decide(UA, 3, AlgorithmLevel::New);
        assert!(d.is_parallel(), "{d}");
        assert!(!decide(UA, 3, AlgorithmLevel::Base).is_parallel());
        assert!(!decide(UA, 3, AlgorithmLevel::Classic).is_parallel());
    }

    /// CSR-of-CSR two-level gather: the scatter target is `row_start[act[i]]`
    /// — a strided-monotone outer array composed with an intermittent inner
    /// array. Injective ∘ injective is injective, so the use loop
    /// parallelizes under the new algorithm, with containment of the loop
    /// range in the inner array's (post-max-bounded) domain as the check.
    const CSROCSR: &str = r#"
        void csrocsr(int num_rows, int num_act, int *row_start, int *act,
                     double *y, double *g) {
            int i; int m; int p;
            p = 0;
            for (i = 0; i < num_rows; i++) {
                row_start[i] = p;
                p = p + 2;
            }
            m = 0;
            for (i = 0; i < num_rows; i++) {
                if (g[i] > 0.0) {
                    act[m++] = i;
                }
            }
            for (i = 0; i < num_act; i++) {
                y[row_start[act[i]]] = y[row_start[act[i]]] + g[i];
            }
        }
    "#;

    #[test]
    fn two_level_gather_parallel_under_new() {
        let d = decide(CSROCSR, 2, AlgorithmLevel::New);
        let plan = d.plan().unwrap_or_else(|| panic!("expected parallel: {d}"));
        let check = plan.runtime_check.as_ref().expect("runtime check");
        assert_eq!(check.to_string(), "num_act - 1 <= m_max");
        // Both levels' properties justify the decision.
        assert_eq!(plan.properties_used.len(), 2, "{:?}", plan.properties_used);
        assert!(plan
            .properties_used
            .iter()
            .any(|p| p.starts_with("row_start[")));
        assert!(plan.properties_used.iter().any(|p| p.starts_with("act[")));
    }

    /// The inner level of the composition is an intermittent property —
    /// Base lacks LEMMA 1, so the composition is only provable under New.
    #[test]
    fn two_level_gather_serial_under_classic_and_base() {
        assert!(!decide(CSROCSR, 2, AlgorithmLevel::Classic).is_parallel());
        assert!(!decide(CSROCSR, 2, AlgorithmLevel::Base).is_parallel());
    }

    /// If the inner array of a composition has no injectivity property,
    /// the composed access cannot be discharged.
    #[test]
    fn two_level_requires_inner_injectivity() {
        let src = r#"
            void f(int n, int *row_start, int *act, double *y, double *g) {
                int i; int p;
                p = 0;
                for (i = 0; i < n; i++) {
                    row_start[i] = p;
                    p = p + 2;
                }
                for (i = 0; i < n; i++) {
                    y[row_start[act[i]]] = y[row_start[act[i]]] + g[i];
                }
            }
        "#;
        assert!(!decide(src, 1, AlgorithmLevel::New).is_parallel());
    }

    /// Strided SRA fill (`p = p + 2`) proves `off` strided-monotone; the
    /// scatter loop is already parallel under Base (SRA is a base-algorithm
    /// concept), with no runtime check needed.
    const SSCATTER: &str = r#"
        void sscatter(int n, int *off, double *y, double *g) {
            int i; int p;
            p = 0;
            for (i = 0; i < n; i++) {
                off[i] = p;
                p = p + 2;
            }
            for (i = 0; i < n; i++) {
                y[off[i]] = y[off[i]] + g[i];
            }
        }
    "#;

    #[test]
    fn strided_scatter_parallel_under_base_and_new() {
        for level in [AlgorithmLevel::Base, AlgorithmLevel::New] {
            let d = decide(SSCATTER, 1, level);
            let plan = d.plan().unwrap_or_else(|| panic!("level {level}: {d}"));
            assert!(plan.runtime_check.is_none(), "{:?}", plan.runtime_check);
            assert!(
                plan.properties_used.iter().any(|p| p.contains("#SMA+2")),
                "strided gap bound not recorded: {:?}",
                plan.properties_used
            );
        }
        assert!(!decide(SSCATTER, 1, AlgorithmLevel::Classic).is_parallel());
    }

    /// Conditionally-monotone prefix sum: the step `gstep` has unknown
    /// sign, so the property holds only under the guard `1 <= gstep`,
    /// which must surface as the segment loop's runtime check.
    const GPREFIX: &str = r#"
        void gprefix(int n, int gstep, int *off, double *vals) {
            int i; int j;
            off[0] = 0;
            for (i = 0; i < n; i++) {
                off[i+1] = off[i] + gstep;
            }
            for (i = 0; i < n; i++) {
                for (j = off[i]; j < off[i+1]; j++) {
                    vals[j] = vals[j] * 2.0;
                }
            }
        }
    "#;

    #[test]
    fn guarded_prefix_parallel_under_new_with_guard_check() {
        let d = decide(GPREFIX, 1, AlgorithmLevel::New);
        let plan = d.plan().unwrap_or_else(|| panic!("expected parallel: {d}"));
        let check = plan.runtime_check.as_ref().expect("guard check");
        assert_eq!(check.to_string(), "1 <= gstep");
    }

    /// Symbolic-step recurrences need the guarded-recurrence concept —
    /// Base keeps the loop serial.
    #[test]
    fn guarded_prefix_serial_under_classic_and_base() {
        assert!(!decide(GPREFIX, 1, AlgorithmLevel::Classic).is_parallel());
        assert!(!decide(GPREFIX, 1, AlgorithmLevel::Base).is_parallel());
    }

    /// Accesses through two *different* subscript arrays cannot be
    /// discharged even if both are injective (values may collide).
    #[test]
    fn different_subscript_arrays_not_resolved() {
        let src = r#"
            void f(int n, double *y, int *p, int *q, int *flag) {
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {
                    if (flag[i] > 0) { p[m] = i; m = m + 1; }
                }
                m = 0;
                for (i = 0; i < n; i++) {
                    if (flag[i] > 0) { q[m] = i; m = m + 1; }
                }
                for (i = 0; i < n; i++) {
                    y[p[i]] = y[q[i]] + 1.0;
                }
            }
        "#;
        assert!(!decide(src, 2, AlgorithmLevel::New).is_parallel());
    }

    /// A constant offset between the write and the read through the same
    /// injective array breaks the same-element argument.
    #[test]
    fn offset_access_not_resolved() {
        let src = r#"
            void f(int n, double *y, int *ind, int *flag) {
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {
                    if (flag[i] > 0) { ind[m] = i; m = m + 1; }
                }
                for (i = 0; i < n; i++) {
                    y[ind[i]] = y[ind[i] + 1] * 0.5;
                }
            }
        "#;
        assert!(!decide(src, 1, AlgorithmLevel::New).is_parallel());
    }

    /// Non-strict monotonicity is NOT enough for the gather/scatter
    /// pattern (duplicate values alias); it IS enough for segments.
    #[test]
    fn gather_scatter_requires_strictness() {
        // p fills with a conditional SSR of step 0-or-1 twice — the value
        // itself is only monotone. Simplest: use an MA-only property via a
        // value that repeats: a[m] = holder-style value. Here we reuse a
        // prefix-sum with k = 0 (monotone, not strict).
        let src = r#"
            void f(int n, double *y, int *ind) {
                int i;
                for (i = 0; i < n; i++) {
                    ind[i+1] = ind[i] + 0;
                }
                for (i = 0; i < n; i++) {
                    y[ind[i]] = y[ind[i]] + 1.0;
                }
            }
        "#;
        assert!(!decide(src, 1, AlgorithmLevel::New).is_parallel());
    }

    /// A segment loop whose inner trip count does NOT match `B[i+1]-B[i]`
    /// is not the segment pattern.
    #[test]
    fn segment_requires_matching_bounds() {
        let src = r#"
            void f(int n, int *colptr, double *x, int *w) {
                int j; int p;
                colptr[0] = 0;
                for (j = 0; j < n; j++) {
                    colptr[j+1] = colptr[j] + 7;
                }
                for (j = 0; j < n; j++) {
                    for (p = colptr[j]; p < colptr[j+1] + 1; p++) {
                        x[p] = x[p] * 2.0;
                    }
                }
            }
        "#;
        assert!(!decide(src, 1, AlgorithmLevel::Base).is_parallel());
    }

    /// Two host arrays gathered through the same subscript array generate
    /// the containment check twice; structural dedup must collapse the
    /// conjunction to a single conjunct appearing once in the pragma.
    #[test]
    fn equal_checks_dedup_to_one_conjunct() {
        let src = r#"
            void f(int num_rows, int num_rownnz, int *A_i, double *y_data,
                   double *z_data, int *A_rownnz) {
                int i; int adiag; int irownnz; int m;
                irownnz = 0;
                for (i = 0; i < num_rows; i++) {
                    adiag = A_i[i+1] - A_i[i];
                    if (adiag > 0)
                        A_rownnz[irownnz++] = i;
                }
                for (i = 0; i < num_rownnz; i++) {
                    m = A_rownnz[i];
                    y_data[m] = y_data[m] + 1.0;
                    z_data[m] = z_data[m] * 2.0;
                }
            }
        "#;
        let d = decide(src, 1, AlgorithmLevel::New);
        let plan = d.plan().unwrap_or_else(|| panic!("expected parallel: {d}"));
        let check = plan.runtime_check.as_ref().expect("runtime check");
        assert_eq!(check.conjuncts().len(), 1, "dedup failed: {check}");
        assert_eq!(plan.pragma.matches("irownnz_max").count(), 1);
    }

    /// The dedup is canonical, not textual: operand order and constant
    /// placement don't defeat it.
    #[test]
    fn dedup_is_structural_not_textual() {
        use subsub_rtcheck::parse_check;
        let a = parse_check("-1 + num_rownnz <= irownnz_max").unwrap();
        let b = parse_check("num_rownnz - 1 <= irownnz_max").unwrap();
        assert_eq!(a, b);
        let mut checks = vec![a];
        if !checks.contains(&b) {
            checks.push(b);
        }
        assert_eq!(CheckExpr::and(checks).conjuncts().len(), 1);
    }

    /// The property must not be used by a loop that precedes its
    /// definition in program order.
    #[test]
    fn property_not_used_before_definition() {
        let src = r#"
            void f(int n, double *y, int *ind, double *g, int *flag) {
                int i; int m;
                for (i = 0; i < n; i++) {
                    y[ind[i]] = y[ind[i]] + g[i];
                }
                m = 0;
                for (i = 0; i < n; i++) {
                    if (flag[i] > 0)
                        ind[m++] = i;
                }
            }
        "#;
        assert!(!decide(src, 0, AlgorithmLevel::New).is_parallel());
    }
}
