//! Fault-injection tests for the inspection/caching rungs of the
//! degradation ladder: a faulted parallel scan is retried and serially
//! rescued but **never memoized**, dropped cache inserts only cost
//! re-inspection, and corrupted memos can only deny (conservative
//! direction).
//!
//! Armed failpoints are process-global, so this suite owns its test
//! binary; `failpoint::arm` serializes the armed scopes within it.

use std::sync::Mutex;
use subsub_failpoint::{self as failpoint, Arm, FailPlan, Fire};

/// Armed failpoints are process-global: serialize the tests so one
/// test's armed schedule never injects into another's clean phase.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

use subsub_omprt::ThreadPool;
use subsub_rtcheck::{InspectorCache, MonotoneReq};

/// A strictly increasing index array large enough (>= the inspector's
/// parallel threshold of 8192) that verdicts go through the pool.
fn big_data() -> Vec<usize> {
    (0..20_000usize).collect()
}

fn view<'a>(name: &'a str, data: &'a [usize], version: u64) -> subsub_rtcheck::IndexArrayView<'a> {
    subsub_rtcheck::IndexArrayView {
        name,
        data,
        version,
        required: MonotoneReq::NonStrict,
    }
}

#[test]
fn faulted_inspection_is_never_memoized() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(4);
    let cache = InspectorCache::new();
    let data = big_data();
    {
        let _armed = failpoint::arm(FailPlan::new().with(
            "rtcheck.inspect.chunk",
            Arm::Panic,
            Fire::always(),
        ));
        let r = cache.try_verdict(&view("b", &data, 0), Some(&pool));
        assert!(r.is_err(), "every chunk scan faults: {r:?}");
        assert!(failpoint::fired("rtcheck.inspect.chunk") > 0);
    }
    // The fault must not have recorded a verdict: the next (clean)
    // lookup is a *miss* that re-inspects and returns the truth.
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (0, 1), "{s:?}");
    let v = cache
        .try_verdict(&view("b", &data, 0), Some(&pool))
        .expect("clean re-inspection");
    assert!(v.nonstrict && v.strict);
    let s = cache.stats();
    assert_eq!(
        (s.hits, s.misses),
        (0, 2),
        "no poisoned entry served: {s:?}"
    );
    // Now it is memoized: a third lookup hits.
    cache
        .try_verdict(&view("b", &data, 0), Some(&pool))
        .unwrap();
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn public_verdict_rescues_a_persistently_faulting_scan_serially() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(4);
    let cache = InspectorCache::new();
    let data = big_data();
    let _armed =
        failpoint::arm(FailPlan::new().with("rtcheck.inspect.chunk", Arm::Panic, Fire::always()));
    // The infallible entry point degrades to the serial scan and still
    // produces the genuine verdict.
    let v = cache.verdict(&view("b", &data, 7), Some(&pool));
    assert!(v.nonstrict && v.strict, "serial rescue truth: {v:?}");
    // The serial rescue's verdict is trustworthy, so it *is* memoized.
    let v2 = cache.verdict(&view("b", &data, 7), Some(&pool));
    assert_eq!(v, v2);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn single_chunk_fault_is_recovered_by_one_retry() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(4);
    let cache = InspectorCache::new();
    let data = big_data();
    let _armed =
        failpoint::arm(FailPlan::new().with("rtcheck.inspect.chunk", Arm::Panic, Fire::nth(0)));
    // First attempt faults (one injected chunk panic), so `try_verdict`
    // reports the fault without memoizing...
    let r = cache.try_verdict(&view("b", &data, 0), Some(&pool));
    assert!(r.is_err(), "{r:?}");
    // ...and the immediate second attempt (the guard's bounded retry)
    // succeeds: inspection is read-only, so a rerun is always sound.
    let v = cache
        .try_verdict(&view("b", &data, 0), Some(&pool))
        .expect("retry must succeed once the failpoint is spent");
    assert!(v.nonstrict && v.strict);
}

#[test]
fn dropped_cache_inserts_only_cost_reinspection() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(2);
    let cache = InspectorCache::new();
    let data = big_data();
    {
        let _armed = failpoint::arm(FailPlan::new().with(
            "rtcheck.cache.insert",
            Arm::Error,
            Fire::always(),
        ));
        // Every insert is dropped: both lookups compute fresh verdicts
        // (correct ones), neither is served from the cache.
        let v1 = cache.verdict(&view("b", &data, 0), Some(&pool));
        let v2 = cache.verdict(&view("b", &data, 0), Some(&pool));
        assert!(v1.nonstrict && v2.nonstrict);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 2), "{s:?}");
    }
    // Disarmed: memoization is back.
    cache.verdict(&view("b", &data, 0), Some(&pool));
    cache.verdict(&view("b", &data, 0), Some(&pool));
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (1, 3), "{s:?}");
}

#[test]
fn corrupted_memo_denies_but_never_admits() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let pool = ThreadPool::new(2);
    let cache = InspectorCache::new();
    let data = big_data();
    let _armed =
        failpoint::arm(FailPlan::new().with("rtcheck.cache.insert", Arm::Corrupt, Fire::nth(0)));
    // The fresh inspection itself returns the truth...
    let v1 = cache.verdict(&view("b", &data, 0), Some(&pool));
    assert!(v1.nonstrict && v1.strict);
    // ...but the memoized entry was corrupted — in the only direction
    // the model allows: a blanket deny. A corrupted cache can cause
    // spurious serial fallbacks, never an unsound parallel admission.
    let v2 = cache.verdict(&view("b", &data, 0), Some(&pool));
    assert!(
        !v2.nonstrict && !v2.strict,
        "corruption must be conservative: {v2:?}"
    );
    assert_eq!(cache.stats().hits, 1, "the corrupt entry was a cache hit");
}
