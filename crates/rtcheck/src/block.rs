//! Per-block summaries: the O(Δ) re-inspection substrate.
//!
//! A full inspection or fingerprint pass is O(n) no matter how small the
//! mutation that invalidated it. This module cuts an index array into
//! fixed [`BLOCK_LEN`]-element blocks and keeps one [`BlockSummary`] per
//! block — its boundary values, its interior monotonicity flags, the
//! absolute index of its first interior decrease, and a per-block FNV
//! fingerprint. From the summary vector alone the whole-array verdict
//! and the whole-array checksum recombine in O(blocks): interior flags
//! AND together in block order, the pairs *joining* adjacent blocks are
//! re-derived from the stored `last`/`first` boundary values, and the
//! block fingerprints fold (in block order, seeded with the length) into
//! the `subsub-fingerprint/v2` content checksum.
//!
//! After a ranged mutation, only the blocks overlapping the dirty window
//! need rescanning — every join pair is recovered from boundary values
//! at combine time, so a single-element write into a 1 Mi-element array
//! costs one block rescan plus an O(blocks) recombine, not O(n).
//!
//! The summaries are maintained *by the trust boundary*: they are
//! rebuilt or patched on exactly the operations that bump the
//! write-version, so they describe the current contents precisely as
//! long as every writer goes through the boundary. A bypassing writer
//! leaves them stale — which is the same staleness the content checksum
//! catches, and why `verify()` recomputes from raw data before any
//! summary-derived verdict is trusted (see `validate.rs`).

use crate::inspect::{scan_pairs, MonotoneVerdict};
use std::ops::Range;

/// Elements per summary block. 4 Ki elements × 8 bytes = 32 KiB — one
/// block rescan stays L1/L2-resident, while a 1 Mi-element array needs
/// only 256 summaries (~10 KiB) and an O(256) recombine.
pub const BLOCK_LEN: usize = 4096;

/// Version tag of the combined content checksum ([`combine_fnv`]):
/// `subsub-fingerprint/v2`, the per-block word-folded FNV-1a scheme.
/// Rides along in service cache keys and snapshots so a verdict
/// fingerprinted under one scheme is never served under another.
pub const FINGERPRINT_VERSION: u8 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// FNV-1a folded one `u64` word per element. The v1 fingerprint folded
/// byte-wise (eight dependent multiplies per element); v2 folds the
/// whole word, keeping single-bit sensitivity (xor-then-multiply mixes
/// every flipped bit through the state) at an eighth of the dependency
/// chain.
fn block_fnv(block: &[usize]) -> u64 {
    let mut h = FNV_OFFSET;
    for &v in block {
        h = (h ^ v as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The `subsub-fingerprint/v2` combining rule: fold the per-block
/// fingerprints in block order, seeded with the element count. Order
/// sensitivity comes from the fold, length sensitivity from the seed —
/// so the combined value is well-defined given only (length, block
/// fingerprints) and recomputes in O(blocks) after any block rescan.
fn combine_fnv(len: usize, block_fnvs: impl Iterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET ^ (len as u64);
    for f in block_fnvs {
        h = (h ^ f).wrapping_mul(FNV_PRIME);
    }
    h
}

/// What one block contributes to the whole-array verdict and checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSummary {
    /// First element of the block (join pair with the previous block).
    pub first: usize,
    /// Last element of the block (join pair with the next block).
    pub last: usize,
    /// No adjacent pair *inside* the block decreases.
    pub nonstrict: bool,
    /// Every adjacent pair inside the block strictly increases.
    pub strict: bool,
    /// Absolute index of the first interior decrease, if any.
    pub first_violation: Option<usize>,
    /// Per-block FNV-1a fingerprint ([`FINGERPRINT_VERSION`] scheme).
    pub fnv: u64,
}

fn summarize(block_start: usize, block: &[usize]) -> BlockSummary {
    let ps = scan_pairs(block);
    BlockSummary {
        first: block.first().copied().unwrap_or(0),
        last: block.last().copied().unwrap_or(0),
        nonstrict: ps.nonstrict,
        strict: ps.strict,
        first_violation: ps.first_violation.map(|i| block_start + i),
        fnv: block_fnv(block),
    }
}

/// Wide out-of-domain scan: smallest index with `data[i] >= domain`.
/// Same stride/accumulate/positioned-second-pass shape as
/// [`scan_pairs`], so the domain half of ingestion runs at the same
/// autovectorized throughput as the monotonicity half.
pub fn first_out_of_domain(data: &[usize], domain: usize) -> Option<usize> {
    const STRIDE: usize = 512;
    let mut pos = 0usize;
    while pos < data.len() {
        let end = (pos + STRIDE).min(data.len());
        let s = &data[pos..end];
        // Plain reduction loop: one packed unsigned compare per vector of
        // elements once vectorized (requires `target-cpu=native`; see
        // `.cargo/config.toml`). A manually unrolled inner loop defeats
        // the loop vectorizer, so keep this shape boring.
        let mut bad = false;
        for x in s {
            bad |= *x >= domain;
        }
        if bad {
            for (k, x) in s.iter().enumerate() {
                if *x >= domain {
                    return Some(pos + k);
                }
            }
        }
        pos = end;
    }
    None
}

/// The per-block summary vector of one array, kept in lockstep with the
/// contents by the trust boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSummaries {
    blocks: Vec<BlockSummary>,
    len: usize,
}

impl BlockSummaries {
    /// Builds summaries for `data`, validating every entry against
    /// `domain` in the same pass — the fused single-pass ingest core.
    /// Per block: one wide domain scan, one wide pair scan, one
    /// fingerprint fold, all over an L1-resident 32 KiB window, so the
    /// data crosses the memory bus once. On an out-of-domain entry the
    /// *first offending absolute index* is returned (identical location
    /// semantics to the old two-pass `scan_domain`).
    pub fn build(data: &[usize], domain: usize) -> Result<BlockSummaries, usize> {
        let mut blocks = Vec::with_capacity(data.len().div_ceil(BLOCK_LEN));
        for (k, block) in data.chunks(BLOCK_LEN).enumerate() {
            let start = k * BLOCK_LEN;
            if let Some(rel) = first_out_of_domain(block, domain) {
                return Err(start + rel);
            }
            blocks.push(summarize(start, block));
        }
        Ok(BlockSummaries {
            blocks,
            len: data.len(),
        })
    }

    /// Builds summaries without domain validation — the `verify()`
    /// recompute path, where the domain is checked separately so a
    /// checksum mismatch can be reported first.
    pub fn build_unchecked(data: &[usize]) -> BlockSummaries {
        let mut blocks = Vec::with_capacity(data.len().div_ceil(BLOCK_LEN));
        for (k, block) in data.chunks(BLOCK_LEN).enumerate() {
            blocks.push(summarize(k * BLOCK_LEN, block));
        }
        BlockSummaries {
            blocks,
            len: data.len(),
        }
    }

    /// Number of summarized elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the summarized array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The summary rows, in block order.
    pub fn blocks(&self) -> &[BlockSummary] {
        &self.blocks
    }

    /// Rescans exactly the blocks overlapping `dirty` (a half-open
    /// element range) against the current `data`, whose length must be
    /// unchanged since the summaries were built. Join pairs need no
    /// rescan: they are re-derived from the refreshed `first`/`last`
    /// boundary values at combine time. Cost: O(blocks touched) element
    /// work plus nothing else.
    pub fn rescan(&mut self, data: &[usize], dirty: Range<usize>) {
        debug_assert_eq!(data.len(), self.len, "rescan cannot change length");
        if dirty.start >= dirty.end {
            return;
        }
        let first_block = dirty.start / BLOCK_LEN;
        let last_block = (dirty.end - 1) / BLOCK_LEN;
        for k in first_block..=last_block.min(self.blocks.len().saturating_sub(1)) {
            let start = k * BLOCK_LEN;
            let end = (start + BLOCK_LEN).min(data.len());
            self.blocks[k] = summarize(start, &data[start..end]);
        }
    }

    /// The `subsub-fingerprint/v2` combined content checksum, O(blocks).
    pub fn checksum(&self) -> u64 {
        combine_fnv(self.len, self.blocks.iter().map(|b| b.fnv))
    }

    /// Derives the whole-array verdict from the summaries, O(blocks).
    ///
    /// Blocks are walked in order; for block `k > 0` the join pair
    /// (`blocks[k-1].last` vs `blocks[k].first`, at absolute index
    /// `k * BLOCK_LEN`) is checked *before* block `k`'s interior (whose
    /// first violation is at index ≥ `k * BLOCK_LEN + 1`), so the first
    /// violation reported is the globally first one — bit-identical to
    /// [`crate::inspect_serial`] on the same contents.
    pub fn verdict(&self) -> MonotoneVerdict {
        let mut eq = false;
        let mut first_violation = None;
        'walk: for (k, s) in self.blocks.iter().enumerate() {
            if k > 0 {
                let prev_last = self.blocks[k - 1].last;
                if prev_last > s.first {
                    first_violation = Some(k * BLOCK_LEN);
                    break 'walk;
                }
                if prev_last == s.first {
                    eq = true;
                }
            }
            if !s.nonstrict {
                first_violation = s.first_violation;
                break 'walk;
            }
            if !s.strict {
                eq = true;
            }
        }
        MonotoneVerdict {
            nonstrict: first_violation.is_none(),
            strict: first_violation.is_none() && !eq,
            first_violation,
            len: self.len,
        }
    }

    /// Derives the *block-monotone* verdict — "monotone within blocks of
    /// `b` elements", pairs at multiples of `b` exempt — in O(blocks),
    /// recombining the same maintained summaries as
    /// [`BlockSummaries::verdict`]. Identical to
    /// [`crate::inspect::inspect_block_monotone`] on the current
    /// contents.
    ///
    /// Only possible from summaries when `b` is a positive multiple of
    /// [`BLOCK_LEN`]: then every exempt pair lands exactly on a summary
    /// join (whose comparison is re-derived from boundary values and can
    /// be skipped), while block interiors always count. Other block
    /// sizes return `None` — callers fall back to the O(n) scan.
    pub fn block_verdict(&self, b: usize) -> Option<MonotoneVerdict> {
        if b == 0 || !b.is_multiple_of(BLOCK_LEN) {
            return None;
        }
        let mut eq = false;
        let mut first_violation = None;
        'walk: for (k, s) in self.blocks.iter().enumerate() {
            let join = k * BLOCK_LEN;
            if k > 0 && !join.is_multiple_of(b) {
                let prev_last = self.blocks[k - 1].last;
                if prev_last > s.first {
                    first_violation = Some(join);
                    break 'walk;
                }
                if prev_last == s.first {
                    eq = true;
                }
            }
            if !s.nonstrict {
                first_violation = s.first_violation;
                break 'walk;
            }
            if !s.strict {
                eq = true;
            }
        }
        Some(MonotoneVerdict {
            nonstrict: first_violation.is_none(),
            strict: first_violation.is_none() && !eq,
            first_violation,
            len: self.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::inspect_serial;

    // Verdict/checksum tests don't care about domain membership (and a
    // few use `usize::MAX`, which no exclusive bound admits), so build
    // without domain validation; `build` is identical plus the scan.
    fn checked(data: &[usize]) -> BlockSummaries {
        BlockSummaries::build_unchecked(data)
    }

    #[test]
    fn verdict_matches_serial_on_small_shapes() {
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![7],
            vec![0, 1, 2, 5, 9],
            vec![0, 1, 1, 2],
            vec![0, 3, 2],
            vec![7; 17],
            vec![usize::MAX - 1, usize::MAX],
            vec![usize::MAX, 0],
        ];
        for data in &cases {
            assert_eq!(checked(data).verdict(), inspect_serial(data), "{data:?}");
        }
    }

    #[test]
    fn verdict_matches_serial_across_block_boundaries() {
        let n = BLOCK_LEN * 3 + 100;
        let ramp: Vec<usize> = (0..n).collect();
        assert_eq!(checked(&ramp).verdict(), inspect_serial(&ramp));
        // Violation exactly on a block join (first element of block 1).
        let mut joined = ramp.clone();
        joined[BLOCK_LEN] = 0;
        let v = checked(&joined).verdict();
        assert_eq!(v, inspect_serial(&joined));
        assert_eq!(v.first_violation, Some(BLOCK_LEN));
        // Plateau on a block join: non-strict only.
        let mut plateau = ramp.clone();
        plateau[BLOCK_LEN * 2] = plateau[BLOCK_LEN * 2 - 1];
        let v = checked(&plateau).verdict();
        assert_eq!(v, inspect_serial(&plateau));
        assert!(v.nonstrict && !v.strict);
        // Interior violation deep inside a later block.
        let mut broken = ramp.clone();
        broken[BLOCK_LEN + 77] = 3;
        assert_eq!(checked(&broken).verdict(), inspect_serial(&broken));
    }

    #[test]
    fn earliest_violation_wins_across_join_and_interior() {
        // Both a join violation and a later interior one: the join (the
        // globally first) must be reported, matching the serial scan.
        let n = BLOCK_LEN * 2;
        let mut data: Vec<usize> = (0..n).collect();
        data[BLOCK_LEN] = 0; // join violation at BLOCK_LEN
        data[BLOCK_LEN + 500] = 1; // interior violation later
        let v = checked(&data).verdict();
        assert_eq!(v.first_violation, Some(BLOCK_LEN));
        assert_eq!(v, inspect_serial(&data));
    }

    #[test]
    fn rescan_tracks_mutations_exactly() {
        let n = BLOCK_LEN * 4;
        let mut data: Vec<usize> = (0..n).collect();
        let mut s = checked(&data);
        // Break monotonicity inside block 2, rescan just that window.
        data[BLOCK_LEN * 2 + 9] = 0;
        s.rescan(&data, BLOCK_LEN * 2 + 9..BLOCK_LEN * 2 + 10);
        assert_eq!(s.verdict(), inspect_serial(&data));
        assert_eq!(s.checksum(), checked(&data).checksum());
        // Heal it again; the summaries must converge back.
        data[BLOCK_LEN * 2 + 9] = BLOCK_LEN * 2 + 9;
        s.rescan(&data, BLOCK_LEN * 2 + 9..BLOCK_LEN * 2 + 10);
        assert_eq!(s, checked(&data));
    }

    #[test]
    fn rescan_window_straddling_blocks_refreshes_both() {
        let n = BLOCK_LEN * 2 + 10;
        let mut data: Vec<usize> = (0..n).map(|i| i * 2).collect();
        let mut s = checked(&data);
        // Dirty window straddles the block 0 / block 1 join.
        let lo = BLOCK_LEN - 3;
        let hi = BLOCK_LEN + 3;
        for (off, v) in data[lo..hi].iter_mut().enumerate() {
            *v = (lo + off) * 2 + 1;
        }
        s.rescan(&data, lo..hi);
        assert_eq!(s, checked(&data));
        assert_eq!(s.verdict(), inspect_serial(&data));
    }

    #[test]
    fn fused_domain_scan_reports_first_offender() {
        let mut data: Vec<usize> = (0..BLOCK_LEN + 50).collect();
        data[BLOCK_LEN + 7] = usize::MAX;
        data[BLOCK_LEN + 30] = usize::MAX; // later offender must not win
        assert_eq!(
            BlockSummaries::build(&data, BLOCK_LEN + 50),
            Err(BLOCK_LEN + 7)
        );
        assert_eq!(
            first_out_of_domain(&data, BLOCK_LEN + 50),
            Some(BLOCK_LEN + 7)
        );
        assert_eq!(first_out_of_domain(&[0, 1, 2], 3), None);
        assert_eq!(first_out_of_domain(&[0, 1, 3], 3), Some(2));
        assert_eq!(first_out_of_domain(&[], 0), None);
        // Boundary semantics: `domain` itself is out, `domain - 1` is in.
        assert_eq!(first_out_of_domain(&[9], 10), None);
        assert_eq!(first_out_of_domain(&[10], 10), Some(0));
    }

    #[test]
    fn checksum_is_length_and_content_sensitive() {
        let c = |d: &[usize]| BlockSummaries::build_unchecked(d).checksum();
        assert_ne!(c(&[0, 1]), c(&[0, 1, 0]));
        assert_ne!(c(&[0, 1]), c(&[1, 0]));
        assert_eq!(c(&[7, 8, 9]), c(&[7, 8, 9]));
        assert_ne!(c(&[]), c(&[0]));
        // A flip in a non-final block must still move the combined value.
        let big: Vec<usize> = (0..BLOCK_LEN * 3).collect();
        let mut flipped = big.clone();
        flipped[5] ^= 1;
        assert_ne!(c(&big), c(&flipped));
    }

    #[test]
    fn incremental_checksum_equals_full_rebuild() {
        let n = BLOCK_LEN * 3 + 17;
        let mut data: Vec<usize> = (0..n).collect();
        let mut s = checked(&data);
        for (at, v) in [(0usize, 5usize), (n - 1, 0), (BLOCK_LEN, 1), (n / 2, 9)] {
            data[at] = v;
            s.rescan(&data, at..at + 1);
            assert_eq!(
                s.checksum(),
                BlockSummaries::build_unchecked(&data).checksum()
            );
        }
    }

    #[test]
    fn block_verdict_matches_ground_truth_scan() {
        use crate::inspect::inspect_block_monotone;
        let b = BLOCK_LEN;
        // Periodic ramp restarting every b elements: block-monotone
        // (strict) but globally non-monotone.
        let n = b * 3 + 100;
        let periodic: Vec<usize> = (0..n).map(|i| i % b).collect();
        let v = checked(&periodic).block_verdict(b).unwrap();
        assert_eq!(v, inspect_block_monotone(&periodic, b));
        assert!(v.strict, "{v:?}");
        assert!(!checked(&periodic).verdict().nonstrict);
        // A within-block decrease is a violation with the right index.
        let mut broken = periodic.clone();
        broken[b + 77] = 0;
        let v = checked(&broken).block_verdict(b).unwrap();
        assert_eq!(v, inspect_block_monotone(&broken, b));
        assert_eq!(v.first_violation, Some(b + 77));
        // A plateau inside a block demotes strict to non-strict.
        let mut plateau = periodic.clone();
        plateau[b * 2 + 5] = plateau[b * 2 + 4];
        let v = checked(&plateau).block_verdict(b).unwrap();
        assert_eq!(v, inspect_block_monotone(&plateau, b));
        assert!(v.nonstrict && !v.strict);
    }

    #[test]
    fn block_verdict_counts_interior_joins_of_large_blocks() {
        // b = 2 * BLOCK_LEN: the join at BLOCK_LEN is *interior* to the
        // logical block and must count; the join at 2 * BLOCK_LEN is a
        // period boundary and must be exempt.
        use crate::inspect::inspect_block_monotone;
        let b = BLOCK_LEN * 2;
        let n = b * 2;
        let periodic: Vec<usize> = (0..n).map(|i| i % b).collect();
        let v = checked(&periodic).block_verdict(b).unwrap();
        assert_eq!(v, inspect_block_monotone(&periodic, b));
        assert!(v.strict);
        // Decrease exactly at an interior summary join (index BLOCK_LEN).
        let mut broken = periodic.clone();
        broken[BLOCK_LEN] = 0;
        let v = checked(&broken).block_verdict(b).unwrap();
        assert_eq!(v, inspect_block_monotone(&broken, b));
        assert_eq!(v.first_violation, Some(BLOCK_LEN));
    }

    #[test]
    fn block_verdict_rejects_unaligned_sizes_and_degenerates() {
        use crate::inspect::{inspect_block_monotone, inspect_serial};
        let data: Vec<usize> = (0..BLOCK_LEN + 9).map(|i| i % 7).collect();
        let s = checked(&data);
        assert!(s.block_verdict(0).is_none());
        assert!(s.block_verdict(7).is_none());
        assert!(s.block_verdict(BLOCK_LEN + 1).is_none());
        // The O(n) scan handles unaligned sizes and the b = 0 degenerate.
        assert!(inspect_block_monotone(&data, 7).strict);
        assert_eq!(inspect_block_monotone(&data, 0), inspect_serial(&data));
        // b beyond the length: one block, equals the plain verdict.
        let ramp: Vec<usize> = (0..100).collect();
        assert_eq!(inspect_block_monotone(&ramp, 4096), inspect_serial(&ramp));
    }

    #[test]
    fn max_adjacent_values_do_not_wrap() {
        let data = [usize::MAX - 2, usize::MAX - 1, usize::MAX];
        let s = checked(&data);
        assert!(s.verdict().strict);
        let data = [usize::MAX, usize::MAX];
        let v = checked(&data).verdict();
        assert!(v.nonstrict && !v.strict);
    }

    #[test]
    fn property_random_mutations_match_serial() {
        // Seeded xorshift walk: after every single-element mutation the
        // summary-derived verdict and checksum must equal a from-scratch
        // rebuild and the serial inspector.
        let n = BLOCK_LEN * 2 + 333;
        let mut data: Vec<usize> = (0..n).collect();
        let mut s = checked(&data);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = (x as usize) % n;
            let val = ((x >> 32) as usize) % (2 * n);
            data[at] = val;
            s.rescan(&data, at..at + 1);
            assert_eq!(s.verdict(), inspect_serial(&data));
            assert_eq!(
                s.checksum(),
                BlockSummaries::build_unchecked(&data).checksum()
            );
        }
    }
}
