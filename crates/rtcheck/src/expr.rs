//! The structured runtime-check IR.
//!
//! A check is a conjunction of comparisons between symbolic scalar
//! expressions ([`subsub_symbolic::Expr`]). The IR pretty-prints into the
//! exact syntax the paper's pragmas use (`num_rownnz - 1 <= irownnz_max`)
//! and parses back, so checks round-trip through generated source.
//!
//! Equality is *canonical*: each comparison is normalized to difference
//! form (`lhs - rhs ⋈ 0`, with `<`/`>` absorbed into `<=`/`>=` over the
//! integers), and conjunctions compare as sorted sets. `-1 + N <= m` and
//! `N - 1 <= m` are therefore one check, which is what the dependence
//! test's dedup relies on.

use std::fmt;
use subsub_symbolic::{Expr, Symbol};

/// Comparison operator of a runtime check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A structured runtime check: a comparison or a conjunction.
#[derive(Debug, Clone)]
pub enum CheckExpr {
    /// `lhs op rhs` over symbolic scalar expressions.
    Cmp {
        /// Left operand.
        lhs: Expr,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: Expr,
    },
    /// Conjunction of checks (`a && b && …`). Empty conjunction is `true`.
    And(Vec<CheckExpr>),
}

/// One comparison in canonical difference form: `diff ⋈ 0` where `⋈` is
/// `<=`, `==` or `!=` (strict inequalities are absorbed over the
/// integers: `a < b` ⇔ `a - b + 1 <= 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalCmp {
    /// The difference expression compared against zero.
    pub diff: Expr,
    /// `true` for `diff <= 0`; `false` for the equational ops.
    pub is_le: bool,
    /// For non-`is_le` comparisons: `true` = `==`, `false` = `!=`.
    pub eq: bool,
}

impl CheckExpr {
    /// Builds `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> CheckExpr {
        CheckExpr::Cmp {
            lhs,
            op: CmpOp::Le,
            rhs,
        }
    }

    /// Builds `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> CheckExpr {
        CheckExpr::Cmp {
            lhs,
            op: CmpOp::Lt,
            rhs,
        }
    }

    /// Conjunction of several checks; flattens singletons.
    pub fn and(mut checks: Vec<CheckExpr>) -> CheckExpr {
        if checks.len() == 1 {
            checks.pop().expect("len checked")
        } else {
            CheckExpr::And(checks)
        }
    }

    /// The comparisons of this check, flattening nested conjunctions.
    pub fn conjuncts(&self) -> Vec<&CheckExpr> {
        match self {
            CheckExpr::Cmp { .. } => vec![self],
            CheckExpr::And(cs) => cs.iter().flat_map(|c| c.conjuncts()).collect(),
        }
    }

    /// Every symbol referenced by the check.
    pub fn free_syms(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = Vec::new();
        for c in self.conjuncts() {
            if let CheckExpr::Cmp { lhs, rhs, .. } = c {
                for s in lhs.free_syms().into_iter().chain(rhs.free_syms()) {
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// Canonical difference forms of every conjunct, sorted and deduped —
    /// the basis of [`PartialEq`] and of the dependence test's dedup.
    pub fn canonical(&self) -> Vec<CanonicalCmp> {
        let mut cs: Vec<CanonicalCmp> = Vec::new();
        for c in self.conjuncts() {
            let CheckExpr::Cmp { lhs, op, rhs } = c else {
                continue;
            };
            let canon = match op {
                CmpOp::Le => CanonicalCmp {
                    diff: lhs.clone() - rhs.clone(),
                    is_le: true,
                    eq: false,
                },
                CmpOp::Lt => CanonicalCmp {
                    diff: lhs.clone() - rhs.clone() + Expr::int(1),
                    is_le: true,
                    eq: false,
                },
                CmpOp::Ge => CanonicalCmp {
                    diff: rhs.clone() - lhs.clone(),
                    is_le: true,
                    eq: false,
                },
                CmpOp::Gt => CanonicalCmp {
                    diff: rhs.clone() - lhs.clone() + Expr::int(1),
                    is_le: true,
                    eq: false,
                },
                CmpOp::Eq | CmpOp::Ne => {
                    // Orient the difference deterministically so a == b
                    // and b == a canonicalize identically.
                    let d1 = lhs.clone() - rhs.clone();
                    let d2 = rhs.clone() - lhs.clone();
                    let diff = if d1.to_string() <= d2.to_string() {
                        d1
                    } else {
                        d2
                    };
                    CanonicalCmp {
                        diff,
                        is_le: false,
                        eq: *op == CmpOp::Eq,
                    }
                }
            };
            if !cs.contains(&canon) {
                cs.push(canon);
            }
        }
        cs.sort_by_key(|c| (c.diff.to_string(), c.is_le, c.eq));
        cs
    }
}

impl PartialEq for CheckExpr {
    fn eq(&self, other: &CheckExpr) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for CheckExpr {}

impl fmt::Display for CheckExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckExpr::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            CheckExpr::And(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// Error from [`parse_check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset of the offending token.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "check parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses the pragma syntax back into a [`CheckExpr`]:
/// `sum (<=|<|>=|>|==|!=) sum (&& …)*` with integer literals,
/// identifiers (a trailing `_max` denotes a post-loop symbol), `+ - *`,
/// unary minus and parentheses.
pub fn parse_check(src: &str) -> Result<CheckExpr, ParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let first = p.cmp()?;
    let mut cs = vec![first];
    loop {
        p.skip_ws();
        if p.eat(b"&&") {
            cs.push(p.cmp()?);
        } else {
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(CheckExpr::and(cs))
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &[u8]) -> bool {
        if self.src[self.pos..].starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn cmp(&mut self) -> Result<CheckExpr, ParseError> {
        let lhs = self.sum()?;
        self.skip_ws();
        let op = if self.eat(b"<=") {
            CmpOp::Le
        } else if self.eat(b">=") {
            CmpOp::Ge
        } else if self.eat(b"==") {
            CmpOp::Eq
        } else if self.eat(b"!=") {
            CmpOp::Ne
        } else if self.eat(b"<") {
            CmpOp::Lt
        } else if self.eat(b">") {
            CmpOp::Gt
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let rhs = self.sum()?;
        Ok(CheckExpr::Cmp { lhs, op, rhs })
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.product()?;
        loop {
            self.skip_ws();
            // `&&` must not be consumed as operators here.
            if self.src[self.pos..].starts_with(b"&&") {
                break;
            }
            if self.eat(b"+") {
                acc = acc + self.product()?;
            } else if self.eat(b"-") {
                acc = acc - self.product()?;
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn product(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.factor()?;
        loop {
            self.skip_ws();
            if self.eat(b"*") {
                acc = acc * self.factor()?;
            } else {
                break;
            }
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.eat(b"(") {
            let e = self.sum()?;
            self.skip_ws();
            if !self.eat(b")") {
                return Err(self.err("expected )"));
            }
            return Ok(e);
        }
        if self.eat(b"-") {
            return Ok(-self.factor()?);
        }
        let start = self.pos;
        if self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            let v: i64 = text.parse().map_err(|_| self.err("integer overflow"))?;
            return Ok(Expr::int(v));
        }
        if self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphabetic() || self.src[self.pos] == b'_')
        {
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let name = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            // Trailing `_max` is the paper's spelling of a post-loop value.
            return Ok(match name.strip_suffix("_max") {
                Some(base) if !base.is_empty() => Expr::post_max(base),
                _ => Expr::var(name),
            });
        }
        Err(self.err("expected integer, identifier or ("))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_syntax() {
        let c = CheckExpr::le(
            Expr::var("num_rownnz") - Expr::int(1),
            Expr::post_max("irownnz"),
        );
        assert_eq!(c.to_string(), "num_rownnz - 1 <= irownnz_max");
    }

    #[test]
    fn parse_round_trips() {
        for s in [
            "num_rownnz - 1 <= irownnz_max",
            "n_cols - 1 <= holder_max",
            "2*n + 3 < m_max && k >= 0",
            "a == b",
            "a != b - 1",
        ] {
            let c = parse_check(s).unwrap();
            let printed = c.to_string();
            let again = parse_check(&printed).unwrap();
            assert_eq!(c, again, "{s} vs {printed}");
        }
    }

    #[test]
    fn parse_classifies_post_max_symbols() {
        let c = parse_check("n - 1 <= irownnz_max").unwrap();
        let syms = c.free_syms();
        assert!(syms.contains(&Symbol::var("n")));
        assert!(syms.contains(&Symbol::post_max("irownnz")));
    }

    #[test]
    fn algebraically_equal_checks_are_equal() {
        let a = parse_check("-1 + n <= m").unwrap();
        let b = parse_check("n - 1 <= m").unwrap();
        assert_eq!(a, b);
        // `a < b` over the integers is `a <= b - 1`.
        let c = parse_check("n < m + 1").unwrap();
        let d = parse_check("n <= m").unwrap();
        assert_eq!(c, d);
        // Flipped comparison.
        let e = parse_check("m >= n").unwrap();
        let f = parse_check("n <= m").unwrap();
        assert_eq!(e, f);
        // Symmetric equality.
        let g = parse_check("a == b").unwrap();
        let h = parse_check("b == a").unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn different_checks_are_not_equal() {
        let a = parse_check("n <= m").unwrap();
        let b = parse_check("n <= m + 1").unwrap();
        assert_ne!(a, b);
        let c = parse_check("n == m").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn conjunction_dedups_and_sorts() {
        let a = parse_check("n - 1 <= m && -1 + n <= m").unwrap();
        assert_eq!(a.canonical().len(), 1);
        let b = parse_check("x <= y && n <= m").unwrap();
        let c = parse_check("n <= m && x <= y").unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_check("").is_err());
        assert!(parse_check("n <=").is_err());
        assert!(parse_check("n < m extra").is_err());
        assert!(parse_check("n # m").is_err());
        assert!(parse_check("(n < m").is_err());
    }
}
