//! The parallel index-array inspector.
//!
//! When compile-time analysis is inconclusive (or when defense-in-depth is
//! wanted at negligible cost), the monotonicity property the dependence
//! test relies on can be established by *inspecting the actual index
//! array at runtime* — the inspector half of classic inspector–executor
//! parallelization. One scan establishes both non-strict and strict
//! monotonicity (strict ⇒ injectivity, the gather/scatter requirement),
//! so a cached verdict serves either requirement.
//!
//! The scan itself is parallel: the array is cut into per-thread chunks,
//! each chunk verifies its interior adjacent pairs on the `omprt` pool,
//! and a serial boundary-fixup pass checks the chunk-joining pairs the
//! interior scans skipped.

use std::sync::atomic::{AtomicUsize, Ordering};
use subsub_failpoint as failpoint;
use subsub_omprt::{CancelToken, RegionError, Schedule, ThreadPool};

/// Monotonicity flavour a dependence-test pattern requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonotoneReq {
    /// Non-decreasing (segment patterns: disjoint `[B[i] : B[i+1])`).
    NonStrict,
    /// Strictly increasing, hence injective (gather/scatter patterns).
    Strict,
}

impl std::fmt::Display for MonotoneReq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonotoneReq::NonStrict => write!(f, "monotone"),
            MonotoneReq::Strict => write!(f, "strictly monotone"),
        }
    }
}

/// Result of inspecting one index array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonotoneVerdict {
    /// Adjacent pairs never decrease.
    pub nonstrict: bool,
    /// Adjacent pairs strictly increase.
    pub strict: bool,
    /// Index `i` of an element with `data[i-1] ⋠ data[i]` under the
    /// *non-strict* requirement, if any. The serial scan reports the
    /// globally first such index; the parallel scan reports the earliest
    /// *observed* one — once any chunk sees a non-strict violation the
    /// remaining chunks are cancelled (the verdict is already decided),
    /// so a later chunk's violation may be the one recorded.
    pub first_violation: Option<usize>,
    /// Number of elements inspected.
    pub len: usize,
}

impl MonotoneVerdict {
    /// Does the verdict satisfy a requirement?
    pub fn satisfies(&self, req: MonotoneReq) -> bool {
        match req {
            MonotoneReq::NonStrict => self.nonstrict,
            MonotoneReq::Strict => self.strict,
        }
    }
}

/// A kernel instance's view of one runtime index array, carrying the
/// identity + version the memo cache keys on.
#[derive(Debug, Clone, Copy)]
pub struct IndexArrayView<'a> {
    /// Array name as it appears in the analyzed source (`A_rownnz`).
    pub name: &'a str,
    /// The actual runtime contents.
    pub data: &'a [usize],
    /// Monotonically increasing write-version: the owner bumps it on every
    /// mutation, which is what invalidates cached verdicts.
    pub version: u64,
    /// The flavour the parallelization decision needs.
    pub required: MonotoneReq,
}

/// Below this length a serial scan beats the fork-join cost. Public so
/// adversarial harnesses can construct arrays that exercise the parallel
/// scan's chunk-boundary fixup.
pub const PAR_THRESHOLD: usize = 8192;

/// Pairs examined between early-exit checks of the wide scan. The inner
/// fold stays branch-free across one stride; a tripped stride triggers
/// a positioned second pass over at most this many pairs.
const SCAN_STRIDE: usize = 512;

/// Raw result of [`scan_pairs`]: the monotonicity flags of one slice's
/// adjacent pairs plus the slice-relative index of the first decrease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairScan {
    /// No adjacent pair decreases.
    pub nonstrict: bool,
    /// Every adjacent pair strictly increases.
    pub strict: bool,
    /// Smallest `i` with `data[i - 1] > data[i]`, if any.
    pub first_violation: Option<usize>,
}

/// The wide adjacent-pair scan every inspection path is built on.
///
/// The scan walks the slice in strides of [`SCAN_STRIDE`] pairs. Within
/// a stride a *single* comparison per pair is OR-accumulated branch-free
/// over the two offset views of the slice (`data[i-1]` vs `data[i]`) —
/// a clean zip-fold the loop vectorizer turns into packed unsigned
/// 64-bit compares (one `vpcmp` per lane-group, no nightly
/// `std::simd`). While no equality has been seen the fold asks
/// `x >= y`, which trips on a plateau *or* a decrease; a tripped stride
/// pays one positioned scalar pass that either returns the globally
/// first decrease or records the equality. Once an equality is known,
/// `strict` is settled and the fold degenerates to `x > y` — so even
/// plateau-heavy arrays run one vector compare per pair. The result is
/// identical to the naive early-exit loop: the *globally first*
/// decrease, and `strict` iff no pair was equal before it.
pub fn scan_pairs(data: &[usize]) -> PairScan {
    let n = data.len();
    let mut eq_seen = false;
    let mut pos = 1usize;
    while pos < n {
        let end = (pos + SCAN_STRIDE).min(n);
        let a = &data[pos - 1..end - 1];
        let b = &data[pos..end];
        if eq_seen {
            // Strictness already settled: only a decrease matters.
            let mut dec = false;
            for (x, y) in a.iter().zip(b) {
                dec |= x > y;
            }
            if !dec {
                pos = end;
                continue;
            }
        } else {
            // `x >= y` catches a decrease or an equality with one
            // compare; strictly increasing strides stay on this path.
            let mut ge = false;
            for (x, y) in a.iter().zip(b) {
                ge |= x >= y;
            }
            if !ge {
                pos = end;
                continue;
            }
        }
        // Positioned second pass: the stride tripped, classify it.
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            if x > y {
                return PairScan {
                    nonstrict: false,
                    strict: false,
                    first_violation: Some(pos + k),
                };
            }
            eq_seen |= x == y;
        }
        pos = end;
    }
    PairScan {
        nonstrict: true,
        strict: !eq_seen,
        first_violation: None,
    }
}

/// Inspects `data` for monotonicity. With a pool and a large enough array
/// the scan is chunk-parallel; the verdict is identical either way. A
/// faulted parallel scan (a panicking or dying worker) degrades to the
/// serial scan — inspection is read-only, so a rerun is always sound.
/// Use [`try_inspect_monotone`] to observe the fault instead.
pub fn inspect_monotone(data: &[usize], pool: Option<&ThreadPool>) -> MonotoneVerdict {
    try_inspect_monotone(data, pool).unwrap_or_else(|_| inspect_serial(data))
}

/// [`inspect_monotone`] that reports a faulted parallel scan instead of
/// silently rescuing it, so callers (the inspector cache, the guard's
/// retry ladder) can refuse to memoize a verdict that was never reached.
pub fn try_inspect_monotone(
    data: &[usize],
    pool: Option<&ThreadPool>,
) -> Result<MonotoneVerdict, RegionError> {
    match pool {
        Some(pool) if data.len() >= PAR_THRESHOLD => inspect_parallel(data, pool),
        _ => Ok(inspect_serial(data)),
    }
}

/// The unconditionally-serial scan; infallible, the ladder's last rung.
/// Built on the wide [`scan_pairs`] primitive, so it runs at
/// autovectorized throughput while reporting the same globally-first
/// violation index as the one-pair-per-iteration loop it replaced.
pub fn inspect_serial(data: &[usize]) -> MonotoneVerdict {
    let ps = scan_pairs(data);
    MonotoneVerdict {
        nonstrict: ps.nonstrict,
        strict: ps.strict,
        first_violation: ps.first_violation,
        len: data.len(),
    }
}

/// Block-monotone inspection: verdict for "monotone *within* blocks of
/// `b` elements", the periodic/block-monotone pattern of *Inductive Loop
/// Analysis* (arXiv 2511.06052). Pairs straddling a block boundary
/// (those at indices that are multiples of `b`) are exempt — a
/// block-periodic histogram restarts its key ramp at every block, and
/// within-block strictness is what licenses within-block parallelism
/// (distinct scatter targets inside each block).
///
/// `b == 0` (or `b >= data.len()`) degenerates to a single block —
/// identical to [`inspect_serial`]. For `b` a multiple of
/// [`crate::block::BLOCK_LEN`], the same verdict recombines in O(blocks)
/// from maintained summaries via
/// [`crate::block::BlockSummaries::block_verdict`]; this function is the
/// O(n) ground truth the summaries are checked against.
pub fn inspect_block_monotone(data: &[usize], b: usize) -> MonotoneVerdict {
    if b == 0 {
        return inspect_serial(data);
    }
    let mut eq = false;
    let mut first_violation = None;
    for (k, chunk) in data.chunks(b).enumerate() {
        let ps = scan_pairs(chunk);
        if !ps.nonstrict {
            first_violation = ps.first_violation.map(|i| k * b + i);
            break;
        }
        if !ps.strict {
            eq = true;
        }
    }
    MonotoneVerdict {
        nonstrict: first_violation.is_none(),
        strict: first_violation.is_none() && !eq,
        first_violation,
        len: data.len(),
    }
}

fn inspect_parallel(data: &[usize], pool: &ThreadPool) -> Result<MonotoneVerdict, RegionError> {
    let n = data.len();
    let threads = pool.threads().max(1);
    // A few chunks per thread so dynamic scheduling can absorb noise.
    let chunks = (threads * 4).min(n / 2).max(1);
    let chunk_len = n.div_ceil(chunks);
    // usize::MAX = "no violation seen"; fetch-min keeps the earliest.
    let nonstrict_viol = AtomicUsize::new(usize::MAX);
    let strict_viol = AtomicUsize::new(usize::MAX);
    // A non-strict violation settles the whole verdict (both flavours are
    // false), so the first chunk to find one cancels the rest of the scan
    // instead of letting every remaining chunk finish pointlessly.
    let cancel = CancelToken::new();
    pool.try_parallel_for_cancel(chunks, Schedule::Dynamic { chunk: 1 }, &cancel, |c| {
        // Chaos site: a Panic arm here makes this chunk's job unwind,
        // which surfaces as `RegionError::Panicked` below — the verdict
        // must then be treated as never reached.
        failpoint::hit("rtcheck.inspect.chunk");
        let start = c * chunk_len;
        let end = ((c + 1) * chunk_len).min(n);
        if start >= end {
            return;
        }
        // Interior pairs only, through the wide scan; pairs straddling
        // chunk joins are fixed up below.
        let ps = scan_pairs(&data[start..end]);
        if let Some(rel) = ps.first_violation {
            nonstrict_viol.fetch_min(start + rel, Ordering::Relaxed);
            strict_viol.fetch_min(start + rel, Ordering::Relaxed);
            cancel.cancel();
        } else if !ps.strict {
            // Only the *presence* of an equality matters for the strict
            // flag (no index is ever reported for it), so the chunk
            // start stands in as the fetch-min marker.
            strict_viol.fetch_min(start.max(1), Ordering::Relaxed);
        }
    })?;
    // Cross-chunk boundary fixup: the pair (chunk_end - 1, chunk_end) of
    // every join was inspected by neither side.
    for c in 1..chunks {
        let i = c * chunk_len;
        if i == 0 || i >= n {
            continue;
        }
        if data[i - 1] > data[i] {
            nonstrict_viol.fetch_min(i, Ordering::Relaxed);
            strict_viol.fetch_min(i, Ordering::Relaxed);
        } else if data[i - 1] == data[i] {
            strict_viol.fetch_min(i, Ordering::Relaxed);
        }
    }
    let nv = nonstrict_viol.load(Ordering::Relaxed);
    let sv = strict_viol.load(Ordering::Relaxed);
    Ok(MonotoneVerdict {
        nonstrict: nv == usize::MAX,
        strict: sv == usize::MAX,
        first_violation: (nv != usize::MAX).then_some(nv),
        len: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_verdicts() {
        let v = inspect_serial(&[0, 1, 2, 5, 9]);
        assert!(v.strict && v.nonstrict && v.first_violation.is_none());
        let v = inspect_serial(&[0, 1, 1, 2]);
        assert!(!v.strict && v.nonstrict);
        let v = inspect_serial(&[0, 3, 2]);
        assert!(!v.strict && !v.nonstrict);
        assert_eq!(v.first_violation, Some(2));
        // Trivial arrays are vacuously strict.
        assert!(inspect_serial(&[]).strict);
        assert!(inspect_serial(&[7]).strict);
    }

    #[test]
    fn satisfies_maps_requirements() {
        let v = inspect_serial(&[0, 1, 1, 2]);
        assert!(v.satisfies(MonotoneReq::NonStrict));
        assert!(!v.satisfies(MonotoneReq::Strict));
    }

    #[test]
    fn parallel_matches_serial_on_large_arrays() {
        let pool = ThreadPool::new(4);
        let n = PAR_THRESHOLD * 2 + 123;
        // Strict.
        let data: Vec<usize> = (0..n).collect();
        assert_eq!(inspect_monotone(&data, Some(&pool)), inspect_serial(&data));
        // Plateau (non-strict only).
        let mut plateau = data.clone();
        plateau[n / 2] = plateau[n / 2 - 1];
        let got = inspect_monotone(&plateau, Some(&pool));
        assert!(got.nonstrict && !got.strict);
        // Violation (neither), at an arbitrary position.
        let mut broken = data.clone();
        broken[n / 3] = 0;
        let got = inspect_monotone(&broken, Some(&pool));
        let want = inspect_serial(&broken);
        assert_eq!(got.nonstrict, want.nonstrict);
        assert_eq!(got.strict, want.strict);
        assert!(got.first_violation.is_some());
    }

    #[test]
    fn boundary_violation_is_caught() {
        // Construct a violation exactly at a chunk join for a 4-thread
        // pool: chunks = 16, chunk_len = n/16.
        let pool = ThreadPool::new(4);
        let n = PAR_THRESHOLD * 2;
        let chunk_len = n.div_ceil(16);
        let mut data: Vec<usize> = (0..n).map(|i| i * 2).collect();
        data[chunk_len] = data[chunk_len - 1] - 1; // only the join pair decreases
        let v = inspect_monotone(&data, Some(&pool));
        assert!(!v.nonstrict, "boundary fixup must catch the join violation");
    }

    #[test]
    fn cancelled_scan_still_reports_a_correct_verdict() {
        // A violation in the very first chunk cancels the rest of the
        // parallel scan; the verdict must nonetheless be decided and a
        // violating index reported.
        let pool = ThreadPool::new(4);
        let n = PAR_THRESHOLD * 8;
        let mut data: Vec<usize> = (0..n).collect();
        data[1] = usize::MAX; // data[1] > data[2]: violation at i = 2
        let v = inspect_monotone(&data, Some(&pool));
        assert!(!v.nonstrict && !v.strict);
        let i = v.first_violation.expect("violation reported");
        assert!(
            i < n && data[i - 1] > data[i],
            "reported index is a real violation"
        );
    }

    #[test]
    fn small_arrays_skip_the_pool() {
        // Passing a pool but a small array must still produce the serial
        // verdict (and not deadlock on a 1-thread pool).
        let pool = ThreadPool::new(1);
        let v = inspect_monotone(&[3, 1, 2], Some(&pool));
        assert!(!v.nonstrict);
        assert_eq!(v.first_violation, Some(1));
    }

    #[test]
    fn degenerate_inputs_serial_and_pooled_agree() {
        // Adversarial degenerate shapes: the serial and pooled scans must
        // agree on the (nonstrict, strict) flags for every one of them.
        // Violation indices may differ (cancellation semantics), but any
        // reported index must point at a real violating pair.
        let pool = ThreadPool::new(3);
        let cases: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![usize::MAX],
            vec![usize::MAX, usize::MAX],
            vec![usize::MAX - 1, usize::MAX],
            vec![usize::MAX, 0],
            vec![0, usize::MAX],
            vec![7; 17],
            vec![7; PAR_THRESHOLD + 5],
            (0..PAR_THRESHOLD + 9).map(|i| i / 2).collect(),
            (0..PAR_THRESHOLD + 9)
                .map(|i| usize::MAX - (PAR_THRESHOLD + 9) + i)
                .collect(),
        ];
        for data in &cases {
            let serial = inspect_serial(data);
            let pooled = inspect_monotone(data, Some(&pool));
            assert_eq!(
                serial.nonstrict,
                pooled.nonstrict,
                "{:?}…",
                &data[..data.len().min(4)]
            );
            assert_eq!(
                serial.strict,
                pooled.strict,
                "{:?}…",
                &data[..data.len().min(4)]
            );
            for v in [&serial, &pooled] {
                if let Some(i) = v.first_violation {
                    assert!(i > 0 && i < data.len() && data[i - 1] > data[i]);
                }
            }
        }
    }

    #[test]
    fn vacuous_inputs_are_strict_for_both_paths() {
        let pool = ThreadPool::new(2);
        for data in [vec![], vec![42]] {
            for v in [inspect_serial(&data), inspect_monotone(&data, Some(&pool))] {
                assert!(v.strict && v.nonstrict && v.first_violation.is_none());
                assert_eq!(v.len, data.len());
            }
        }
    }

    #[test]
    fn all_equal_plateau_through_the_parallel_path() {
        // A plateau long enough to engage the chunked scan: every chunk
        // AND every chunk-join pair is an equality — nonstrict only.
        let pool = ThreadPool::new(4);
        let data = vec![3; PAR_THRESHOLD * 2];
        let v = inspect_monotone(&data, Some(&pool));
        assert!(v.nonstrict && !v.strict && v.first_violation.is_none());
    }

    #[test]
    fn max_entries_do_not_wrap_the_parallel_scan() {
        // Entries adjacent to usize::MAX must not overflow any chunk-size
        // or comparison arithmetic in the pooled path.
        let pool = ThreadPool::new(4);
        let n = PAR_THRESHOLD + 1;
        let mut data: Vec<usize> = (0..n).map(|i| usize::MAX - n + i).collect();
        assert!(inspect_monotone(&data, Some(&pool)).strict);
        data[n / 2] = usize::MAX; // plateau at MAX further right, then decrease
        let v = inspect_monotone(&data, Some(&pool));
        assert_eq!(v.nonstrict, inspect_serial(&data).nonstrict);
    }
}
