//! The ingestion trust boundary for index arrays.
//!
//! Everything downstream of this module — the inspector, the memo cache,
//! the guard's tamper gate, and ultimately the `unsafe` gather/scatter in
//! the kernels — *assumes* that every subscript is a valid index into the
//! target array. That assumption is exactly what a hostile (or merely
//! buggy) input can break: an out-of-range entry behind `unsafe` indexing
//! is undefined behaviour, not a wrong answer.
//!
//! [`ValidatedIndexArray`] is the one sanctioned path from raw
//! `&[usize]` data (files, generators, benchmark datasets) into
//! inspection and dispatch:
//!
//! * **ingestion** validates every entry against the target array's
//!   domain and rejects with a structured [`ValidationError`] (which the
//!   guard maps onto [`crate::ExecError::InvalidIndexArray`] — a serial
//!   fallback, never UB);
//! * **mutation** goes through [`ValidatedIndexArray::mutate`], which
//!   re-validates, bumps the write-version (invalidating cached
//!   verdicts) and refreshes the content checksum; a mutation that would
//!   leave the array out of domain is rolled back;
//! * **verification** ([`ValidatedIndexArray::verify`]) re-checks the
//!   checksum and domain, catching out-of-band writers that bypassed the
//!   boundary (the hostile-writer model of the PR 3 tamper tests).
//!
//! The array also carries a [`Provenance`] tag so a rejection or a
//! divergence report can say *where* the bytes came from.

use crate::inspect::{IndexArrayView, MonotoneReq};
use std::fmt;

/// Where an index array's contents came from, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// Produced by a deterministic generator (datasets, fuzzers).
    Generated {
        /// The generator seed, for reproduction.
        seed: u64,
    },
    /// Materialized from a named benchmark dataset.
    Dataset {
        /// Dataset name (e.g. `"MATRIX2"`, `"test"`).
        name: String,
    },
    /// Arbitrary external input (file, network, caller-supplied slice).
    Untrusted {
        /// Free-form description of the source.
        source: String,
    },
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Generated { seed } => write!(f, "generated (seed {seed})"),
            Provenance::Dataset { name } => write!(f, "dataset {name}"),
            Provenance::Untrusted { source } => write!(f, "untrusted ({source})"),
        }
    }
}

/// Why ingestion (or re-verification) rejected an index array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An entry indexes past the target array's domain.
    OutOfDomain {
        /// The array's declared name.
        array: String,
        /// Position of the offending entry.
        index: usize,
        /// The offending subscript value.
        value: usize,
        /// Exclusive upper bound the entry had to stay below.
        domain: usize,
    },
    /// The content checksum does not match the last validated state: a
    /// writer mutated the data without going through the trust boundary.
    ChecksumMismatch {
        /// The array's declared name.
        array: String,
    },
}

impl ValidationError {
    /// The name of the array the error is about.
    pub fn array(&self) -> &str {
        match self {
            ValidationError::OutOfDomain { array, .. } => array,
            ValidationError::ChecksumMismatch { array } => array,
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OutOfDomain {
                array,
                index,
                value,
                domain,
            } => write!(
                f,
                "{array}[{index}] = {value} is outside the target domain [0, {domain})"
            ),
            ValidationError::ChecksumMismatch { array } => write!(
                f,
                "{array} content checksum drifted since validation (out-of-band writer)"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<ValidationError> for crate::error::ExecError {
    fn from(e: ValidationError) -> crate::error::ExecError {
        crate::error::ExecError::InvalidIndexArray {
            array: e.array().to_string(),
            detail: e.to_string(),
        }
    }
}

/// An index array that passed domain validation at ingestion and is
/// tracked (version + checksum) across mutations. See the module docs.
#[derive(Debug, Clone)]
pub struct ValidatedIndexArray {
    name: String,
    data: Vec<usize>,
    /// Exclusive upper bound every entry must stay below: the length of
    /// the target array the subscripts index into.
    domain: usize,
    version: u64,
    checksum: u64,
    provenance: Provenance,
}

/// FNV-1a over the entries plus the length; cheap, deterministic, and
/// sensitive to any single-entry flip — exactly what the out-of-band
/// writer check needs (this is an integrity fingerprint, not a
/// cryptographic MAC).
fn fingerprint(data: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (data.len() as u64);
    for &v in data {
        for b in (v as u64).to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

fn scan_domain(name: &str, data: &[usize], domain: usize) -> Result<(), ValidationError> {
    if let Some((index, &value)) = data.iter().enumerate().find(|&(_, &v)| v >= domain) {
        return Err(ValidationError::OutOfDomain {
            array: name.to_string(),
            index,
            value,
            domain,
        });
    }
    Ok(())
}

impl ValidatedIndexArray {
    /// Validates `data` against `domain` (the exclusive bound its entries
    /// index into) and takes ownership. The only constructor: there is no
    /// way to hold a `ValidatedIndexArray` with an out-of-domain entry.
    pub fn ingest(
        name: impl Into<String>,
        data: Vec<usize>,
        domain: usize,
        provenance: Provenance,
    ) -> Result<ValidatedIndexArray, ValidationError> {
        let name = name.into();
        scan_domain(&name, &data, domain)?;
        let checksum = fingerprint(&data);
        Ok(ValidatedIndexArray {
            name,
            data,
            domain,
            version: 0,
            checksum,
            provenance,
        })
    }

    /// The array's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated contents.
    pub fn data(&self) -> &[usize] {
        &self.data
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The exclusive domain bound entries were validated against.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Current write-version (bumped on every successful mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The content checksum recorded at the last validation point. Only
    /// trustworthy alongside a fresh [`ValidatedIndexArray::verify`]:
    /// verify recomputes the fingerprint of the *current* contents and
    /// fails on drift, so `verify()? ; checksum()` yields a fingerprint
    /// that provably describes the data as it is now. The service-layer
    /// verdict cache keys on this (checksum + provenance + inspector
    /// kind), which is what lets verdicts be shared across requests —
    /// and across processes via warm-start snapshots — without ever
    /// trusting a verdict for content that drifted.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// A stable 64-bit tag of the provenance, for content-addressed
    /// cache keys: equal provenance renders equal tags across processes
    /// (FNV-1a over the display form).
    pub fn provenance_tag(&self) -> u64 {
        let rendered = self.provenance.to_string();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in rendered.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    /// Where the contents came from.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// An inspection/dispatch view carrying the identity and version the
    /// memo cache and the guard's tamper gate key on.
    pub fn view(&self, required: MonotoneReq) -> IndexArrayView<'_> {
        IndexArrayView {
            name: &self.name,
            data: &self.data,
            version: self.version,
            required,
        }
    }

    /// Mutates the contents through the trust boundary: applies `f`,
    /// re-validates the domain, bumps the version and refreshes the
    /// checksum. A mutation that would leave an out-of-domain entry is
    /// rolled back (the array stays in its previous validated state) and
    /// the error is returned.
    ///
    /// Note the boundary validates *memory safety* (domain), not the
    /// dependence property: a mutation may freely break monotonicity —
    /// detecting that is the inspector's job, and the version bump
    /// guarantees it re-runs.
    pub fn mutate(&mut self, f: impl FnOnce(&mut Vec<usize>)) -> Result<(), ValidationError> {
        let snapshot = self.data.clone();
        f(&mut self.data);
        if let Err(e) = scan_domain(&self.name, &self.data, self.domain) {
            self.data = snapshot;
            return Err(e);
        }
        self.version += 1;
        self.checksum = fingerprint(&self.data);
        Ok(())
    }

    /// Re-verifies the integrity of the contents: the checksum must match
    /// the last validated state and every entry must still be in domain.
    /// Fails when a writer mutated the data without going through
    /// [`ValidatedIndexArray::mutate`] — the hostile-writer scenario the
    /// guard must refuse to dispatch on.
    pub fn verify(&self) -> Result<(), ValidationError> {
        if fingerprint(&self.data) != self.checksum {
            return Err(ValidationError::ChecksumMismatch {
                array: self.name.clone(),
            });
        }
        scan_domain(&self.name, &self.data, self.domain)
    }

    /// Raw mutable access that **bypasses** version and checksum
    /// bookkeeping, modelling a writer that ignores the trust boundary
    /// (the tamper scenarios of the robustness suites). A later
    /// [`ValidatedIndexArray::verify`] fails with
    /// [`ValidationError::ChecksumMismatch`]. Never use this on a real
    /// mutation path — that is what [`ValidatedIndexArray::mutate`] is
    /// for.
    pub fn bypass_validation_mut(&mut self) -> &mut [usize] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExecError;

    fn untrusted() -> Provenance {
        Provenance::Untrusted {
            source: "test".into(),
        }
    }

    #[test]
    fn in_domain_data_is_ingested() {
        let a = ValidatedIndexArray::ingest("b", vec![0, 3, 7, 9], 10, untrusted()).unwrap();
        assert_eq!(a.data(), &[0, 3, 7, 9]);
        assert_eq!((a.len(), a.domain(), a.version()), (4, 10, 0));
        assert!(a.verify().is_ok());
    }

    #[test]
    fn out_of_domain_entry_is_rejected_with_location() {
        let err = ValidatedIndexArray::ingest("b", vec![0, 3, 10, 9], 10, untrusted())
            .expect_err("entry 10 is out of [0, 10)");
        assert_eq!(
            err,
            ValidationError::OutOfDomain {
                array: "b".into(),
                index: 2,
                value: 10,
                domain: 10,
            }
        );
        // The boundary value domain-1 is fine; usize::MAX never is.
        assert!(ValidatedIndexArray::ingest("b", vec![9], 10, untrusted()).is_ok());
        assert!(ValidatedIndexArray::ingest("b", vec![usize::MAX], 10, untrusted()).is_err());
    }

    #[test]
    fn empty_domain_rejects_any_entry_but_accepts_empty_data() {
        assert!(ValidatedIndexArray::ingest("b", vec![], 0, untrusted()).is_ok());
        assert!(ValidatedIndexArray::ingest("b", vec![0], 0, untrusted()).is_err());
    }

    #[test]
    fn mutation_bumps_version_and_stays_verified() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2], 10, untrusted()).unwrap();
        a.mutate(|d| d[1] = 5).unwrap();
        assert_eq!((a.version(), a.data()[1]), (1, 5));
        assert!(a.verify().is_ok());
    }

    #[test]
    fn invalid_mutation_is_rolled_back() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2], 10, untrusted()).unwrap();
        let err = a.mutate(|d| d[0] = 99).expect_err("99 out of [0, 10)");
        assert!(matches!(
            err,
            ValidationError::OutOfDomain { value: 99, .. }
        ));
        // Rolled back: previous validated state, version unchanged.
        assert_eq!(a.data(), &[0, 1, 2]);
        assert_eq!(a.version(), 0);
        assert!(a.verify().is_ok());
    }

    #[test]
    fn bypassing_writer_is_caught_by_verify() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2], 10, untrusted()).unwrap();
        a.bypass_validation_mut()[2] = 3; // in-domain, but unannounced
        assert_eq!(
            a.verify(),
            Err(ValidationError::ChecksumMismatch { array: "b".into() })
        );
    }

    #[test]
    fn view_carries_identity_and_version() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1], 10, untrusted()).unwrap();
        let v = a.view(MonotoneReq::Strict);
        assert_eq!((v.name, v.version, v.data.len()), ("b", 0, 2));
        a.mutate(|d| d.push(4)).unwrap();
        assert_eq!(a.view(MonotoneReq::Strict).version, 1);
    }

    #[test]
    fn validation_error_maps_into_the_exec_ladder() {
        let err = ValidatedIndexArray::ingest("A_rownnz", vec![5], 3, untrusted()).unwrap_err();
        let exec: ExecError = err.into();
        match &exec {
            ExecError::InvalidIndexArray { array, detail } => {
                assert_eq!(array, "A_rownnz");
                assert!(detail.contains("outside the target domain"), "{detail}");
            }
            other => panic!("wrong mapping: {other:?}"),
        }
        assert!(!exec.transient(), "a rejected input is not retryable");
    }

    #[test]
    fn fingerprint_is_length_and_content_sensitive() {
        assert_ne!(fingerprint(&[0, 1]), fingerprint(&[0, 1, 0]));
        assert_ne!(fingerprint(&[0, 1]), fingerprint(&[1, 0]));
        assert_eq!(fingerprint(&[7, 8, 9]), fingerprint(&[7, 8, 9]));
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
    }
}
