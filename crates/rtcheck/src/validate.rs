//! The ingestion trust boundary for index arrays.
//!
//! Everything downstream of this module — the inspector, the memo cache,
//! the guard's tamper gate, and ultimately the `unsafe` gather/scatter in
//! the kernels — *assumes* that every subscript is a valid index into the
//! target array. That assumption is exactly what a hostile (or merely
//! buggy) input can break: an out-of-range entry behind `unsafe` indexing
//! is undefined behaviour, not a wrong answer.
//!
//! [`ValidatedIndexArray`] is the one sanctioned path from raw
//! `&[usize]` data (files, generators, benchmark datasets) into
//! inspection and dispatch:
//!
//! * **ingestion** validates every entry against the target array's
//!   domain and rejects with a structured [`ValidationError`] (which the
//!   guard maps onto [`crate::ExecError::InvalidIndexArray`] — a serial
//!   fallback, never UB);
//! * **mutation** goes through [`ValidatedIndexArray::mutate`] (an
//!   arbitrary whole-vector edit, O(n)) or the preferred
//!   [`ValidatedIndexArray::mutate_range`] (a ranged in-place edit,
//!   O(Δ) in the touched window): both re-validate, bump the
//!   write-version (invalidating cached verdicts) and refresh the
//!   content checksum, and both roll back a mutation that would leave
//!   the array out of domain;
//! * **verification** ([`ValidatedIndexArray::verify`]) re-checks the
//!   checksum and domain *from the raw data*, catching out-of-band
//!   writers that bypassed the boundary (the hostile-writer model of
//!   the PR 3 tamper tests).
//!
//! Since PR 7 the boundary also maintains per-block summaries
//! ([`crate::block::BlockSummaries`]) in lockstep with the contents:
//! ingestion builds them in the same pass as domain validation and the
//! checksum, and `mutate_range` rescans only the dirty blocks. That is
//! what makes [`ValidatedIndexArray::summary_verdict`] an O(blocks)
//! whole-array monotonicity verdict — sound exactly because every
//! sanctioned write path refreshes the summaries atomically with the
//! version bump, and because `verify()` still recomputes the checksum
//! from the raw bytes, so a bypassing writer is caught before any
//! summary-derived verdict can be trusted.
//!
//! The array also carries a [`Provenance`] tag so a rejection or a
//! divergence report can say *where* the bytes came from.

use crate::block::{first_out_of_domain, BlockSummaries};
use crate::inspect::{IndexArrayView, MonotoneReq, MonotoneVerdict};
use std::fmt;
use std::ops::Range;
use subsub_telemetry as telemetry;
use subsub_telemetry::Phase;

/// Where an index array's contents came from, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// Produced by a deterministic generator (datasets, fuzzers).
    Generated {
        /// The generator seed, for reproduction.
        seed: u64,
    },
    /// Materialized from a named benchmark dataset.
    Dataset {
        /// Dataset name (e.g. `"MATRIX2"`, `"test"`).
        name: String,
    },
    /// Arbitrary external input (file, network, caller-supplied slice).
    Untrusted {
        /// Free-form description of the source.
        source: String,
    },
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Generated { seed } => write!(f, "generated (seed {seed})"),
            Provenance::Dataset { name } => write!(f, "dataset {name}"),
            Provenance::Untrusted { source } => write!(f, "untrusted ({source})"),
        }
    }
}

/// Why ingestion (or re-verification) rejected an index array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An entry indexes past the target array's domain.
    OutOfDomain {
        /// The array's declared name.
        array: String,
        /// Position of the offending entry.
        index: usize,
        /// The offending subscript value.
        value: usize,
        /// Exclusive upper bound the entry had to stay below.
        domain: usize,
    },
    /// The content checksum does not match the last validated state: a
    /// writer mutated the data without going through the trust boundary.
    ChecksumMismatch {
        /// The array's declared name.
        array: String,
    },
}

impl ValidationError {
    /// The name of the array the error is about.
    pub fn array(&self) -> &str {
        match self {
            ValidationError::OutOfDomain { array, .. } => array,
            ValidationError::ChecksumMismatch { array } => array,
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OutOfDomain {
                array,
                index,
                value,
                domain,
            } => write!(
                f,
                "{array}[{index}] = {value} is outside the target domain [0, {domain})"
            ),
            ValidationError::ChecksumMismatch { array } => write!(
                f,
                "{array} content checksum drifted since validation (out-of-band writer)"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<ValidationError> for crate::error::ExecError {
    fn from(e: ValidationError) -> crate::error::ExecError {
        crate::error::ExecError::InvalidIndexArray {
            array: e.array().to_string(),
            detail: e.to_string(),
        }
    }
}

/// An index array that passed domain validation at ingestion and is
/// tracked (version + checksum) across mutations. See the module docs.
#[derive(Debug, Clone)]
pub struct ValidatedIndexArray {
    name: String,
    data: Vec<usize>,
    /// Exclusive upper bound every entry must stay below: the length of
    /// the target array the subscripts index into.
    domain: usize,
    version: u64,
    checksum: u64,
    provenance: Provenance,
    /// Per-block summaries, kept in lockstep with `data` by every
    /// sanctioned write path. `checksum` is always
    /// `summaries.checksum()` — the `subsub-fingerprint/v2` combined
    /// value (an integrity fingerprint, not a cryptographic MAC).
    summaries: BlockSummaries,
}

fn out_of_domain(name: &str, data: &[usize], index: usize, domain: usize) -> ValidationError {
    ValidationError::OutOfDomain {
        array: name.to_string(),
        index,
        value: data[index],
        domain,
    }
}

impl ValidatedIndexArray {
    /// Validates `data` against `domain` (the exclusive bound its entries
    /// index into) and takes ownership. The only constructor: there is no
    /// way to hold a `ValidatedIndexArray` with an out-of-domain entry.
    ///
    /// Ingestion is a fused single pass: the domain scan, the content
    /// fingerprint, and the per-block monotonicity summaries are all
    /// computed block-by-block over one traversal of the data, so the
    /// bytes cross the memory bus once instead of twice. An
    /// out-of-domain entry is reported at its first offending index —
    /// the same location semantics the old two-pass scan had.
    pub fn ingest(
        name: impl Into<String>,
        data: Vec<usize>,
        domain: usize,
        provenance: Provenance,
    ) -> Result<ValidatedIndexArray, ValidationError> {
        let name = name.into();
        let summaries = BlockSummaries::build(&data, domain)
            .map_err(|index| out_of_domain(&name, &data, index, domain))?;
        let checksum = summaries.checksum();
        Ok(ValidatedIndexArray {
            name,
            data,
            domain,
            version: 0,
            checksum,
            provenance,
            summaries,
        })
    }

    /// The array's declared name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The validated contents.
    pub fn data(&self) -> &[usize] {
        &self.data
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The exclusive domain bound entries were validated against.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Current write-version (bumped on every successful mutation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The content checksum recorded at the last validation point. Only
    /// trustworthy alongside a fresh [`ValidatedIndexArray::verify`]:
    /// verify recomputes the fingerprint of the *current* contents and
    /// fails on drift, so `verify()? ; checksum()` yields a fingerprint
    /// that provably describes the data as it is now. The service-layer
    /// verdict cache keys on this (checksum + provenance + inspector
    /// kind), which is what lets verdicts be shared across requests —
    /// and across processes via warm-start snapshots — without ever
    /// trusting a verdict for content that drifted.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// A stable 64-bit tag of the provenance, for content-addressed
    /// cache keys: equal provenance renders equal tags across processes
    /// (FNV-1a over the display form).
    pub fn provenance_tag(&self) -> u64 {
        let rendered = self.provenance.to_string();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in rendered.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0100_0000_01b3);
        }
        h
    }

    /// Where the contents came from.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }

    /// An inspection/dispatch view carrying the identity and version the
    /// memo cache and the guard's tamper gate key on.
    pub fn view(&self, required: MonotoneReq) -> IndexArrayView<'_> {
        IndexArrayView {
            name: &self.name,
            data: &self.data,
            version: self.version,
            required,
        }
    }

    /// Mutates the contents through the trust boundary with an arbitrary
    /// whole-vector edit (the closure may grow, shrink, or reorder the
    /// data): applies `f`, re-validates the domain, bumps the version and
    /// refreshes the checksum and block summaries. A mutation that would
    /// leave an out-of-domain entry is rolled back (the array stays in
    /// its previous validated state) and the error is returned.
    ///
    /// This is the *structural* slow path: rolling back an arbitrary
    /// `FnOnce(&mut Vec)` requires a full snapshot, so the call is O(n)
    /// no matter how small the edit. Writes that stay within a known
    /// window should use [`ValidatedIndexArray::mutate_range`], which
    /// snapshots, validates, and rescans only that window.
    ///
    /// Note the boundary validates *memory safety* (domain), not the
    /// dependence property: a mutation may freely break monotonicity —
    /// detecting that is the inspector's job, and the version bump
    /// guarantees it re-runs.
    pub fn mutate(&mut self, f: impl FnOnce(&mut Vec<usize>)) -> Result<(), ValidationError> {
        let snapshot = self.data.clone();
        f(&mut self.data);
        match BlockSummaries::build(&self.data, self.domain) {
            Err(index) => {
                let err = out_of_domain(&self.name, &self.data, index, self.domain);
                self.data = snapshot;
                Err(err)
            }
            Ok(summaries) => {
                self.version += 1;
                self.checksum = summaries.checksum();
                self.summaries = summaries;
                Ok(())
            }
        }
    }

    /// Mutates `data[range]` in place through the trust boundary, paying
    /// O(Δ + blocks) instead of O(n): only the touched window is
    /// snapshotted for rollback and re-validated against the domain,
    /// only the blocks overlapping it are rescanned, and the whole-array
    /// checksum and verdict are re-derived by recombining summaries. A
    /// single-element write into a 1 Mi-element array costs one 4 Ki
    /// block rescan plus an O(256) recombine.
    ///
    /// The closure sees exactly `&mut data[range]` — it cannot write
    /// outside the declared window, which is what makes the dirty-window
    /// bookkeeping sound: every untouched block's summary provably still
    /// describes its contents. A mutation that would leave an
    /// out-of-domain entry in the window is rolled back and reported at
    /// its first offending (absolute) index.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds or inverted, like slice
    /// indexing would.
    pub fn mutate_range(
        &mut self,
        range: Range<usize>,
        f: impl FnOnce(&mut [usize]),
    ) -> Result<(), ValidationError> {
        let _span = telemetry::span_labeled(Phase::Reinspect, &self.name);
        let (lo, hi) = (range.start, range.end);
        assert!(
            lo <= hi && hi <= self.data.len(),
            "mutate_range {lo}..{hi} out of bounds for length {}",
            self.data.len()
        );
        let snapshot = self.data[lo..hi].to_vec();
        f(&mut self.data[lo..hi]);
        if let Some(rel) = first_out_of_domain(&self.data[lo..hi], self.domain) {
            let err = out_of_domain(&self.name, &self.data, lo + rel, self.domain);
            self.data[lo..hi].copy_from_slice(&snapshot);
            return Err(err);
        }
        self.version += 1;
        self.summaries.rescan(&self.data, lo..hi);
        self.checksum = self.summaries.checksum();
        Ok(())
    }

    /// The whole-array monotonicity verdict derived from the block
    /// summaries in O(blocks) — no element is re-read. Identical
    /// (including the first-violation index) to running
    /// [`crate::inspect_serial`] over the current contents, because every
    /// sanctioned write path keeps the summaries in lockstep with the
    /// data. Like [`ValidatedIndexArray::checksum`], it describes the
    /// *last validated state*: callers that must defend against
    /// bypassing writers pair it with a fresh
    /// [`ValidatedIndexArray::verify`], which recomputes from raw data.
    pub fn summary_verdict(&self) -> MonotoneVerdict {
        self.summaries.verdict()
    }

    /// The per-block summaries backing [`summary_verdict`]
    /// (read-only; the boundary owns their maintenance).
    ///
    /// [`summary_verdict`]: ValidatedIndexArray::summary_verdict
    pub fn summaries(&self) -> &BlockSummaries {
        &self.summaries
    }

    /// Re-verifies the integrity of the contents *from the raw data*:
    /// the checksum must match the last validated state and every entry
    /// must still be in domain. Fails when a writer mutated the data
    /// without going through [`ValidatedIndexArray::mutate`] /
    /// [`ValidatedIndexArray::mutate_range`] — the hostile-writer
    /// scenario the guard must refuse to dispatch on. Deliberately O(n):
    /// this is the tamper gate, and it never trusts the summaries it is
    /// being asked to vouch for.
    pub fn verify(&self) -> Result<(), ValidationError> {
        if BlockSummaries::build_unchecked(&self.data).checksum() != self.checksum {
            return Err(ValidationError::ChecksumMismatch {
                array: self.name.clone(),
            });
        }
        match first_out_of_domain(&self.data, self.domain) {
            Some(index) => Err(out_of_domain(&self.name, &self.data, index, self.domain)),
            None => Ok(()),
        }
    }

    /// Raw mutable access that **bypasses** version and checksum
    /// bookkeeping, modelling a writer that ignores the trust boundary
    /// (the tamper scenarios of the robustness suites). A later
    /// [`ValidatedIndexArray::verify`] fails with
    /// [`ValidationError::ChecksumMismatch`]. Never use this on a real
    /// mutation path — that is what [`ValidatedIndexArray::mutate`] is
    /// for.
    pub fn bypass_validation_mut(&mut self) -> &mut [usize] {
        &mut self.data
    }
}

/// Verdict for a two-level (composed) indirection `i ↦ outer[inner[i]]`
/// — the `y[ind1[ind2[j]]]` pattern of the precursor paper
/// (arXiv 1911.05839).
///
/// The composition rule: a monotone map of a monotone sequence is
/// monotone, and an injective map of pairwise-distinct values stays
/// pairwise distinct — *provided* every inner value lands inside the
/// range on which the outer array's property holds. The trust boundary
/// makes that domain premise a static fact: `inner` was ingested with a
/// domain bound, so `inner.domain() <= outer.len()` proves every
/// composed lookup is in range without re-reading a single element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComposedVerdict {
    /// Per-level verdict of the inner (first-applied) array.
    pub inner: MonotoneVerdict,
    /// Per-level verdict of the outer array.
    pub outer: MonotoneVerdict,
    /// Every validated inner value is a valid subscript into the outer
    /// array (`inner.domain() <= outer.len()`).
    pub domain_chained: bool,
    /// `i ↦ outer[inner[i]]` never decreases.
    pub nonstrict: bool,
    /// `i ↦ outer[inner[i]]` strictly increases — hence the composed
    /// subscripts are pairwise distinct (the license for a parallel
    /// scatter through the composition).
    pub strict: bool,
}

impl ComposedVerdict {
    /// True when the composition satisfies `req`.
    pub fn satisfies(&self, req: MonotoneReq) -> bool {
        match req {
            MonotoneReq::NonStrict => self.nonstrict,
            MonotoneReq::Strict => self.strict,
        }
    }
}

/// Validates the two-level composition `outer[inner[·]]` from maintained
/// block summaries — O(blocks), no element re-read — so the O(Δ)
/// re-inspection economics of [`ValidatedIndexArray::mutate_range`]
/// extend to composed subscripts: a ranged edit to either level rescans
/// only its dirty blocks, and the composed verdict recombines from
/// summaries.
///
/// Like [`ValidatedIndexArray::summary_verdict`], this describes the
/// *last validated state* of both arrays; paranoid callers pair it with
/// [`ValidatedIndexArray::verify`] on each level.
pub fn composed_verdict(
    outer: &ValidatedIndexArray,
    inner: &ValidatedIndexArray,
) -> ComposedVerdict {
    let iv = inner.summary_verdict();
    let ov = outer.summary_verdict();
    let domain_chained = inner.domain() <= outer.len();
    ComposedVerdict {
        inner: iv,
        outer: ov,
        domain_chained,
        nonstrict: domain_chained && iv.nonstrict && ov.nonstrict,
        strict: domain_chained && iv.strict && ov.strict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExecError;

    fn untrusted() -> Provenance {
        Provenance::Untrusted {
            source: "test".into(),
        }
    }

    #[test]
    fn in_domain_data_is_ingested() {
        let a = ValidatedIndexArray::ingest("b", vec![0, 3, 7, 9], 10, untrusted()).unwrap();
        assert_eq!(a.data(), &[0, 3, 7, 9]);
        assert_eq!((a.len(), a.domain(), a.version()), (4, 10, 0));
        assert!(a.verify().is_ok());
    }

    #[test]
    fn out_of_domain_entry_is_rejected_with_location() {
        let err = ValidatedIndexArray::ingest("b", vec![0, 3, 10, 9], 10, untrusted())
            .expect_err("entry 10 is out of [0, 10)");
        assert_eq!(
            err,
            ValidationError::OutOfDomain {
                array: "b".into(),
                index: 2,
                value: 10,
                domain: 10,
            }
        );
        // The boundary value domain-1 is fine; usize::MAX never is.
        assert!(ValidatedIndexArray::ingest("b", vec![9], 10, untrusted()).is_ok());
        assert!(ValidatedIndexArray::ingest("b", vec![usize::MAX], 10, untrusted()).is_err());
    }

    #[test]
    fn empty_domain_rejects_any_entry_but_accepts_empty_data() {
        assert!(ValidatedIndexArray::ingest("b", vec![], 0, untrusted()).is_ok());
        assert!(ValidatedIndexArray::ingest("b", vec![0], 0, untrusted()).is_err());
    }

    #[test]
    fn mutation_bumps_version_and_stays_verified() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2], 10, untrusted()).unwrap();
        a.mutate(|d| d[1] = 5).unwrap();
        assert_eq!((a.version(), a.data()[1]), (1, 5));
        assert!(a.verify().is_ok());
    }

    #[test]
    fn invalid_mutation_is_rolled_back() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2], 10, untrusted()).unwrap();
        let err = a.mutate(|d| d[0] = 99).expect_err("99 out of [0, 10)");
        assert!(matches!(
            err,
            ValidationError::OutOfDomain { value: 99, .. }
        ));
        // Rolled back: previous validated state, version unchanged.
        assert_eq!(a.data(), &[0, 1, 2]);
        assert_eq!(a.version(), 0);
        assert!(a.verify().is_ok());
    }

    #[test]
    fn bypassing_writer_is_caught_by_verify() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2], 10, untrusted()).unwrap();
        a.bypass_validation_mut()[2] = 3; // in-domain, but unannounced
        assert_eq!(
            a.verify(),
            Err(ValidationError::ChecksumMismatch { array: "b".into() })
        );
    }

    #[test]
    fn view_carries_identity_and_version() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1], 10, untrusted()).unwrap();
        let v = a.view(MonotoneReq::Strict);
        assert_eq!((v.name, v.version, v.data.len()), ("b", 0, 2));
        a.mutate(|d| d.push(4)).unwrap();
        assert_eq!(a.view(MonotoneReq::Strict).version, 1);
    }

    #[test]
    fn validation_error_maps_into_the_exec_ladder() {
        let err = ValidatedIndexArray::ingest("A_rownnz", vec![5], 3, untrusted()).unwrap_err();
        let exec: ExecError = err.into();
        match &exec {
            ExecError::InvalidIndexArray { array, detail } => {
                assert_eq!(array, "A_rownnz");
                assert!(detail.contains("outside the target domain"), "{detail}");
            }
            other => panic!("wrong mapping: {other:?}"),
        }
        assert!(!exec.transient(), "a rejected input is not retryable");
    }

    #[test]
    fn fingerprint_is_length_and_content_sensitive() {
        let fp = |d: &[usize]| {
            ValidatedIndexArray::ingest("b", d.to_vec(), usize::MAX, untrusted())
                .unwrap()
                .checksum()
        };
        assert_ne!(fp(&[0, 1]), fp(&[0, 1, 0]));
        assert_ne!(fp(&[0, 1]), fp(&[1, 0]));
        assert_eq!(fp(&[7, 8, 9]), fp(&[7, 8, 9]));
        assert_ne!(fp(&[]), fp(&[0]));
    }

    #[test]
    fn mutate_range_bumps_version_and_matches_full_rebuild() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2, 3], 10, untrusted()).unwrap();
        a.mutate_range(1..3, |w| {
            w[0] = 5;
            w[1] = 6;
        })
        .unwrap();
        assert_eq!(a.data(), &[0, 5, 6, 3]);
        assert_eq!(a.version(), 1);
        assert!(a.verify().is_ok());
        let rebuilt = ValidatedIndexArray::ingest("b", a.data().to_vec(), 10, untrusted()).unwrap();
        assert_eq!(a.checksum(), rebuilt.checksum());
        assert_eq!(a.summary_verdict(), rebuilt.summary_verdict());
    }

    #[test]
    fn invalid_mutate_range_rolls_back_only_logically_but_fully() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2, 3], 10, untrusted()).unwrap();
        let err = a
            .mutate_range(1..3, |w| {
                w[0] = 4; // in-domain, but rolled back with the rest
                w[1] = 99; // out of [0, 10)
            })
            .expect_err("99 out of [0, 10)");
        assert_eq!(
            err,
            ValidationError::OutOfDomain {
                array: "b".into(),
                index: 2,
                value: 99,
                domain: 10,
            }
        );
        assert_eq!(a.data(), &[0, 1, 2, 3]);
        assert_eq!(a.version(), 0);
        assert!(a.verify().is_ok());
    }

    #[test]
    fn mutate_range_at_first_last_and_join_indices() {
        use crate::block::BLOCK_LEN;
        let n = BLOCK_LEN * 2 + 5;
        let base: Vec<usize> = (0..n).collect();
        let mut a =
            ValidatedIndexArray::ingest("b", base.clone(), usize::MAX, untrusted()).unwrap();
        for at in [0, n - 1, BLOCK_LEN, BLOCK_LEN - 1, BLOCK_LEN + 1] {
            a.mutate_range(at..at + 1, |w| w[0] = 0).unwrap();
            assert_eq!(
                a.summary_verdict(),
                crate::inspect::inspect_serial(a.data()),
                "mutation at {at}"
            );
            assert!(a.verify().is_ok());
            a.mutate_range(at..at + 1, |w| w[0] = at).unwrap();
            assert_eq!(a.data(), &base[..], "heal at {at}");
        }
        // Healed array: checksum converges back to the pristine value.
        let pristine = ValidatedIndexArray::ingest("b", base, usize::MAX, untrusted()).unwrap();
        assert_eq!(a.checksum(), pristine.checksum());
        assert!(a.summary_verdict().strict);
    }

    #[test]
    fn mutate_range_straddling_a_block_join() {
        use crate::block::BLOCK_LEN;
        let n = BLOCK_LEN * 2;
        let mut a =
            ValidatedIndexArray::ingest("b", (0..n).collect::<Vec<_>>(), usize::MAX, untrusted())
                .unwrap();
        // Window covers the last 2 elements of block 0 and first 2 of
        // block 1; introduce a decrease exactly across the join.
        a.mutate_range(BLOCK_LEN - 2..BLOCK_LEN + 2, |w| {
            w[1] = 7_000_000;
            w[2] = 5;
        })
        .unwrap();
        let v = a.summary_verdict();
        assert_eq!(v, crate::inspect::inspect_serial(a.data()));
        assert_eq!(v.first_violation, Some(BLOCK_LEN));
        assert!(a.verify().is_ok());
    }

    #[test]
    fn mutate_range_handles_max_adjacency() {
        let mut a =
            ValidatedIndexArray::ingest("b", vec![0, 1, 2, 3], usize::MAX, untrusted()).unwrap();
        // usize::MAX is out of every domain `< usize::MAX`, but with
        // domain == usize::MAX... MAX itself is >= domain, so still out.
        let err = a.mutate_range(3..4, |w| w[0] = usize::MAX).unwrap_err();
        assert!(matches!(err, ValidationError::OutOfDomain { index: 3, .. }));
        // MAX - 1 is in domain; adjacent equal MAX-1 values must not wrap.
        a.mutate_range(2..4, |w| {
            w[0] = usize::MAX - 1;
            w[1] = usize::MAX - 1;
        })
        .unwrap();
        let v = a.summary_verdict();
        assert_eq!(v, crate::inspect::inspect_serial(a.data()));
        assert!(v.nonstrict && !v.strict);
    }

    #[test]
    fn empty_mutate_range_is_a_versioned_noop() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2], 10, untrusted()).unwrap();
        let before = a.checksum();
        a.mutate_range(1..1, |w| assert!(w.is_empty())).unwrap();
        assert_eq!(a.version(), 1);
        assert_eq!(a.checksum(), before);
        assert!(a.verify().is_ok());
    }

    #[test]
    fn summary_verdict_property_matches_serial_under_seeded_mutations() {
        use crate::block::BLOCK_LEN;
        let n = BLOCK_LEN + 700;
        let mut a =
            ValidatedIndexArray::ingest("b", (0..n).collect::<Vec<_>>(), 2 * n, untrusted())
                .unwrap();
        let mut x = 0x243f_6a88_85a3_08d3u64;
        for step in 0..120 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = (x as usize) % n;
            let val = ((x >> 32) as usize) % (2 * n);
            a.mutate_range(at..at + 1, |w| w[0] = val).unwrap();
            assert_eq!(
                a.summary_verdict(),
                crate::inspect::inspect_serial(a.data()),
                "step {step}: wrote {val} at {at}"
            );
            assert_eq!(a.version(), step + 1);
        }
        assert!(a.verify().is_ok());
    }

    #[test]
    fn composed_strict_when_both_levels_strict_and_domains_chain() {
        // outer maps [0, 8) strictly; inner selects strictly within [0, 8).
        let outer = ValidatedIndexArray::ingest(
            "row_start",
            vec![0, 2, 4, 6, 9, 12, 15, 20],
            21,
            untrusted(),
        )
        .unwrap();
        let inner = ValidatedIndexArray::ingest("act", vec![1, 3, 4, 7], 8, untrusted()).unwrap();
        let c = composed_verdict(&outer, &inner);
        assert!(c.domain_chained && c.strict && c.nonstrict);
        assert!(c.satisfies(MonotoneReq::Strict));
        // Ground truth: materialize the composition and inspect it.
        let composed: Vec<usize> = inner.data().iter().map(|&i| outer.data()[i]).collect();
        let truth = crate::inspect::inspect_serial(&composed);
        assert_eq!((truth.nonstrict, truth.strict), (c.nonstrict, c.strict));
    }

    #[test]
    fn composed_refused_when_inner_domain_exceeds_outer_length() {
        // inner is valid for a domain of 100, but outer only has 4
        // entries: the composition cannot be vouched for even though
        // both levels are individually strict.
        let outer = ValidatedIndexArray::ingest("s", vec![0, 1, 2, 3], 10, untrusted()).unwrap();
        let inner = ValidatedIndexArray::ingest("t", vec![0, 2, 50], 100, untrusted()).unwrap();
        let c = composed_verdict(&outer, &inner);
        assert!(!c.domain_chained);
        assert!(!c.nonstrict && !c.strict);
        assert!(
            c.inner.strict && c.outer.strict,
            "levels are fine in isolation"
        );
    }

    #[test]
    fn composed_inner_out_of_domain_rejected_at_ingestion() {
        // An inner entry past the outer's length never reaches the
        // composition: ingestion against the chained domain rejects it.
        let err = ValidatedIndexArray::ingest("t", vec![0, 2, 4], 4, untrusted())
            .expect_err("4 is outside [0, 4)");
        assert!(matches!(
            err,
            ValidationError::OutOfDomain {
                index: 2,
                value: 4,
                ..
            }
        ));
    }

    #[test]
    fn composed_weakens_with_either_level_and_reinspects_in_o_delta() {
        let outer =
            ValidatedIndexArray::ingest("s", (0..64).collect::<Vec<_>>(), 64, untrusted()).unwrap();
        let mut inner =
            ValidatedIndexArray::ingest("t", (0..32).collect::<Vec<_>>(), 64, untrusted()).unwrap();
        assert!(composed_verdict(&outer, &inner).strict);
        // A plateau in the inner level: composed drops to non-strict.
        inner.mutate_range(10..11, |w| w[0] = 9).unwrap();
        let c = composed_verdict(&outer, &inner);
        assert!(c.nonstrict && !c.strict);
        // A decrease straddling the mutation window boundary kills
        // non-strictness too; healing restores strictness — all through
        // ranged mutations whose rescan cost is O(Δ + blocks).
        inner.mutate_range(10..12, |w| w[1] = 3).unwrap();
        assert!(!composed_verdict(&outer, &inner).nonstrict);
        inner
            .mutate_range(10..12, |w| {
                w[0] = 10;
                w[1] = 11;
            })
            .unwrap();
        assert!(composed_verdict(&outer, &inner).strict);
    }

    #[test]
    fn summary_verdict_goes_stale_on_bypass_until_verify_catches_it() {
        let mut a = ValidatedIndexArray::ingest("b", vec![0, 1, 2, 3], 10, untrusted()).unwrap();
        assert!(a.summary_verdict().strict);
        a.bypass_validation_mut()[1] = 9; // breaks monotonicity, unannounced
                                          // The summary verdict is stale — and that is exactly why the
                                          // paranoid path calls verify() first, which fails here.
        assert!(a.summary_verdict().strict);
        assert!(matches!(
            a.verify(),
            Err(ValidationError::ChecksumMismatch { .. })
        ));
    }
}
