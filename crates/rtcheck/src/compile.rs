//! Compiling a [`CheckExpr`] into an evaluable predicate.
//!
//! The compiler flattens each conjunct into canonical difference form and
//! resolves every symbol into a slot index once, so per-invocation
//! evaluation is a slot-table fill (one hash lookup per distinct symbol)
//! followed by pure integer arithmetic — no string handling and no
//! allocation proportional to the expression size.

use crate::bindings::Bindings;
use crate::expr::CheckExpr;
use std::fmt;
use subsub_symbolic::{Atom, Symbol};

/// Why a check could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The check contains an array read; runtime checks are scalar-only
    /// (array facts go through the inspector instead).
    ArrayRead {
        /// Name of the offending array.
        array: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ArrayRead { array } => {
                write!(f, "runtime check reads array {array}; scalar checks only")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Why evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol the check needs has no value in the bindings.
    Unbound {
        /// The missing symbol, in display form (e.g. `irownnz_max`).
        symbol: String,
    },
    /// Evaluating the predicate overflowed `i64`. A wrapped difference can
    /// flip a comparison and wrongly *admit* parallelism, so overflow is a
    /// hard evaluation failure: the guard treats it as unevaluable and
    /// conservatively denies (serial fallback).
    Overflow {
        /// Which conjunct (0-based, canonical order) overflowed.
        conjunct: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound { symbol } => write!(f, "unbound check symbol {symbol}"),
            EvalError::Overflow { conjunct } => write!(
                f,
                "arithmetic overflow evaluating conjunct {conjunct} (conservative deny)"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// One term of a flattened difference: `coeff * Π slots`.
#[derive(Debug, Clone)]
struct FlatTerm {
    coeff: i64,
    slots: Vec<usize>,
}

/// One conjunct: the flattened difference plus the comparison flavour.
#[derive(Debug, Clone)]
struct FlatCmp {
    terms: Vec<FlatTerm>,
    /// Constant part of the difference.
    constant: i64,
    /// `true` → `diff <= 0`; otherwise equational.
    is_le: bool,
    /// For equational conjuncts: `true` = `== 0`, `false` = `!= 0`.
    eq: bool,
}

/// A check compiled to a slot-based predicate.
#[derive(Debug, Clone)]
pub struct CompiledCheck {
    syms: Vec<Symbol>,
    cmps: Vec<FlatCmp>,
}

impl CompiledCheck {
    /// Compiles the canonical form of `check`.
    pub fn compile(check: &CheckExpr) -> Result<CompiledCheck, CompileError> {
        let mut syms: Vec<Symbol> = Vec::new();
        let mut cmps = Vec::new();
        for canon in check.canonical() {
            let mut terms = Vec::new();
            let mut constant = 0i64;
            for t in canon.diff.terms() {
                if t.atoms.is_empty() {
                    constant += t.coeff;
                    continue;
                }
                let mut slots = Vec::with_capacity(t.atoms.len());
                for a in &t.atoms {
                    match a {
                        Atom::Sym(s) => {
                            let slot = match syms.iter().position(|q| q == s) {
                                Some(i) => i,
                                None => {
                                    syms.push(s.clone());
                                    syms.len() - 1
                                }
                            };
                            slots.push(slot);
                        }
                        Atom::Read { array, .. } => {
                            return Err(CompileError::ArrayRead {
                                array: array.to_string(),
                            });
                        }
                    }
                }
                terms.push(FlatTerm {
                    coeff: t.coeff,
                    slots,
                });
            }
            cmps.push(FlatCmp {
                terms,
                constant,
                is_le: canon.is_le,
                eq: canon.eq,
            });
        }
        Ok(CompiledCheck { syms, cmps })
    }

    /// The symbols the predicate needs bound, in slot order.
    pub fn required_symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// Evaluates the predicate against a runtime environment.
    ///
    /// All arithmetic is *checked*: an `i64` overflow anywhere in a
    /// conjunct returns [`EvalError::Overflow`] instead of wrapping. A
    /// wrapped product or sum can flip the sign of the difference and turn
    /// a false precondition into an apparent true one — i.e. silently
    /// admit a data race — so overflow must surface as a failure the guard
    /// maps to a conservative serial fallback.
    pub fn eval(&self, b: &Bindings) -> Result<bool, EvalError> {
        let slots = self.fill_slots(b)?;
        for (ci, c) in self.cmps.iter().enumerate() {
            let overflow = || EvalError::Overflow { conjunct: ci };
            let mut diff = c.constant;
            for t in &c.terms {
                let mut v = t.coeff;
                for &slot in &t.slots {
                    v = v.checked_mul(slots[slot]).ok_or_else(overflow)?;
                }
                diff = diff.checked_add(v).ok_or_else(overflow)?;
            }
            if !c.holds(diff) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The pre-hardening evaluation semantics: wrapping arithmetic, no
    /// overflow detection. **Unsound** — a wrapped difference can admit a
    /// parallel run whose precondition is actually false. Kept only so
    /// regression tests (and the differential oracle) can demonstrate the
    /// admit-on-overflow behaviour this crate used to have; never call it
    /// on the execution path.
    pub fn eval_wrapping_unsound(&self, b: &Bindings) -> Result<bool, EvalError> {
        let slots = self.fill_slots(b)?;
        for c in &self.cmps {
            let mut diff = c.constant;
            for t in &c.terms {
                let mut v = t.coeff;
                for &slot in &t.slots {
                    v = v.wrapping_mul(slots[slot]);
                }
                diff = diff.wrapping_add(v);
            }
            if !c.holds(diff) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn fill_slots(&self, b: &Bindings) -> Result<Vec<i64>, EvalError> {
        let mut slots = Vec::with_capacity(self.syms.len());
        for s in &self.syms {
            match b.get(s) {
                Some(v) => slots.push(v),
                None => {
                    return Err(EvalError::Unbound {
                        symbol: s.to_string(),
                    })
                }
            }
        }
        Ok(slots)
    }
}

impl FlatCmp {
    /// Whether a computed difference satisfies this conjunct's comparison.
    fn holds(&self, diff: i64) -> bool {
        if self.is_le {
            diff <= 0
        } else if self.eq {
            diff == 0
        } else {
            diff != 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_check;

    fn eval(src: &str, setup: impl FnOnce(&mut Bindings)) -> Result<bool, EvalError> {
        let c = parse_check(src).unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        let mut b = Bindings::new();
        setup(&mut b);
        p.eval(&b)
    }

    #[test]
    fn amgmk_check_evaluates() {
        // Admitted: one past the loop bound is within the inspected range.
        let r = eval("num_rownnz - 1 <= irownnz_max", |b| {
            b.set_var("num_rownnz", 100).set_post_max("irownnz", 100);
        });
        assert_eq!(r, Ok(true));
        // Rejected: the loop would read past the verified prefix.
        let r = eval("num_rownnz - 1 <= irownnz_max", |b| {
            b.set_var("num_rownnz", 102).set_post_max("irownnz", 100);
        });
        assert_eq!(r, Ok(false));
    }

    #[test]
    fn all_operators_evaluate() {
        for (src, expect) in [
            ("2*n + 1 < 8", true),  // 7 < 8
            ("2*n + 1 < 7", false), // 7 < 7
            ("n >= 3", true),
            ("n > 3", false),
            ("n == 3", true),
            ("n != 3", false),
            ("n*n == 9", true),
        ] {
            let r = eval(src, |b| {
                b.set_var("n", 3);
            });
            assert_eq!(r, Ok(expect), "{src}");
        }
    }

    #[test]
    fn conjunction_is_all_of() {
        let r = eval("n <= m && m <= k", |b| {
            b.set_var("n", 1).set_var("m", 2).set_var("k", 3);
        });
        assert_eq!(r, Ok(true));
        let r = eval("n <= m && m <= k", |b| {
            b.set_var("n", 1).set_var("m", 5).set_var("k", 3);
        });
        assert_eq!(r, Ok(false));
    }

    #[test]
    fn unbound_symbol_is_an_error() {
        let r = eval("n - 1 <= irownnz_max", |b| {
            b.set_var("n", 5);
        });
        assert_eq!(
            r,
            Err(EvalError::Unbound {
                symbol: "irownnz_max".into()
            })
        );
    }

    #[test]
    fn required_symbols_are_exposed() {
        let c = parse_check("n - 1 <= irownnz_max").unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        let names: Vec<String> = p.required_symbols().iter().map(|s| s.to_string()).collect();
        assert!(names.contains(&"n".to_string()));
        assert!(names.contains(&"irownnz_max".to_string()));
    }

    /// `a*b <= c` with `a = b = 3_037_000_500` overflows `i64`
    /// (`a*b ≈ 9.22e18 > i64::MAX`). The true difference is positive, so
    /// the precondition is false and parallelism must be denied.
    fn overflowing_bindings() -> Bindings {
        let mut b = Bindings::new();
        b.set_var("a", 3_037_000_500)
            .set_var("b", 3_037_000_500)
            .set_var("c", 0);
        b
    }

    #[test]
    fn overflow_is_detected_and_denies() {
        let c = parse_check("a*b <= c").unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        assert_eq!(
            p.eval(&overflowing_bindings()),
            Err(EvalError::Overflow { conjunct: 0 }),
            "checked evaluation must refuse to produce a verdict"
        );
    }

    #[test]
    fn wrapping_path_wrongly_admitted_the_overflow_case() {
        // Paired regression: the pre-hardening semantics wrapped the
        // product negative, making `diff <= 0` hold — an unsound ADMIT.
        // This documents the vulnerability the checked path closes.
        let c = parse_check("a*b <= c").unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        assert_eq!(
            p.eval_wrapping_unsound(&overflowing_bindings()),
            Ok(true),
            "the old wrapping evaluation admitted the false precondition"
        );
    }

    #[test]
    fn additive_overflow_near_i64_max_denies() {
        // Purely additive overflow: n + m with both near i64::MAX.
        let c = parse_check("n + m <= k").unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        let mut b = Bindings::new();
        b.set_var("n", i64::MAX - 1)
            .set_var("m", i64::MAX - 1)
            .set_var("k", 5);
        assert_eq!(p.eval(&b), Err(EvalError::Overflow { conjunct: 0 }));
        // The same shape without overflow still evaluates normally.
        let mut ok = Bindings::new();
        ok.set_var("n", 2).set_var("m", 2).set_var("k", 5);
        assert_eq!(p.eval(&ok), Ok(true));
    }

    #[test]
    fn i64_max_bindings_evaluate_when_no_overflow_occurs() {
        // Extreme-but-representable values are not rejected: `n <= m`
        // with both at i64::MAX computes diff = MAX - MAX = 0... but the
        // subtraction is expressed as MAX + (-1)*MAX, each step in range.
        let c = parse_check("n <= m").unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        let mut b = Bindings::new();
        b.set_var("n", i64::MAX).set_var("m", i64::MAX);
        assert_eq!(p.eval(&b), Ok(true));
    }

    #[test]
    fn array_reads_are_rejected_at_compile_time() {
        use crate::expr::{CheckExpr, CmpOp};
        use subsub_symbolic::Expr;
        let c = CheckExpr::Cmp {
            lhs: Expr::read("A", vec![Expr::int(0)]),
            op: CmpOp::Le,
            rhs: Expr::int(5),
        };
        match CompiledCheck::compile(&c) {
            Err(CompileError::ArrayRead { array }) => assert_eq!(array, "A"),
            other => panic!("expected ArrayRead error, got {other:?}"),
        }
    }
}
