//! Compiling a [`CheckExpr`] into an evaluable predicate.
//!
//! The compiler flattens each conjunct into canonical difference form and
//! resolves every symbol into a slot index once, so per-invocation
//! evaluation is a slot-table fill (one hash lookup per distinct symbol)
//! followed by pure integer arithmetic — no string handling and no
//! allocation proportional to the expression size.

use crate::bindings::Bindings;
use crate::expr::CheckExpr;
use std::fmt;
use subsub_symbolic::{Atom, Symbol};

/// Why a check could not be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The check contains an array read; runtime checks are scalar-only
    /// (array facts go through the inspector instead).
    ArrayRead {
        /// Name of the offending array.
        array: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::ArrayRead { array } => {
                write!(f, "runtime check reads array {array}; scalar checks only")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Why evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A symbol the check needs has no value in the bindings.
    Unbound {
        /// The missing symbol, in display form (e.g. `irownnz_max`).
        symbol: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound { symbol } => write!(f, "unbound check symbol {symbol}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// One term of a flattened difference: `coeff * Π slots`.
#[derive(Debug, Clone)]
struct FlatTerm {
    coeff: i64,
    slots: Vec<usize>,
}

/// One conjunct: the flattened difference plus the comparison flavour.
#[derive(Debug, Clone)]
struct FlatCmp {
    terms: Vec<FlatTerm>,
    /// Constant part of the difference.
    constant: i64,
    /// `true` → `diff <= 0`; otherwise equational.
    is_le: bool,
    /// For equational conjuncts: `true` = `== 0`, `false` = `!= 0`.
    eq: bool,
}

/// A check compiled to a slot-based predicate.
#[derive(Debug, Clone)]
pub struct CompiledCheck {
    syms: Vec<Symbol>,
    cmps: Vec<FlatCmp>,
}

impl CompiledCheck {
    /// Compiles the canonical form of `check`.
    pub fn compile(check: &CheckExpr) -> Result<CompiledCheck, CompileError> {
        let mut syms: Vec<Symbol> = Vec::new();
        let mut cmps = Vec::new();
        for canon in check.canonical() {
            let mut terms = Vec::new();
            let mut constant = 0i64;
            for t in canon.diff.terms() {
                if t.atoms.is_empty() {
                    constant += t.coeff;
                    continue;
                }
                let mut slots = Vec::with_capacity(t.atoms.len());
                for a in &t.atoms {
                    match a {
                        Atom::Sym(s) => {
                            let slot = match syms.iter().position(|q| q == s) {
                                Some(i) => i,
                                None => {
                                    syms.push(s.clone());
                                    syms.len() - 1
                                }
                            };
                            slots.push(slot);
                        }
                        Atom::Read { array, .. } => {
                            return Err(CompileError::ArrayRead {
                                array: array.to_string(),
                            });
                        }
                    }
                }
                terms.push(FlatTerm {
                    coeff: t.coeff,
                    slots,
                });
            }
            cmps.push(FlatCmp {
                terms,
                constant,
                is_le: canon.is_le,
                eq: canon.eq,
            });
        }
        Ok(CompiledCheck { syms, cmps })
    }

    /// The symbols the predicate needs bound, in slot order.
    pub fn required_symbols(&self) -> &[Symbol] {
        &self.syms
    }

    /// Evaluates the predicate against a runtime environment.
    pub fn eval(&self, b: &Bindings) -> Result<bool, EvalError> {
        let mut slots = Vec::with_capacity(self.syms.len());
        for s in &self.syms {
            match b.get(s) {
                Some(v) => slots.push(v),
                None => {
                    return Err(EvalError::Unbound {
                        symbol: s.to_string(),
                    })
                }
            }
        }
        for c in &self.cmps {
            let mut diff = c.constant;
            for t in &c.terms {
                let mut v = t.coeff;
                for &slot in &t.slots {
                    v = v.wrapping_mul(slots[slot]);
                }
                diff = diff.wrapping_add(v);
            }
            let holds = if c.is_le {
                diff <= 0
            } else if c.eq {
                diff == 0
            } else {
                diff != 0
            };
            if !holds {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_check;

    fn eval(src: &str, setup: impl FnOnce(&mut Bindings)) -> Result<bool, EvalError> {
        let c = parse_check(src).unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        let mut b = Bindings::new();
        setup(&mut b);
        p.eval(&b)
    }

    #[test]
    fn amgmk_check_evaluates() {
        // Admitted: one past the loop bound is within the inspected range.
        let r = eval("num_rownnz - 1 <= irownnz_max", |b| {
            b.set_var("num_rownnz", 100).set_post_max("irownnz", 100);
        });
        assert_eq!(r, Ok(true));
        // Rejected: the loop would read past the verified prefix.
        let r = eval("num_rownnz - 1 <= irownnz_max", |b| {
            b.set_var("num_rownnz", 102).set_post_max("irownnz", 100);
        });
        assert_eq!(r, Ok(false));
    }

    #[test]
    fn all_operators_evaluate() {
        for (src, expect) in [
            ("2*n + 1 < 8", true),  // 7 < 8
            ("2*n + 1 < 7", false), // 7 < 7
            ("n >= 3", true),
            ("n > 3", false),
            ("n == 3", true),
            ("n != 3", false),
            ("n*n == 9", true),
        ] {
            let r = eval(src, |b| {
                b.set_var("n", 3);
            });
            assert_eq!(r, Ok(expect), "{src}");
        }
    }

    #[test]
    fn conjunction_is_all_of() {
        let r = eval("n <= m && m <= k", |b| {
            b.set_var("n", 1).set_var("m", 2).set_var("k", 3);
        });
        assert_eq!(r, Ok(true));
        let r = eval("n <= m && m <= k", |b| {
            b.set_var("n", 1).set_var("m", 5).set_var("k", 3);
        });
        assert_eq!(r, Ok(false));
    }

    #[test]
    fn unbound_symbol_is_an_error() {
        let r = eval("n - 1 <= irownnz_max", |b| {
            b.set_var("n", 5);
        });
        assert_eq!(
            r,
            Err(EvalError::Unbound {
                symbol: "irownnz_max".into()
            })
        );
    }

    #[test]
    fn required_symbols_are_exposed() {
        let c = parse_check("n - 1 <= irownnz_max").unwrap();
        let p = CompiledCheck::compile(&c).unwrap();
        let names: Vec<String> = p.required_symbols().iter().map(|s| s.to_string()).collect();
        assert!(names.contains(&"n".to_string()));
        assert!(names.contains(&"irownnz_max".to_string()));
    }

    #[test]
    fn array_reads_are_rejected_at_compile_time() {
        use crate::expr::{CheckExpr, CmpOp};
        use subsub_symbolic::Expr;
        let c = CheckExpr::Cmp {
            lhs: Expr::read("A", vec![Expr::int(0)]),
            op: CmpOp::Le,
            rhs: Expr::int(5),
        };
        match CompiledCheck::compile(&c) {
            Err(CompileError::ArrayRead { array }) => assert_eq!(array, "A"),
            other => panic!("expected ArrayRead error, got {other:?}"),
        }
    }
}
