//! Memoization of inspector verdicts.
//!
//! Inspecting an index array is O(n); re-inspecting it on every kernel
//! invocation would erase the paper's point that the check amortizes.
//! The cache keys a verdict on the array's *identity* (name + data
//! address + length) and its *write-version*: the owning kernel bumps the
//! version whenever it mutates the array, so a lookup with a stale
//! version misses (recorded as an invalidation) and triggers
//! re-inspection, while an unchanged array revalidates in O(1).

use crate::inspect::{inspect_monotone, IndexArrayView, MonotoneVerdict};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use subsub_omprt::ThreadPool;

/// Cache identity of one index array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    addr: usize,
    len: usize,
}

impl Key {
    fn of(view: &IndexArrayView<'_>) -> Key {
        Key {
            name: view.name.to_string(),
            addr: view.data.as_ptr() as usize,
            len: view.data.len(),
        }
    }
}

/// Counters describing how the cache behaved so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered without re-inspection.
    pub hits: u64,
    /// Lookups that had no usable entry and ran the inspector.
    pub misses: u64,
    /// Misses caused specifically by a version change on a known array.
    pub invalidations: u64,
}

/// Verdict memo keyed by (array identity, version).
#[derive(Debug, Default)]
pub struct InspectorCache {
    entries: Mutex<HashMap<Key, (u64, MonotoneVerdict)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl InspectorCache {
    /// Empty cache.
    pub fn new() -> InspectorCache {
        InspectorCache::default()
    }

    /// Returns the verdict for `view`, inspecting only when no entry with
    /// the current version exists. A version mismatch on a known array is
    /// counted as an invalidation and the entry is replaced.
    pub fn verdict(&self, view: &IndexArrayView<'_>, pool: Option<&ThreadPool>) -> MonotoneVerdict {
        let key = Key::of(view);
        {
            let entries = lock(&self.entries);
            match entries.get(&key) {
                Some((ver, verdict)) if *ver == view.version => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return *verdict;
                }
                Some(_) => {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
                None => {}
            }
        }
        // Inspect outside the lock: scans can be long and parallel.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let verdict = inspect_monotone(view.data, pool);
        lock(&self.entries).insert(key, (view.version, verdict));
        verdict
    }

    /// Drops every memoized verdict (counters are kept).
    pub fn clear(&self) {
        lock(&self.entries).clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::MonotoneReq;

    fn view<'a>(name: &'a str, data: &'a [usize], version: u64) -> IndexArrayView<'a> {
        IndexArrayView {
            name,
            data,
            version,
            required: MonotoneReq::NonStrict,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = InspectorCache::new();
        let data = vec![0usize, 1, 2, 3];
        let v1 = cache.verdict(&view("b", &data, 0), None);
        let v2 = cache.verdict(&view("b", &data, 0), None);
        assert_eq!(v1, v2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 0));
    }

    #[test]
    fn version_bump_invalidates() {
        let cache = InspectorCache::new();
        let mut data = vec![0usize, 1, 2, 3];
        assert!(cache.verdict(&view("b", &data, 0), None).nonstrict);
        // Mutate in place (address and length unchanged) and bump version.
        data[2] = 0;
        let v = cache.verdict(&view("b", &data, 1), None);
        assert!(!v.nonstrict);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 2, 1));
        // The replaced entry now serves the new version.
        assert!(!cache.verdict(&view("b", &data, 1), None).nonstrict);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn distinct_arrays_do_not_collide() {
        let cache = InspectorCache::new();
        let good = vec![0usize, 1, 2];
        let bad = vec![2usize, 1, 0];
        assert!(cache.verdict(&view("g", &good, 0), None).nonstrict);
        assert!(!cache.verdict(&view("b", &bad, 0), None).nonstrict);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_forgets_entries_but_keeps_counters() {
        let cache = InspectorCache::new();
        let data = vec![0usize, 1];
        cache.verdict(&view("b", &data, 0), None);
        cache.clear();
        cache.verdict(&view("b", &data, 0), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
    }
}
