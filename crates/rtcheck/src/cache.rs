//! Memoization of inspector verdicts.
//!
//! Inspecting an index array is O(n); re-inspecting it on every kernel
//! invocation would erase the paper's point that the check amortizes.
//! The cache keys a verdict on the array's *identity* (name + data
//! address + length) and its *write-version*: the owning kernel bumps the
//! version whenever it mutates the array, so a lookup with a stale
//! version misses (recorded as an invalidation) and triggers
//! re-inspection, while an unchanged array revalidates in O(1).

use crate::inspect::{inspect_serial, try_inspect_monotone, IndexArrayView, MonotoneVerdict};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use subsub_failpoint::{self as failpoint, Action};
use subsub_omprt::{RegionError, ThreadPool};
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase};

/// Cache identity of one index array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    addr: usize,
    len: usize,
}

impl Key {
    fn of(view: &IndexArrayView<'_>) -> Key {
        Key {
            name: view.name.to_string(),
            addr: view.data.as_ptr() as usize,
            len: view.data.len(),
        }
    }
}

/// Counters describing how the cache behaved so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered without re-inspection.
    pub hits: u64,
    /// Lookups that had no usable entry and ran the inspector.
    pub misses: u64,
    /// Misses caused specifically by a version change on a known array.
    pub invalidations: u64,
}

/// Verdict memo keyed by (array identity, version).
#[derive(Debug, Default)]
pub struct InspectorCache {
    entries: Mutex<HashMap<Key, (u64, MonotoneVerdict)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl InspectorCache {
    /// Empty cache.
    pub fn new() -> InspectorCache {
        InspectorCache::default()
    }

    /// Returns the verdict for `view`, inspecting only when no entry with
    /// the current version exists. A version mismatch on a known array is
    /// counted as an invalidation and the entry is replaced. A faulted
    /// parallel inspection degrades to the serial scan (see
    /// [`InspectorCache::try_verdict`] to observe the fault instead).
    pub fn verdict(&self, view: &IndexArrayView<'_>, pool: Option<&ThreadPool>) -> MonotoneVerdict {
        match self.try_verdict(view, pool) {
            Ok(v) => v,
            Err(_) => self.verdict_serial(view),
        }
    }

    /// [`InspectorCache::verdict`] that reports a faulted inspection as
    /// an error instead of rescuing it. **A fault never records a
    /// verdict**: an inspection that panicked or lost a worker produced
    /// no trustworthy result, and memoizing one would poison every later
    /// lookup at this version (hits bypass re-inspection by design).
    pub fn try_verdict(
        &self,
        view: &IndexArrayView<'_>,
        pool: Option<&ThreadPool>,
    ) -> Result<MonotoneVerdict, RegionError> {
        let key = Key::of(view);
        let _lookup_span = telemetry::span_labeled(Phase::CacheLookup, view.name);
        {
            let entries = lock(&self.entries);
            match entries.get(&key) {
                Some((ver, verdict)) if *ver == view.version => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::instant_labeled(
                        EventKind::CacheHit,
                        Phase::CacheLookup,
                        view.name,
                        view.version,
                    );
                    return Ok(*verdict);
                }
                Some(_) => {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    telemetry::instant_labeled(
                        EventKind::CacheInvalidate,
                        Phase::CacheLookup,
                        view.name,
                        view.version,
                    );
                }
                None => {}
            }
        }
        // Inspect outside the lock: scans can be long and parallel. The
        // `?` is the poisoning fix: no insert on a faulted scan.
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::instant_labeled(
            EventKind::CacheMiss,
            Phase::CacheLookup,
            view.name,
            view.data.len() as u64,
        );
        let verdict = {
            let _inspect_span = telemetry::span_labeled(Phase::Inspect, view.name);
            try_inspect_monotone(view.data, pool)?
        };
        self.insert(key, view.version, verdict);
        Ok(verdict)
    }

    /// Inspects `view` with the infallible serial scan and memoizes the
    /// result — the final rung of the guard's retry ladder.
    pub fn verdict_serial(&self, view: &IndexArrayView<'_>) -> MonotoneVerdict {
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::instant_labeled(
            EventKind::CacheMiss,
            Phase::CacheLookup,
            view.name,
            view.data.len() as u64,
        );
        let verdict = {
            let _inspect_span = telemetry::span_labeled(Phase::Inspect, view.name);
            inspect_serial(view.data)
        };
        self.insert(Key::of(view), view.version, verdict);
        verdict
    }

    fn insert(&self, key: Key, version: u64, verdict: MonotoneVerdict) {
        match failpoint::hit("rtcheck.cache.insert") {
            Action::Proceed => {
                lock(&self.entries).insert(key, (version, verdict));
            }
            // Injected insert fault: skip memoization. The verdict
            // already computed stays valid; later lookups just re-inspect.
            Action::Error => {}
            // Injected memo corruption is modelled in the conservative
            // direction only: the stored verdict denies everything, so a
            // corrupted cache can cost performance (spurious serial
            // fallbacks) but never admit an unsound parallel run.
            Action::Corrupt => {
                let deny = MonotoneVerdict {
                    nonstrict: false,
                    strict: false,
                    first_violation: None,
                    len: verdict.len,
                };
                lock(&self.entries).insert(key, (version, deny));
            }
        }
    }

    /// Drops every memoized verdict (counters are kept).
    pub fn clear(&self) {
        lock(&self.entries).clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::MonotoneReq;

    fn view<'a>(name: &'a str, data: &'a [usize], version: u64) -> IndexArrayView<'a> {
        IndexArrayView {
            name,
            data,
            version,
            required: MonotoneReq::NonStrict,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = InspectorCache::new();
        let data = vec![0usize, 1, 2, 3];
        let v1 = cache.verdict(&view("b", &data, 0), None);
        let v2 = cache.verdict(&view("b", &data, 0), None);
        assert_eq!(v1, v2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 0));
    }

    #[test]
    fn version_bump_invalidates() {
        let cache = InspectorCache::new();
        let mut data = vec![0usize, 1, 2, 3];
        assert!(cache.verdict(&view("b", &data, 0), None).nonstrict);
        // Mutate in place (address and length unchanged) and bump version.
        data[2] = 0;
        let v = cache.verdict(&view("b", &data, 1), None);
        assert!(!v.nonstrict);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 2, 1));
        // The replaced entry now serves the new version.
        assert!(!cache.verdict(&view("b", &data, 1), None).nonstrict);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn distinct_arrays_do_not_collide() {
        let cache = InspectorCache::new();
        let good = vec![0usize, 1, 2];
        let bad = vec![2usize, 1, 0];
        assert!(cache.verdict(&view("g", &good, 0), None).nonstrict);
        assert!(!cache.verdict(&view("b", &bad, 0), None).nonstrict);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clear_forgets_entries_but_keeps_counters() {
        let cache = InspectorCache::new();
        let data = vec![0usize, 1];
        cache.verdict(&view("b", &data, 0), None);
        cache.clear();
        cache.verdict(&view("b", &data, 0), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
    }
}
