//! Memoization of inspector verdicts.
//!
//! Inspecting an index array is O(n); re-inspecting it on every kernel
//! invocation would erase the paper's point that the check amortizes.
//! The cache keys a verdict on the array's *identity* (name + data
//! address + length) and its *write-version*: the owning kernel bumps the
//! version whenever it mutates the array, so a lookup with a stale
//! version misses (recorded as an invalidation) and triggers
//! re-inspection, while an unchanged array revalidates in O(1).

use crate::inspect::{
    inspect_serial, try_inspect_monotone, IndexArrayView, MonotoneReq, MonotoneVerdict,
};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use subsub_failpoint::{self as failpoint, Action};
use subsub_omprt::{RegionError, ThreadPool};
use subsub_telemetry as telemetry;
use subsub_telemetry::{EventKind, Phase};

/// A bounded verdict memo with least-recently-used-ish eviction.
///
/// The original inspector memo grew without bound: every distinct array
/// identity (or, at service scale, every distinct array *content*) held
/// its entry forever. `VerdictCache` caps the entry count explicitly;
/// when an insert would exceed the capacity, the entry with the oldest
/// recency stamp is evicted (a linear min-scan — exact LRU order is not
/// worth a linked list at the capacities the runtime uses, and the scan
/// only runs on inserts into a full cache).
///
/// The type is deliberately not internally synchronized: the inspector
/// memo wraps it in a `Mutex`, and the service's sharded cache wraps one
/// per shard — locking granularity is the caller's concern.
#[derive(Debug)]
pub struct VerdictCache<K, V> {
    cap: usize,
    tick: u64,
    evictions: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V> VerdictCache<K, V> {
    /// A cache holding at most `cap` entries (clamped to at least 1).
    pub fn with_capacity(cap: usize) -> VerdictCache<K, V> {
        VerdictCache {
            cap: cap.max(1),
            tick: 0,
            evictions: 0,
            map: HashMap::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current entry count (always `<= capacity()`).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted under capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, refreshing its recency stamp on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((stamp, v)) => {
                *stamp = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Inserts (or replaces) `key`, evicting the stalest entry first if
    /// the cache is full. Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.tick += 1;
        let mut evicted = None;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
                evicted = Some(victim);
            }
        }
        self.map.insert(key, (self.tick, value));
        evicted
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(_, v)| v)
    }

    /// Drops every entry (the eviction counter is kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, (_, v))| (k, v))
    }
}

/// Entries the inspector memo holds before evicting; far above what the
/// kernel registry needs, low enough that a service sweeping arbitrary
/// arrays through one executor cannot grow the memo without bound.
pub const MEMO_CAPACITY: usize = 1024;

/// Cache identity of one index array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    addr: usize,
    len: usize,
}

impl Key {
    fn of(view: &IndexArrayView<'_>) -> Key {
        Key {
            name: view.name.to_string(),
            addr: view.data.as_ptr() as usize,
            len: view.data.len(),
        }
    }
}

/// Counters describing how the cache behaved so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered without re-inspection.
    pub hits: u64,
    /// Lookups that had no usable entry and ran the inspector.
    pub misses: u64,
    /// Misses caused specifically by a version change on a known array.
    pub invalidations: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
}

/// Verdict memo keyed by (array identity, version), bounded at
/// [`MEMO_CAPACITY`] entries with LRU-ish eviction.
#[derive(Debug)]
pub struct InspectorCache {
    entries: Mutex<VerdictCache<Key, (u64, MonotoneVerdict)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for InspectorCache {
    fn default() -> InspectorCache {
        InspectorCache::new()
    }
}

impl InspectorCache {
    /// Empty cache with the default [`MEMO_CAPACITY`] bound.
    pub fn new() -> InspectorCache {
        InspectorCache::bounded(MEMO_CAPACITY)
    }

    /// Empty cache holding at most `cap` verdicts.
    pub fn bounded(cap: usize) -> InspectorCache {
        InspectorCache {
            entries: Mutex::new(VerdictCache::with_capacity(cap)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Returns the verdict for `view`, inspecting only when no entry with
    /// the current version exists. A version mismatch on a known array is
    /// counted as an invalidation and the entry is replaced. A faulted
    /// parallel inspection degrades to the serial scan (see
    /// [`InspectorCache::try_verdict`] to observe the fault instead).
    pub fn verdict(&self, view: &IndexArrayView<'_>, pool: Option<&ThreadPool>) -> MonotoneVerdict {
        match self.try_verdict(view, pool) {
            Ok(v) => v,
            Err(_) => self.verdict_serial(view),
        }
    }

    /// [`InspectorCache::verdict`] that reports a faulted inspection as
    /// an error instead of rescuing it. **A fault never records a
    /// verdict**: an inspection that panicked or lost a worker produced
    /// no trustworthy result, and memoizing one would poison every later
    /// lookup at this version (hits bypass re-inspection by design).
    pub fn try_verdict(
        &self,
        view: &IndexArrayView<'_>,
        pool: Option<&ThreadPool>,
    ) -> Result<MonotoneVerdict, RegionError> {
        let key = Key::of(view);
        let _lookup_span = telemetry::span_labeled(Phase::CacheLookup, view.name);
        {
            let mut entries = lock(&self.entries);
            match entries.get(&key) {
                Some((ver, verdict)) if *ver == view.version => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::instant_labeled(
                        EventKind::CacheHit,
                        Phase::CacheLookup,
                        view.name,
                        view.version,
                    );
                    return Ok(*verdict);
                }
                Some(_) => {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    telemetry::instant_labeled(
                        EventKind::CacheInvalidate,
                        Phase::CacheLookup,
                        view.name,
                        view.version,
                    );
                }
                None => {}
            }
        }
        // Inspect outside the lock: scans can be long and parallel. The
        // `?` is the poisoning fix: no insert on a faulted scan.
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::instant_labeled(
            EventKind::CacheMiss,
            Phase::CacheLookup,
            view.name,
            view.data.len() as u64,
        );
        let verdict = {
            let _inspect_span = telemetry::span_labeled(Phase::Inspect, view.name);
            try_inspect_monotone(view.data, pool)?
        };
        self.insert(key, view.version, verdict);
        Ok(verdict)
    }

    /// Returns the verdict for an array living behind the ingestion
    /// trust boundary, serving a miss from the array's block summaries
    /// in O(blocks) instead of rescanning O(n) elements.
    ///
    /// Soundness: the boundary rebuilds or rescans the summaries
    /// atomically with every write-version bump, so at any version the
    /// summaries describe exactly the contents the version names — the
    /// dirty-window bookkeeping of `mutate_range` guarantees untouched
    /// blocks' summaries are still current. Callers defending against
    /// *bypassing* writers (who change neither version nor summaries)
    /// must pair this with [`ValidatedIndexArray::verify`], which
    /// recomputes from raw data — exactly what the guard does before
    /// decide/dispatch.
    ///
    /// [`ValidatedIndexArray::verify`]: crate::ValidatedIndexArray::verify
    pub fn verdict_ingested(
        &self,
        array: &crate::ValidatedIndexArray,
        required: MonotoneReq,
    ) -> MonotoneVerdict {
        let view = array.view(required);
        let key = Key::of(&view);
        let _lookup_span = telemetry::span_labeled(Phase::CacheLookup, view.name);
        {
            let mut entries = lock(&self.entries);
            match entries.get(&key) {
                Some((ver, verdict)) if *ver == view.version => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::instant_labeled(
                        EventKind::CacheHit,
                        Phase::CacheLookup,
                        view.name,
                        view.version,
                    );
                    return *verdict;
                }
                Some(_) => {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    telemetry::instant_labeled(
                        EventKind::CacheInvalidate,
                        Phase::CacheLookup,
                        view.name,
                        view.version,
                    );
                }
                None => {}
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::instant_labeled(
            EventKind::CacheMiss,
            Phase::CacheLookup,
            view.name,
            view.data.len() as u64,
        );
        let verdict = {
            let _reinspect_span = telemetry::span_labeled(Phase::Reinspect, view.name);
            array.summary_verdict()
        };
        self.insert(key, view.version, verdict);
        verdict
    }

    /// Inspects `view` with the infallible serial scan and memoizes the
    /// result — the final rung of the guard's retry ladder.
    pub fn verdict_serial(&self, view: &IndexArrayView<'_>) -> MonotoneVerdict {
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::instant_labeled(
            EventKind::CacheMiss,
            Phase::CacheLookup,
            view.name,
            view.data.len() as u64,
        );
        let verdict = {
            let _inspect_span = telemetry::span_labeled(Phase::Inspect, view.name);
            inspect_serial(view.data)
        };
        self.insert(Key::of(view), view.version, verdict);
        verdict
    }

    fn insert(&self, key: Key, version: u64, verdict: MonotoneVerdict) {
        match failpoint::hit("rtcheck.cache.insert") {
            Action::Proceed => {
                self.insert_noting_eviction(key, (version, verdict));
            }
            // Injected insert fault: skip memoization. The verdict
            // already computed stays valid; later lookups just re-inspect.
            Action::Error => {}
            // Injected memo corruption is modelled in the conservative
            // direction only: the stored verdict denies everything, so a
            // corrupted cache can cost performance (spurious serial
            // fallbacks) but never admit an unsound parallel run.
            Action::Corrupt => {
                let deny = MonotoneVerdict {
                    nonstrict: false,
                    strict: false,
                    first_violation: None,
                    len: verdict.len,
                };
                self.insert_noting_eviction(key, (version, deny));
            }
        }
    }

    fn insert_noting_eviction(&self, key: Key, entry: (u64, MonotoneVerdict)) {
        let evicted = lock(&self.entries).insert(key, entry);
        if let Some(victim) = evicted {
            telemetry::instant_labeled(
                EventKind::CacheEvict,
                Phase::CacheLookup,
                &victim.name,
                victim.len as u64,
            );
        }
    }

    /// Drops every memoized verdict (counters are kept).
    pub fn clear(&self) {
        lock(&self.entries).clear();
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: lock(&self.entries).evictions(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::MonotoneReq;

    fn view<'a>(name: &'a str, data: &'a [usize], version: u64) -> IndexArrayView<'a> {
        IndexArrayView {
            name,
            data,
            version,
            required: MonotoneReq::NonStrict,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = InspectorCache::new();
        let data = vec![0usize, 1, 2, 3];
        let v1 = cache.verdict(&view("b", &data, 0), None);
        let v2 = cache.verdict(&view("b", &data, 0), None);
        assert_eq!(v1, v2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 0));
    }

    #[test]
    fn version_bump_invalidates() {
        let cache = InspectorCache::new();
        let mut data = vec![0usize, 1, 2, 3];
        assert!(cache.verdict(&view("b", &data, 0), None).nonstrict);
        // Mutate in place (address and length unchanged) and bump version.
        data[2] = 0;
        let v = cache.verdict(&view("b", &data, 1), None);
        assert!(!v.nonstrict);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 2, 1));
        // The replaced entry now serves the new version.
        assert!(!cache.verdict(&view("b", &data, 1), None).nonstrict);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn distinct_arrays_do_not_collide() {
        let cache = InspectorCache::new();
        let good = vec![0usize, 1, 2];
        let bad = vec![2usize, 1, 0];
        assert!(cache.verdict(&view("g", &good, 0), None).nonstrict);
        assert!(!cache.verdict(&view("b", &bad, 0), None).nonstrict);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn verdict_cache_evicts_stalest_under_pressure() {
        let mut c: VerdictCache<u32, &str> = VerdictCache::with_capacity(3);
        assert!(c.insert(1, "a").is_none());
        assert!(c.insert(2, "b").is_none());
        assert!(c.insert(3, "c").is_none());
        assert_eq!(c.len(), 3);
        // Touch 1 and 2 so 3 is the stalest.
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&2), Some(&"b"));
        assert_eq!(c.insert(4, "d"), Some(3));
        assert_eq!((c.len(), c.evictions()), (3, 1));
        assert!(c.get(&3).is_none(), "victim is gone");
        assert_eq!(c.get(&4), Some(&"d"));
        // Replacing an existing key under a full cache evicts nothing.
        assert!(c.insert(4, "d2").is_none());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn verdict_cache_capacity_is_clamped_to_one() {
        let mut c: VerdictCache<u8, u8> = VerdictCache::with_capacity(0);
        assert_eq!(c.capacity(), 1);
        assert!(c.insert(1, 10).is_none());
        assert_eq!(c.insert(2, 20), Some(1));
        assert_eq!((c.len(), c.get(&2)), (1, Some(&20)));
    }

    #[test]
    fn inspector_memo_evicts_under_pressure_and_reinspects() {
        // A 2-entry memo driven with 3 distinct arrays: the stalest entry
        // is evicted, and looking it up again is a miss (re-inspection),
        // not a stale answer.
        let cache = InspectorCache::bounded(2);
        let a = vec![0usize, 1, 2];
        let b = vec![0usize, 2, 4];
        let c = vec![5usize, 6, 7];
        cache.verdict(&view("a", &a, 0), None);
        cache.verdict(&view("b", &b, 0), None);
        cache.verdict(&view("c", &c, 0), None); // evicts "a"
        let s = cache.stats();
        assert_eq!((s.misses, s.evictions), (3, 1));
        // "a" was evicted: this lookup must re-inspect, not hit.
        cache.verdict(&view("a", &a, 0), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 4));
        // "c" is still resident and hits.
        cache.verdict(&view("c", &c, 0), None);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn clear_forgets_entries_but_keeps_counters() {
        let cache = InspectorCache::new();
        let data = vec![0usize, 1];
        cache.verdict(&view("b", &data, 0), None);
        cache.clear();
        cache.verdict(&view("b", &data, 0), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
    }
}
