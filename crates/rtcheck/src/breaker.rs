//! A per-kernel circuit breaker over the parallel path.
//!
//! A kernel whose parallel variant keeps faulting should stop paying the
//! fault-recovery cost (reset + serial rerun) on every invocation: after
//! [`CircuitBreaker::threshold`] consecutive faults the breaker *opens*
//! and the kernel is pinned to the serial path for a cooldown measured
//! in admission attempts. When the cooldown is spent the breaker goes
//! *half-open* and admits exactly one trial: a clean parallel run closes
//! it again, another fault re-opens it for a fresh cooldown.
//!
//! ```text
//!           fault ×threshold              cooldown spent
//!  Closed ───────────────────▶ Open ─────────────────────▶ HalfOpen
//!    ▲                          ▲                             │  │
//!    │          fault           └─────────────────────────────┘  │
//!    └───────────────────────────────────────────────────────────┘
//!                            success
//! ```
//!
//! Cooldown is counted in *denied admissions*, not wall-clock time, so
//! behaviour is deterministic under test and in the chaos harness.

use std::collections::HashMap;
use std::sync::Mutex;
use subsub_telemetry::{breaker_code, instant_labeled, EventKind, Phase};

/// Emits a `breaker_transition` flight-recorder instant for `kernel`.
fn note_transition(kernel: &str, code: u64) {
    instant_labeled(
        EventKind::BreakerTransition,
        Phase::GuardDecide,
        kernel,
        code,
    );
}

/// Breaker position for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Parallel admitted; `faults` consecutive faults recorded so far.
    Closed {
        /// Consecutive parallel-path faults since the last success.
        faults: u32,
    },
    /// Parallel denied; `remaining` more denials before a trial.
    Open {
        /// Admission attempts left to deny before going half-open.
        remaining: u32,
    },
    /// One trial admission is in flight; its outcome decides the state.
    HalfOpen,
}

/// Consecutive-fault circuit breaker keyed by kernel name.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u32,
    states: Mutex<HashMap<String, BreakerState>>,
}

/// Parallel-path faults that open the breaker. Matches one faulting
/// invocation plus its failed retry, with one strike to spare.
pub const DEFAULT_THRESHOLD: u32 = 3;
/// Admissions denied while open before a half-open trial.
pub const DEFAULT_COOLDOWN: u32 = 8;

impl Default for CircuitBreaker {
    fn default() -> CircuitBreaker {
        CircuitBreaker::new(DEFAULT_THRESHOLD, DEFAULT_COOLDOWN)
    }
}

impl CircuitBreaker {
    /// A breaker opening after `threshold` consecutive faults and
    /// holding for `cooldown` denied admissions. Both are clamped to at
    /// least 1.
    pub fn new(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
            states: Mutex::new(HashMap::new()),
        }
    }

    /// Consecutive faults that open the breaker.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Denied admissions per open period.
    pub fn cooldown(&self) -> u32 {
        self.cooldown
    }

    /// Asks to run `kernel` on the parallel path. `Ok(())` admits (and,
    /// from open, may grant the half-open trial); `Err(remaining)`
    /// denies, reporting how many further denials precede a trial.
    pub fn admit(&self, kernel: &str) -> Result<(), u32> {
        let mut states = lock(&self.states);
        let state = states
            .entry(kernel.to_string())
            .or_insert(BreakerState::Closed { faults: 0 });
        match *state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open { remaining } => {
                if remaining <= 1 {
                    *state = BreakerState::HalfOpen;
                    note_transition(kernel, breaker_code::HALF_OPEN);
                } else {
                    *state = BreakerState::Open {
                        remaining: remaining - 1,
                    };
                }
                Err(remaining.saturating_sub(1))
            }
        }
    }

    /// Records a parallel-path fault for `kernel`. Returns `true` when
    /// this fault is the one that opened the breaker.
    pub fn record_fault(&self, kernel: &str) -> bool {
        let mut states = lock(&self.states);
        let state = states
            .entry(kernel.to_string())
            .or_insert(BreakerState::Closed { faults: 0 });
        match *state {
            BreakerState::Closed { faults } => {
                let faults = faults + 1;
                if faults >= self.threshold {
                    *state = BreakerState::Open {
                        remaining: self.cooldown,
                    };
                    note_transition(kernel, breaker_code::OPEN);
                    true
                } else {
                    *state = BreakerState::Closed { faults };
                    false
                }
            }
            // The half-open trial faulted: straight back to open.
            BreakerState::HalfOpen => {
                *state = BreakerState::Open {
                    remaining: self.cooldown,
                };
                note_transition(kernel, breaker_code::OPEN);
                true
            }
            // Already open (a fault recorded by a racing path): keep it.
            BreakerState::Open { .. } => false,
        }
    }

    /// Records a clean parallel run for `kernel`; closes the breaker and
    /// clears the consecutive-fault count.
    pub fn record_success(&self, kernel: &str) {
        let prior =
            lock(&self.states).insert(kernel.to_string(), BreakerState::Closed { faults: 0 });
        // Only an actual position change is a transition worth recording
        // (every clean parallel run lands here).
        if !matches!(prior, None | Some(BreakerState::Closed { faults: 0 })) {
            note_transition(kernel, breaker_code::CLOSED);
        }
    }

    /// Current position for `kernel` (closed with zero faults when the
    /// kernel has never been seen).
    pub fn state(&self, kernel: &str) -> BreakerState {
        lock(&self.states)
            .get(kernel)
            .copied()
            .unwrap_or(BreakerState::Closed { faults: 0 })
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_faults() {
        let b = CircuitBreaker::new(3, 4);
        assert!(!b.record_fault("k"));
        assert!(!b.record_fault("k"));
        assert_eq!(b.state("k"), BreakerState::Closed { faults: 2 });
        assert!(b.record_fault("k"), "third fault opens");
        assert_eq!(b.state("k"), BreakerState::Open { remaining: 4 });
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(3, 4);
        b.record_fault("k");
        b.record_fault("k");
        b.record_success("k");
        assert!(!b.record_fault("k"), "count restarted after success");
        assert_eq!(b.state("k"), BreakerState::Closed { faults: 1 });
    }

    #[test]
    fn cooldown_denials_then_half_open_trial() {
        let b = CircuitBreaker::new(1, 3);
        b.record_fault("k");
        assert_eq!(b.admit("k"), Err(2));
        assert_eq!(b.admit("k"), Err(1));
        assert_eq!(b.admit("k"), Err(0), "last denial arms the trial");
        assert_eq!(b.state("k"), BreakerState::HalfOpen);
        assert_eq!(b.admit("k"), Ok(()), "half-open admits the trial");
    }

    #[test]
    fn trial_outcome_decides_the_next_state() {
        let b = CircuitBreaker::new(1, 1);
        b.record_fault("k");
        let _ = b.admit("k"); // spends the cooldown, goes half-open
        assert!(b.record_fault("k"), "faulted trial re-opens");
        assert_eq!(b.state("k"), BreakerState::Open { remaining: 1 });
        let _ = b.admit("k");
        b.record_success("k");
        assert_eq!(b.state("k"), BreakerState::Closed { faults: 0 });
    }

    #[test]
    fn kernels_are_independent() {
        let b = CircuitBreaker::new(1, 2);
        b.record_fault("bad");
        assert!(b.admit("bad").is_err());
        assert!(b.admit("good").is_ok());
    }
}
