//! Guarded execution: run parallel when the evidence admits it, degrade
//! to serial otherwise.
//!
//! A [`GuardedExecutor`] bundles the compiled scalar check emitted by the
//! dependence test with the inspector cache. Per invocation it evaluates
//! the check against the kernel's scalar [`Bindings`] and each declared
//! index array against its required monotonicity (served from the cache
//! when the array is unchanged), then dispatches to the parallel or
//! serial closure. Every decision is counted, so a harness can assert
//! that both paths were actually taken and that memoization worked.

use crate::bindings::Bindings;
use crate::cache::{CacheStats, InspectorCache};
use crate::compile::{CompileError, CompiledCheck};
use crate::expr::CheckExpr;
use crate::inspect::IndexArrayView;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use subsub_omprt::ThreadPool;

/// Which variant a guarded invocation ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardPath {
    /// All guards passed; the parallel variant ran.
    Parallel,
    /// At least one guard failed; the serial variant ran.
    Serial,
}

/// The decision for one invocation, with the reason it fell back (if it
/// did).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardVerdict {
    /// The variant to run.
    pub path: GuardPath,
    /// Why the serial path was chosen, when it was. `None` on the
    /// parallel path.
    pub reason: Option<String>,
}

impl GuardVerdict {
    fn parallel() -> GuardVerdict {
        GuardVerdict {
            path: GuardPath::Parallel,
            reason: None,
        }
    }

    fn serial(reason: String) -> GuardVerdict {
        GuardVerdict {
            path: GuardPath::Serial,
            reason: Some(reason),
        }
    }
}

/// Cumulative decision counters for one executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStats {
    /// Invocations dispatched to the parallel variant.
    pub parallel_runs: u64,
    /// Invocations that fell back to serial.
    pub serial_fallbacks: u64,
    /// Scalar check failures among the fallbacks.
    pub check_failures: u64,
    /// Inspection failures (array not monotone enough) among the
    /// fallbacks.
    pub inspection_failures: u64,
    /// Inspector-cache behaviour (shared across arrays).
    pub cache: CacheStats,
}

/// Runs a kernel under its runtime guards.
#[derive(Debug)]
pub struct GuardedExecutor {
    check: Option<CompiledCheck>,
    cache: Arc<InspectorCache>,
    parallel_runs: AtomicU64,
    serial_fallbacks: AtomicU64,
    check_failures: AtomicU64,
    inspection_failures: AtomicU64,
}

impl GuardedExecutor {
    /// Builds an executor for a plan's (optional) scalar check. A plan
    /// without a check admits the parallel path unconditionally — exactly
    /// like a pragma without an `if (...)` clause.
    pub fn new(check: Option<&CheckExpr>) -> Result<GuardedExecutor, CompileError> {
        let compiled = check.map(CompiledCheck::compile).transpose()?;
        Ok(GuardedExecutor {
            check: compiled,
            cache: Arc::new(InspectorCache::new()),
            parallel_runs: AtomicU64::new(0),
            serial_fallbacks: AtomicU64::new(0),
            check_failures: AtomicU64::new(0),
            inspection_failures: AtomicU64::new(0),
        })
    }

    /// Builds an executor sharing an existing inspector cache (several
    /// kernels inspecting the same structure can pool their verdicts).
    pub fn with_cache(
        check: Option<&CheckExpr>,
        cache: Arc<InspectorCache>,
    ) -> Result<GuardedExecutor, CompileError> {
        let mut e = GuardedExecutor::new(check)?;
        e.cache = cache;
        Ok(e)
    }

    /// The shared inspector cache.
    pub fn cache(&self) -> &Arc<InspectorCache> {
        &self.cache
    }

    /// Evaluates every guard and records the decision, without running
    /// anything.
    pub fn decide(
        &self,
        bindings: &Bindings,
        arrays: &[IndexArrayView<'_>],
        pool: Option<&ThreadPool>,
    ) -> GuardVerdict {
        let verdict = self.evaluate(bindings, arrays, pool);
        match verdict.path {
            GuardPath::Parallel => {
                self.parallel_runs.fetch_add(1, Ordering::Relaxed);
            }
            GuardPath::Serial => {
                self.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        verdict
    }

    fn evaluate(
        &self,
        bindings: &Bindings,
        arrays: &[IndexArrayView<'_>],
        pool: Option<&ThreadPool>,
    ) -> GuardVerdict {
        if let Some(check) = &self.check {
            match check.eval(bindings) {
                Ok(true) => {}
                Ok(false) => {
                    self.check_failures.fetch_add(1, Ordering::Relaxed);
                    return GuardVerdict::serial("runtime check evaluated to false".into());
                }
                Err(e) => {
                    self.check_failures.fetch_add(1, Ordering::Relaxed);
                    return GuardVerdict::serial(format!("runtime check not evaluable: {e}"));
                }
            }
        }
        for view in arrays {
            let verdict = self.cache.verdict(view, pool);
            if !verdict.satisfies(view.required) {
                self.inspection_failures.fetch_add(1, Ordering::Relaxed);
                let at = verdict
                    .first_violation
                    .map(|i| format!(" (first violation at index {i})"))
                    .unwrap_or_default();
                return GuardVerdict::serial(format!(
                    "index array {} is not {}{}",
                    view.name, view.required, at
                ));
            }
        }
        GuardVerdict::parallel()
    }

    /// Decides, then runs the admitted variant. Both closures receive
    /// nothing and return the kernel's output value; the caller keeps
    /// ownership of all state.
    pub fn run<T>(
        &self,
        bindings: &Bindings,
        arrays: &[IndexArrayView<'_>],
        pool: Option<&ThreadPool>,
        parallel: impl FnOnce() -> T,
        serial: impl FnOnce() -> T,
    ) -> (T, GuardVerdict) {
        let verdict = self.decide(bindings, arrays, pool);
        let out = match verdict.path {
            GuardPath::Parallel => parallel(),
            GuardPath::Serial => serial(),
        };
        (out, verdict)
    }

    /// Snapshot of the decision counters.
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            parallel_runs: self.parallel_runs.load(Ordering::Relaxed),
            serial_fallbacks: self.serial_fallbacks.load(Ordering::Relaxed),
            check_failures: self.check_failures.load(Ordering::Relaxed),
            inspection_failures: self.inspection_failures.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_check;
    use crate::inspect::MonotoneReq;

    fn amgmk_bindings(num_rownnz: i64, irownnz_max: i64) -> Bindings {
        let mut b = Bindings::new();
        b.set_var("num_rownnz", num_rownnz)
            .set_post_max("irownnz", irownnz_max);
        b
    }

    #[test]
    fn no_check_admits_parallel() {
        let e = GuardedExecutor::new(None).unwrap();
        let v = e.decide(&Bindings::new(), &[], None);
        assert_eq!(v.path, GuardPath::Parallel);
        assert_eq!(e.stats().parallel_runs, 1);
    }

    #[test]
    fn failing_check_falls_back() {
        let c = parse_check("num_rownnz - 1 <= irownnz_max").unwrap();
        let e = GuardedExecutor::new(Some(&c)).unwrap();
        let v = e.decide(&amgmk_bindings(200, 100), &[], None);
        assert_eq!(v.path, GuardPath::Serial);
        assert!(v.reason.unwrap().contains("false"));
        let s = e.stats();
        assert_eq!((s.serial_fallbacks, s.check_failures), (1, 1));
    }

    #[test]
    fn unbound_symbol_falls_back_instead_of_panicking() {
        let c = parse_check("num_rownnz - 1 <= irownnz_max").unwrap();
        let e = GuardedExecutor::new(Some(&c)).unwrap();
        let v = e.decide(&Bindings::new(), &[], None);
        assert_eq!(v.path, GuardPath::Serial);
        assert!(v.reason.unwrap().contains("not evaluable"));
    }

    #[test]
    fn failing_inspection_falls_back_with_location() {
        let e = GuardedExecutor::new(None).unwrap();
        let data = vec![0usize, 5, 3];
        let view = IndexArrayView {
            name: "b",
            data: &data,
            version: 0,
            required: MonotoneReq::NonStrict,
        };
        let v = e.decide(&Bindings::new(), &[view], None);
        assert_eq!(v.path, GuardPath::Serial);
        assert!(v.reason.unwrap().contains("index 2"));
        assert_eq!(e.stats().inspection_failures, 1);
    }

    #[test]
    fn run_dispatches_and_cache_hits_accumulate() {
        let c = parse_check("num_rownnz - 1 <= irownnz_max").unwrap();
        let e = GuardedExecutor::new(Some(&c)).unwrap();
        let data = vec![0usize, 1, 2, 3];
        let view = IndexArrayView {
            name: "b",
            data: &data,
            version: 0,
            required: MonotoneReq::Strict,
        };
        let b = amgmk_bindings(4, 4);
        let (out, v) = e.run(&b, &[view], None, || "par", || "ser");
        assert_eq!((out, v.path), ("par", GuardPath::Parallel));
        let (out, _) = e.run(&b, &[view], None, || "par", || "ser");
        assert_eq!(out, "par");
        let s = e.stats();
        assert_eq!(s.parallel_runs, 2);
        assert!(s.cache.hits >= 1, "second run must be served from cache");
    }

    #[test]
    fn strict_requirement_rejects_plateau() {
        let e = GuardedExecutor::new(None).unwrap();
        let data = vec![0usize, 1, 1, 2];
        let strict = IndexArrayView {
            name: "b",
            data: &data,
            version: 0,
            required: MonotoneReq::Strict,
        };
        assert_eq!(
            e.decide(&Bindings::new(), &[strict], None).path,
            GuardPath::Serial
        );
        let nonstrict = IndexArrayView {
            required: MonotoneReq::NonStrict,
            ..strict
        };
        assert_eq!(
            e.decide(&Bindings::new(), &[nonstrict], None).path,
            GuardPath::Parallel
        );
    }
}
