//! Guarded execution: run parallel when the evidence admits it, degrade
//! to serial otherwise — and degrade *gracefully* when the parallel
//! machinery itself faults.
//!
//! A [`GuardedExecutor`] bundles the compiled scalar check emitted by the
//! dependence test with the inspector cache and a per-kernel
//! [`CircuitBreaker`]. Per invocation it walks a fixed degradation
//! ladder:
//!
//! 1. **breaker** — a kernel with too many recent parallel-path faults
//!    is pinned to serial for a cooldown ([`ExecError::BreakerOpen`]);
//! 2. **scalar check** — evaluated against the kernel's [`Bindings`];
//!    false or unevaluable denies ([`ExecError::CheckFailed`] /
//!    [`ExecError::CheckUnevaluable`]);
//! 3. **inspection** — each declared index array against its required
//!    monotonicity, served from the cache when unchanged. A *faulted*
//!    inspection (worker died, injected panic) is retried once, then
//!    rescued by the infallible serial scan — only a genuine
//!    [`ExecError::NotMonotone`] verdict denies;
//! 4. **tamper gate** — at dispatch, any index array whose write-version
//!    moved since its inspection denies ([`ExecError::TamperDetected`]);
//! 5. **parallel attempt** — a faulting parallel variant gets one retry
//!    after the caller's `recover` hook (transient faults only), then
//!    the invocation finishes on the recovered serial path
//!    ([`ExecError::ParallelFault`]), feeding the breaker.
//!
//! Every decision and recovery action is counted in [`GuardStats`], so a
//! harness can assert that both paths were actually taken, that
//! memoization worked, and that the breaker tripped when it should.

use crate::bindings::Bindings;
use crate::breaker::{BreakerState, CircuitBreaker};
use crate::cache::{CacheStats, InspectorCache};
use crate::compile::{CompileError, CompiledCheck};
use crate::error::ExecError;
use crate::expr::CheckExpr;
use crate::inspect::{IndexArrayView, MonotoneReq, MonotoneVerdict};
use crate::validate::ValidatedIndexArray;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use subsub_failpoint::{self as failpoint, Action};
use subsub_omprt::{CancelToken, ThreadPool};
use subsub_telemetry as telemetry;
use subsub_telemetry::{verdict_code, EventKind, Phase};

/// Which variant a guarded invocation ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardPath {
    /// All guards passed; the parallel variant ran.
    Parallel,
    /// At least one guard failed; the serial variant ran.
    Serial,
}

/// The decision for one invocation, with the classified reason it fell
/// back (if it did).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardVerdict {
    /// The variant to run.
    pub path: GuardPath,
    /// Why the serial path was chosen, when it was. `None` on the
    /// parallel path.
    pub reason: Option<ExecError>,
}

/// Emits the `guard_verdict` flight-recorder instant for one decision.
fn record_verdict(kernel: &str, verdict: &GuardVerdict) {
    telemetry::instant_labeled(
        EventKind::GuardVerdict,
        Phase::GuardDecide,
        kernel,
        verdict_code(
            verdict.path == GuardPath::Parallel,
            verdict.reason.as_ref().map_or(0, ExecError::reason_class),
        ),
    );
}

impl GuardVerdict {
    fn parallel() -> GuardVerdict {
        GuardVerdict {
            path: GuardPath::Parallel,
            reason: None,
        }
    }

    fn serial(reason: ExecError) -> GuardVerdict {
        GuardVerdict {
            path: GuardPath::Serial,
            reason: Some(reason),
        }
    }
}

/// A phase-1 decision ([`GuardedExecutor::decide_recoverable`]) carrying
/// what phase 2 ([`GuardedExecutor::execute_admitted`]) needs: the
/// verdict plus the write-versions the inspection evidence was based on,
/// for the dispatch-time tamper gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The guard verdict (no path counters recorded yet — phase 2 counts
    /// what actually ran).
    pub verdict: GuardVerdict,
    /// `(array name, version)` for every inspected index array.
    pub inspected: Vec<(String, u64)>,
}

/// Cumulative decision counters for one executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardStats {
    /// Invocations dispatched to the parallel variant.
    pub parallel_runs: u64,
    /// Invocations that fell back to serial.
    pub serial_fallbacks: u64,
    /// Scalar check failures among the fallbacks.
    pub check_failures: u64,
    /// Inspection failures (array not monotone enough) among the
    /// fallbacks.
    pub inspection_failures: u64,
    /// Faulted fork-join regions observed (inspection scans and parallel
    /// attempts; includes faults that a retry then recovered).
    pub region_faults: u64,
    /// Bounded retries attempted after a transient fault.
    pub retries: u64,
    /// Retries whose second attempt succeeded.
    pub retry_successes: u64,
    /// Index arrays whose version drifted between inspection and
    /// dispatch (each denied the parallel path).
    pub tamper_detections: u64,
    /// Index arrays rejected at the ingestion trust boundary (failed
    /// re-verification in [`GuardedExecutor::decide_ingested`]).
    pub validation_rejections: u64,
    /// Times a fault opened a kernel's circuit breaker.
    pub breaker_trips: u64,
    /// Invocations denied up front by an open breaker.
    pub breaker_short_circuits: u64,
    /// Invocations abandoned mid-ladder because their cancel token
    /// tripped (expired deadline or abandoned waiter).
    pub cancelled_invocations: u64,
    /// Inspector-cache behaviour (shared across arrays).
    pub cache: CacheStats,
}

/// Runs a kernel under its runtime guards.
#[derive(Debug)]
pub struct GuardedExecutor {
    check: Option<CompiledCheck>,
    cache: Arc<InspectorCache>,
    breaker: CircuitBreaker,
    parallel_runs: AtomicU64,
    serial_fallbacks: AtomicU64,
    check_failures: AtomicU64,
    inspection_failures: AtomicU64,
    region_faults: AtomicU64,
    retries: AtomicU64,
    retry_successes: AtomicU64,
    tamper_detections: AtomicU64,
    validation_rejections: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_short_circuits: AtomicU64,
    cancelled_invocations: AtomicU64,
}

impl GuardedExecutor {
    /// Builds an executor for a plan's (optional) scalar check. A plan
    /// without a check admits the parallel path unconditionally — exactly
    /// like a pragma without an `if (...)` clause.
    pub fn new(check: Option<&CheckExpr>) -> Result<GuardedExecutor, CompileError> {
        let compiled = check.map(CompiledCheck::compile).transpose()?;
        Ok(GuardedExecutor {
            check: compiled,
            cache: Arc::new(InspectorCache::new()),
            breaker: CircuitBreaker::default(),
            parallel_runs: AtomicU64::new(0),
            serial_fallbacks: AtomicU64::new(0),
            check_failures: AtomicU64::new(0),
            inspection_failures: AtomicU64::new(0),
            region_faults: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            retry_successes: AtomicU64::new(0),
            tamper_detections: AtomicU64::new(0),
            validation_rejections: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_short_circuits: AtomicU64::new(0),
            cancelled_invocations: AtomicU64::new(0),
        })
    }

    /// Builds an executor sharing an existing inspector cache (several
    /// kernels inspecting the same structure can pool their verdicts).
    pub fn with_cache(
        check: Option<&CheckExpr>,
        cache: Arc<InspectorCache>,
    ) -> Result<GuardedExecutor, CompileError> {
        let mut e = GuardedExecutor::new(check)?;
        e.cache = cache;
        Ok(e)
    }

    /// Replaces the default circuit breaker (threshold 3, cooldown 8)
    /// with a custom-tuned one.
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> GuardedExecutor {
        self.breaker = breaker;
        self
    }

    /// The shared inspector cache.
    pub fn cache(&self) -> &Arc<InspectorCache> {
        &self.cache
    }

    /// The per-kernel circuit breaker position (for harness assertions).
    pub fn breaker_state(&self, kernel: &str) -> BreakerState {
        self.breaker.state(kernel)
    }

    /// Evaluates every guard and records the decision, without running
    /// anything. The original one-phase entry point: no breaker, no
    /// tamper gate — use [`GuardedExecutor::decide_recoverable`] +
    /// [`GuardedExecutor::execute_admitted`] for the fault-tolerant path.
    pub fn decide(
        &self,
        bindings: &Bindings,
        arrays: &[IndexArrayView<'_>],
        pool: Option<&ThreadPool>,
    ) -> GuardVerdict {
        let _decide_span = telemetry::span(Phase::GuardDecide, 0);
        let (verdict, _) = self.evaluate(bindings, arrays, pool);
        record_verdict("", &verdict);
        match verdict.path {
            GuardPath::Parallel => {
                self.parallel_runs.fetch_add(1, Ordering::Relaxed);
            }
            GuardPath::Serial => {
                self.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        verdict
    }

    /// Phase 1 of fault-tolerant guarded execution: breaker admission,
    /// then every guard. Path counters are *not* recorded here — phase 2
    /// records what actually ran, which can differ (tamper, faults).
    pub fn decide_recoverable(
        &self,
        kernel: &str,
        bindings: &Bindings,
        arrays: &[IndexArrayView<'_>],
        pool: Option<&ThreadPool>,
    ) -> Decision {
        let _decide_span = telemetry::span_labeled(Phase::GuardDecide, kernel);
        if let Err(remaining) = self.breaker.admit(kernel) {
            self.breaker_short_circuits.fetch_add(1, Ordering::Relaxed);
            let verdict = GuardVerdict::serial(ExecError::BreakerOpen { remaining });
            record_verdict(kernel, &verdict);
            return Decision {
                verdict,
                inspected: Vec::new(),
            };
        }
        let (verdict, inspected) = self.evaluate(bindings, arrays, pool);
        record_verdict(kernel, &verdict);
        Decision { verdict, inspected }
    }

    /// Phase 1 over *ingested* index arrays: the trust-boundary form of
    /// [`GuardedExecutor::decide_recoverable`]. Before any inspection,
    /// every [`ValidatedIndexArray`] is re-verified (checksum + domain) —
    /// an array a writer mutated without going through the boundary, or
    /// that somehow holds an out-of-domain subscript, denies up front
    /// with [`ExecError::InvalidIndexArray`]. Only arrays that pass are
    /// inspected, so the `unsafe` gather/scatter downstream never
    /// dispatches on unvalidated subscripts.
    ///
    /// Inspection here is served from the arrays' block summaries
    /// (O(blocks) per array, no element rescans, no thread pool): the
    /// `verify()` that just passed recomputed the checksum from raw
    /// data, proving the contents — and therefore the summaries the
    /// boundary keeps in lockstep with them — are exactly the last
    /// validated state, which is the precondition
    /// [`InspectorCache::verdict_ingested`] needs.
    pub fn decide_ingested(
        &self,
        kernel: &str,
        bindings: &Bindings,
        arrays: &[(&ValidatedIndexArray, MonotoneReq)],
        _pool: Option<&ThreadPool>,
    ) -> Decision {
        let _decide_span = telemetry::span_labeled(Phase::GuardDecide, kernel);
        if let Err(remaining) = self.breaker.admit(kernel) {
            self.breaker_short_circuits.fetch_add(1, Ordering::Relaxed);
            let verdict = GuardVerdict::serial(ExecError::BreakerOpen { remaining });
            record_verdict(kernel, &verdict);
            return Decision {
                verdict,
                inspected: Vec::new(),
            };
        }
        for (array, _) in arrays {
            if let Err(e) = array.verify() {
                self.validation_rejections.fetch_add(1, Ordering::Relaxed);
                let verdict = GuardVerdict::serial(e.into());
                record_verdict(kernel, &verdict);
                return Decision {
                    verdict,
                    inspected: Vec::new(),
                };
            }
        }
        if let Some(denied) = self.eval_check(bindings) {
            record_verdict(kernel, &denied);
            return Decision {
                verdict: denied,
                inspected: Vec::new(),
            };
        }
        let mut inspected = Vec::with_capacity(arrays.len());
        for (array, required) in arrays {
            let verdict = self.cache.verdict_ingested(array, *required);
            inspected.push((array.name().to_string(), array.version()));
            if !verdict.satisfies(*required) {
                self.inspection_failures.fetch_add(1, Ordering::Relaxed);
                let denied = GuardVerdict::serial(ExecError::NotMonotone {
                    array: array.name().to_string(),
                    required: *required,
                    first_violation: verdict.first_violation,
                });
                record_verdict(kernel, &denied);
                return Decision {
                    verdict: denied,
                    inspected,
                };
            }
        }
        let verdict = GuardVerdict::parallel();
        record_verdict(kernel, &verdict);
        Decision { verdict, inspected }
    }

    /// Phase 2: runs the variant phase 1 admitted, surviving parallel
    /// faults. `current_versions` re-reads each index array's
    /// write-version at dispatch time (tamper gate); `parallel` attempts
    /// the parallel variant, classifying its own faults; `recover`
    /// restores kernel state after a faulted attempt (it runs before any
    /// retry and before the serial rescue); `serial` is the infallible
    /// last rung.
    ///
    /// Returns the output plus the classified reason the invocation did
    /// not finish parallel (`None` when it did).
    pub fn execute_admitted<T>(
        &self,
        kernel: &str,
        decision: &Decision,
        current_versions: &[(&str, u64)],
        parallel: impl FnMut() -> Result<T, ExecError>,
        recover: impl FnMut(),
        serial: impl FnOnce() -> T,
    ) -> (T, Option<ExecError>) {
        match self.execute_admitted_cancellable(
            kernel,
            decision,
            current_versions,
            None,
            parallel,
            recover,
            serial,
        ) {
            Ok(out) => out,
            // Without a token, cancellation is unobservable; the ladder
            // always bottoms out in the infallible serial rung.
            Err(_) => unreachable!("uncancellable invocation reported Cancelled"),
        }
    }

    /// [`GuardedExecutor::execute_admitted`] with a cooperative cancel
    /// token checked at every rung boundary: before the serial-decision
    /// short-circuit, before the parallel attempt, before any retry, and
    /// before the serial rescue. A tripped token abandons the whole
    /// invocation with [`ExecError::Cancelled`] — including the serial
    /// rung, which plain `execute_admitted` treats as infallible — so a
    /// request whose waiter is gone stops consuming pool time at the
    /// next boundary. `recover` still runs before the abort, leaving the
    /// kernel instance reusable.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_admitted_cancellable<T>(
        &self,
        kernel: &str,
        decision: &Decision,
        current_versions: &[(&str, u64)],
        cancel: Option<&CancelToken>,
        mut parallel: impl FnMut() -> Result<T, ExecError>,
        mut recover: impl FnMut(),
        serial: impl FnOnce() -> T,
    ) -> Result<(T, Option<ExecError>), ExecError> {
        let _dispatch_span = telemetry::span_labeled(Phase::Dispatch, kernel);
        let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
        let abort = || {
            self.cancelled_invocations.fetch_add(1, Ordering::Relaxed);
            ExecError::Cancelled
        };
        if cancelled() {
            return Err(abort());
        }
        if decision.verdict.path == GuardPath::Serial {
            self.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
            return Ok((serial(), decision.verdict.reason.clone()));
        }
        // Tamper gate: the inspection evidence is only as good as the
        // versions it was computed at. Any drift since phase 1 means a
        // concurrent writer touched an index array — deny.
        for (name, at_decision) in &decision.inspected {
            let current = current_versions
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v);
            if current != Some(*at_decision) {
                self.tamper_detections.fetch_add(1, Ordering::Relaxed);
                self.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
                let reason = ExecError::TamperDetected {
                    array: name.clone(),
                };
                return Ok((serial(), Some(reason)));
            }
        }
        // Chaos site: an Error arm models a fault detected at the
        // dispatch boundary itself (before the kernel runs).
        let mut fault = match failpoint::hit("rtcheck.guard.dispatch") {
            Action::Error | Action::Corrupt => Some(ExecError::ParallelFault {
                detail: "injected dispatch fault".into(),
            }),
            Action::Proceed => None,
        };
        if fault.is_none() {
            if cancelled() {
                return Err(abort());
            }
            match parallel() {
                Ok(out) if !cancelled() => {
                    self.parallel_runs.fetch_add(1, Ordering::Relaxed);
                    self.breaker.record_success(kernel);
                    return Ok((out, None));
                }
                // A cancelled run that "succeeded" only stopped claiming
                // iterations early — the output is partial. Restore the
                // instance and abandon; never surface partial work.
                Ok(_) => {
                    recover();
                    return Err(abort());
                }
                Err(e) => fault = Some(e),
            }
        }
        // `fault` is always `Some` here; the loop shape keeps the
        // borrow-checker happy without unwraps.
        if let Some(first) = fault.take() {
            if matches!(first, ExecError::Cancelled) || cancelled() {
                recover();
                return Err(abort());
            }
            self.note_fault(kernel);
            if first.transient() {
                self.retries.fetch_add(1, Ordering::Relaxed);
                recover();
                match parallel() {
                    Ok(out) if !cancelled() => {
                        self.retry_successes.fetch_add(1, Ordering::Relaxed);
                        self.parallel_runs.fetch_add(1, Ordering::Relaxed);
                        self.breaker.record_success(kernel);
                        return Ok((out, None));
                    }
                    Ok(_) => {
                        recover();
                        return Err(abort());
                    }
                    Err(second) => {
                        self.note_fault(kernel);
                        fault = Some(second);
                    }
                }
            } else {
                fault = Some(first);
            }
        }
        // Final rung: restore state and finish serially. The serial
        // variant is the semantics-defining golden path, so the output
        // is bit-identical to a never-parallelized run.
        recover();
        if cancelled() {
            return Err(abort());
        }
        self.serial_fallbacks.fetch_add(1, Ordering::Relaxed);
        Ok((serial(), fault))
    }

    fn note_fault(&self, kernel: &str) {
        self.region_faults.fetch_add(1, Ordering::Relaxed);
        if self.breaker.record_fault(kernel) {
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evaluates the compiled scalar check (if any); `Some(verdict)` is
    /// a denial with the classified reason, `None` admits.
    fn eval_check(&self, bindings: &Bindings) -> Option<GuardVerdict> {
        let check = self.check.as_ref()?;
        // Chaos site: Corrupt flips the evaluation toward the
        // conservative answer (deny); Error makes it unevaluable.
        // Neither can ever admit a run the real check would deny.
        let injected = match failpoint::hit("rtcheck.check.eval") {
            Action::Corrupt => Some(Err("injected corrupt evaluation (conservative deny)")),
            Action::Error => Some(Ok("injected evaluation fault")),
            Action::Proceed => None,
        };
        if let Some(inj) = injected {
            self.check_failures.fetch_add(1, Ordering::Relaxed);
            let reason = match inj {
                Err(d) => ExecError::CheckFailed { detail: d.into() },
                Ok(d) => ExecError::CheckUnevaluable { detail: d.into() },
            };
            return Some(GuardVerdict::serial(reason));
        }
        match check.eval(bindings) {
            Ok(true) => None,
            Ok(false) => {
                self.check_failures.fetch_add(1, Ordering::Relaxed);
                Some(GuardVerdict::serial(ExecError::CheckFailed {
                    detail: "parallelization precondition does not hold".into(),
                }))
            }
            Err(e) => {
                self.check_failures.fetch_add(1, Ordering::Relaxed);
                Some(GuardVerdict::serial(ExecError::CheckUnevaluable {
                    detail: e.to_string(),
                }))
            }
        }
    }

    fn evaluate(
        &self,
        bindings: &Bindings,
        arrays: &[IndexArrayView<'_>],
        pool: Option<&ThreadPool>,
    ) -> (GuardVerdict, Vec<(String, u64)>) {
        if let Some(denied) = self.eval_check(bindings) {
            return (denied, Vec::new());
        }
        let mut inspected = Vec::with_capacity(arrays.len());
        for view in arrays {
            let verdict = self.inspect_with_retry(view, pool);
            inspected.push((view.name.to_string(), view.version));
            if !verdict.satisfies(view.required) {
                self.inspection_failures.fetch_add(1, Ordering::Relaxed);
                return (
                    GuardVerdict::serial(ExecError::NotMonotone {
                        array: view.name.to_string(),
                        required: view.required,
                        first_violation: verdict.first_violation,
                    }),
                    inspected,
                );
            }
        }
        (GuardVerdict::parallel(), inspected)
    }

    /// The inspection rung of the ladder: cached parallel scan, one
    /// retry on a region fault (inspection is read-only, so a rerun is
    /// always sound), then the infallible serial scan. Always produces a
    /// genuine verdict; faults are counted, never memoized.
    fn inspect_with_retry(
        &self,
        view: &IndexArrayView<'_>,
        pool: Option<&ThreadPool>,
    ) -> MonotoneVerdict {
        match self.cache.try_verdict(view, pool) {
            Ok(v) => v,
            Err(_) => {
                self.region_faults.fetch_add(1, Ordering::Relaxed);
                self.retries.fetch_add(1, Ordering::Relaxed);
                match self.cache.try_verdict(view, pool) {
                    Ok(v) => {
                        self.retry_successes.fetch_add(1, Ordering::Relaxed);
                        v
                    }
                    Err(_) => {
                        self.region_faults.fetch_add(1, Ordering::Relaxed);
                        self.cache.verdict_serial(view)
                    }
                }
            }
        }
    }

    /// Decides, then runs the admitted variant. Both closures receive
    /// nothing and return the kernel's output value; the caller keeps
    /// ownership of all state. (One-phase form without fault recovery;
    /// see [`GuardedExecutor::execute_admitted`].)
    pub fn run<T>(
        &self,
        bindings: &Bindings,
        arrays: &[IndexArrayView<'_>],
        pool: Option<&ThreadPool>,
        parallel: impl FnOnce() -> T,
        serial: impl FnOnce() -> T,
    ) -> (T, GuardVerdict) {
        let verdict = self.decide(bindings, arrays, pool);
        let out = match verdict.path {
            GuardPath::Parallel => parallel(),
            GuardPath::Serial => serial(),
        };
        (out, verdict)
    }

    /// Snapshot of the decision counters.
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            parallel_runs: self.parallel_runs.load(Ordering::Relaxed),
            serial_fallbacks: self.serial_fallbacks.load(Ordering::Relaxed),
            check_failures: self.check_failures.load(Ordering::Relaxed),
            inspection_failures: self.inspection_failures.load(Ordering::Relaxed),
            region_faults: self.region_faults.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retry_successes: self.retry_successes.load(Ordering::Relaxed),
            tamper_detections: self.tamper_detections.load(Ordering::Relaxed),
            validation_rejections: self.validation_rejections.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_short_circuits: self.breaker_short_circuits.load(Ordering::Relaxed),
            cancelled_invocations: self.cancelled_invocations.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_check;
    use crate::inspect::MonotoneReq;

    fn amgmk_bindings(num_rownnz: i64, irownnz_max: i64) -> Bindings {
        let mut b = Bindings::new();
        b.set_var("num_rownnz", num_rownnz)
            .set_post_max("irownnz", irownnz_max);
        b
    }

    #[test]
    fn no_check_admits_parallel() {
        let e = GuardedExecutor::new(None).unwrap();
        let v = e.decide(&Bindings::new(), &[], None);
        assert_eq!(v.path, GuardPath::Parallel);
        assert_eq!(e.stats().parallel_runs, 1);
    }

    #[test]
    fn failing_check_falls_back() {
        let c = parse_check("num_rownnz - 1 <= irownnz_max").unwrap();
        let e = GuardedExecutor::new(Some(&c)).unwrap();
        let v = e.decide(&amgmk_bindings(200, 100), &[], None);
        assert_eq!(v.path, GuardPath::Serial);
        assert!(matches!(v.reason, Some(ExecError::CheckFailed { .. })));
        let s = e.stats();
        assert_eq!((s.serial_fallbacks, s.check_failures), (1, 1));
    }

    #[test]
    fn unbound_symbol_falls_back_instead_of_panicking() {
        let c = parse_check("num_rownnz - 1 <= irownnz_max").unwrap();
        let e = GuardedExecutor::new(Some(&c)).unwrap();
        let v = e.decide(&Bindings::new(), &[], None);
        assert_eq!(v.path, GuardPath::Serial);
        assert!(matches!(v.reason, Some(ExecError::CheckUnevaluable { .. })));
        assert!(v.reason.unwrap().to_string().contains("not evaluable"));
    }

    #[test]
    fn overflowing_check_denies_at_guard_level() {
        // a*b wraps past i64::MAX: the hardened evaluator reports
        // Overflow, which the guard classifies as CheckUnevaluable —
        // conservative serial fallback, never a wrongly-admitted
        // parallel run.
        let c = parse_check("a*b <= c").unwrap();
        let e = GuardedExecutor::new(Some(&c)).unwrap();
        let mut b = Bindings::new();
        b.set_var("a", 3_037_000_500)
            .set_var("b", 3_037_000_500)
            .set_var("c", 0);
        let v = e.decide(&b, &[], None);
        assert_eq!(v.path, GuardPath::Serial);
        match v.reason {
            Some(ExecError::CheckUnevaluable { detail }) => {
                assert!(detail.contains("overflow"), "{detail}");
            }
            other => panic!("wrong reason: {other:?}"),
        }
        assert_eq!(e.stats().check_failures, 1);
    }

    #[test]
    fn ingested_arrays_admit_through_the_boundary() {
        let e = GuardedExecutor::new(None).unwrap();
        let a = ValidatedIndexArray::ingest(
            "b",
            vec![0, 1, 2, 3],
            10,
            crate::validate::Provenance::Untrusted {
                source: "test".into(),
            },
        )
        .unwrap();
        let d = e.decide_ingested("k", &Bindings::new(), &[(&a, MonotoneReq::Strict)], None);
        assert_eq!(d.verdict.path, GuardPath::Parallel);
        assert_eq!(d.inspected, vec![("b".to_string(), 0)]);
        assert_eq!(e.stats().validation_rejections, 0);
    }

    #[test]
    fn bypassing_writer_denies_before_inspection() {
        let e = GuardedExecutor::new(None).unwrap();
        let mut a = ValidatedIndexArray::ingest(
            "b",
            vec![0, 1, 2, 3],
            10,
            crate::validate::Provenance::Untrusted {
                source: "test".into(),
            },
        )
        .unwrap();
        // A hostile writer mutates the data without announcing it: the
        // contents are still in domain (and still monotone), but the
        // checksum no longer matches the validated state.
        a.bypass_validation_mut()[1] = 2;
        let d = e.decide_ingested("k", &Bindings::new(), &[(&a, MonotoneReq::NonStrict)], None);
        assert_eq!(d.verdict.path, GuardPath::Serial);
        match d.verdict.reason {
            Some(ExecError::InvalidIndexArray { array, detail }) => {
                assert_eq!(array, "b");
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("wrong reason: {other:?}"),
        }
        assert!(d.inspected.is_empty(), "rejected before inspection");
        assert_eq!(e.stats().validation_rejections, 1);
    }

    #[test]
    fn failing_inspection_falls_back_with_location() {
        let e = GuardedExecutor::new(None).unwrap();
        let data = vec![0usize, 5, 3];
        let view = IndexArrayView {
            name: "b",
            data: &data,
            version: 0,
            required: MonotoneReq::NonStrict,
        };
        let v = e.decide(&Bindings::new(), &[view], None);
        assert_eq!(v.path, GuardPath::Serial);
        match v.reason {
            Some(ExecError::NotMonotone {
                first_violation, ..
            }) => assert_eq!(first_violation, Some(2)),
            other => panic!("wrong reason: {other:?}"),
        }
        assert_eq!(e.stats().inspection_failures, 1);
    }

    #[test]
    fn run_dispatches_and_cache_hits_accumulate() {
        let c = parse_check("num_rownnz - 1 <= irownnz_max").unwrap();
        let e = GuardedExecutor::new(Some(&c)).unwrap();
        let data = vec![0usize, 1, 2, 3];
        let view = IndexArrayView {
            name: "b",
            data: &data,
            version: 0,
            required: MonotoneReq::Strict,
        };
        let b = amgmk_bindings(4, 4);
        let (out, v) = e.run(&b, &[view], None, || "par", || "ser");
        assert_eq!((out, v.path), ("par", GuardPath::Parallel));
        let (out, _) = e.run(&b, &[view], None, || "par", || "ser");
        assert_eq!(out, "par");
        let s = e.stats();
        assert_eq!(s.parallel_runs, 2);
        assert!(s.cache.hits >= 1, "second run must be served from cache");
    }

    #[test]
    fn strict_requirement_rejects_plateau() {
        let e = GuardedExecutor::new(None).unwrap();
        let data = vec![0usize, 1, 1, 2];
        let strict = IndexArrayView {
            name: "b",
            data: &data,
            version: 0,
            required: MonotoneReq::Strict,
        };
        assert_eq!(
            e.decide(&Bindings::new(), &[strict], None).path,
            GuardPath::Serial
        );
        let nonstrict = IndexArrayView {
            required: MonotoneReq::NonStrict,
            ..strict
        };
        assert_eq!(
            e.decide(&Bindings::new(), &[nonstrict], None).path,
            GuardPath::Parallel
        );
    }

    #[test]
    fn two_phase_happy_path_runs_parallel_once() {
        let e = GuardedExecutor::new(None).unwrap();
        let data = vec![0usize, 1, 2, 3];
        let view = IndexArrayView {
            name: "b",
            data: &data,
            version: 0,
            required: MonotoneReq::Strict,
        };
        let d = e.decide_recoverable("k", &Bindings::new(), &[view], None);
        assert_eq!(d.verdict.path, GuardPath::Parallel);
        assert_eq!(d.inspected, vec![("b".to_string(), 0)]);
        let (out, reason) = e.execute_admitted("k", &d, &[("b", 0)], || Ok("par"), || {}, || "ser");
        assert_eq!((out, reason), ("par", None));
        let s = e.stats();
        assert_eq!((s.parallel_runs, s.serial_fallbacks), (1, 0));
    }

    #[test]
    fn version_drift_at_dispatch_is_tamper() {
        let e = GuardedExecutor::new(None).unwrap();
        let data = vec![0usize, 1, 2, 3];
        let view = IndexArrayView {
            name: "b",
            data: &data,
            version: 3,
            required: MonotoneReq::Strict,
        };
        let d = e.decide_recoverable("k", &Bindings::new(), &[view], None);
        assert_eq!(d.verdict.path, GuardPath::Parallel);
        // A writer bumped the version between phases.
        let (out, reason) = e.execute_admitted("k", &d, &[("b", 4)], || Ok("par"), || {}, || "ser");
        assert_eq!(out, "ser");
        assert_eq!(
            reason,
            Some(ExecError::TamperDetected { array: "b".into() })
        );
        let s = e.stats();
        assert_eq!((s.tamper_detections, s.serial_fallbacks), (1, 1));
        assert_eq!(s.parallel_runs, 0, "parallel must not have run");
    }

    #[test]
    fn transient_fault_retries_once_then_falls_back() {
        let e = GuardedExecutor::new(None).unwrap();
        let d = e.decide_recoverable("k", &Bindings::new(), &[], None);
        let recovered = AtomicU64::new(0);
        let (out, reason) = e.execute_admitted(
            "k",
            &d,
            &[],
            || {
                Err::<&str, _>(ExecError::ParallelFault {
                    detail: "worker died".into(),
                })
            },
            || {
                recovered.fetch_add(1, Ordering::Relaxed);
            },
            || "ser",
        );
        assert_eq!(out, "ser");
        assert!(matches!(reason, Some(ExecError::ParallelFault { .. })));
        assert_eq!(
            recovered.load(Ordering::Relaxed),
            2,
            "recover before the retry and before the serial rescue"
        );
        let s = e.stats();
        assert_eq!(s.retries, 1);
        assert_eq!(s.retry_successes, 0);
        assert_eq!(s.region_faults, 2);
        assert_eq!(s.serial_fallbacks, 1);
    }

    #[test]
    fn retry_can_rescue_the_parallel_path() {
        let e = GuardedExecutor::new(None).unwrap();
        let d = e.decide_recoverable("k", &Bindings::new(), &[], None);
        let attempts = AtomicU64::new(0);
        let (out, reason) = e.execute_admitted(
            "k",
            &d,
            &[],
            || {
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    Err(ExecError::ParallelFault {
                        detail: "transient".into(),
                    })
                } else {
                    Ok("par")
                }
            },
            || {},
            || "ser",
        );
        assert_eq!((out, reason), ("par", None));
        let s = e.stats();
        assert_eq!((s.retries, s.retry_successes, s.parallel_runs), (1, 1, 1));
    }

    #[test]
    fn breaker_pins_to_serial_and_readmits_after_cooldown() {
        let e = GuardedExecutor::new(None)
            .unwrap()
            .with_breaker(CircuitBreaker::new(2, 3));
        let faulty = || {
            Err::<&str, _>(ExecError::ParallelFault {
                detail: "boom".into(),
            })
        };
        // One faulting invocation = first attempt + failed retry = 2
        // consecutive faults = the threshold: the breaker opens.
        let d = e.decide_recoverable("k", &Bindings::new(), &[], None);
        let _ = e.execute_admitted("k", &d, &[], faulty, || {}, || "ser");
        assert_eq!(e.breaker_state("k"), BreakerState::Open { remaining: 3 });
        assert_eq!(e.stats().breaker_trips, 1);
        // Cooldown: three denied admissions, classified as BreakerOpen.
        for _ in 0..3 {
            let d = e.decide_recoverable("k", &Bindings::new(), &[], None);
            assert!(matches!(
                d.verdict.reason,
                Some(ExecError::BreakerOpen { .. })
            ));
            let (out, _) = e.execute_admitted("k", &d, &[], || Ok("par"), || {}, || "ser");
            assert_eq!(out, "ser", "pinned to serial while open");
        }
        assert_eq!(e.stats().breaker_short_circuits, 3);
        // Cooldown spent: the half-open trial is admitted, succeeds, and
        // the breaker closes again.
        let d = e.decide_recoverable("k", &Bindings::new(), &[], None);
        assert_eq!(d.verdict.path, GuardPath::Parallel);
        let (out, reason) = e.execute_admitted("k", &d, &[], || Ok("par"), || {}, || "ser");
        assert_eq!((out, reason), ("par", None));
        assert_eq!(e.breaker_state("k"), BreakerState::Closed { faults: 0 });
    }
}
