//! The structured failure taxonomy for guarded execution.
//!
//! Every way a guarded invocation can decline or abandon the parallel
//! path is one [`ExecError`] variant, so callers (and the chaos harness)
//! can branch on the *class* of failure instead of grepping reason
//! strings. The taxonomy also encodes the degradation policy: only
//! [`ExecError::transient`] failures are worth one bounded retry of the
//! parallel path; everything else goes straight down the ladder to
//! serial.

use crate::inspect::MonotoneReq;

/// Why a guarded invocation ran (or finished on) the serial path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The compile-time analysis already decided this variant is serial;
    /// no runtime evidence was consulted.
    AnalysisSerial,
    /// The scalar runtime check evaluated to false: the parallelization
    /// precondition provably does not hold for these inputs.
    CheckFailed {
        /// The pretty-printed check that failed.
        detail: String,
    },
    /// The scalar runtime check could not be evaluated (unbound symbol,
    /// overflow, injected evaluation fault). Conservative deny.
    CheckUnevaluable {
        /// What went wrong during evaluation.
        detail: String,
    },
    /// An inspected index array does not have the monotonicity the
    /// dependence pattern requires.
    NotMonotone {
        /// Array name as declared in the kernel's runtime bindings.
        array: String,
        /// The flavour that was required.
        required: MonotoneReq,
        /// A violating index, when one was recorded.
        first_violation: Option<usize>,
    },
    /// An index array was rejected at the ingestion trust boundary: an
    /// entry fell outside the target array's domain, or the content
    /// checksum no longer matches what was validated (an out-of-band
    /// writer). Dispatching on such an array would be undefined behaviour
    /// behind the `unsafe` gather/scatter, so rejection denies up front.
    InvalidIndexArray {
        /// The offending array.
        array: String,
        /// What the validator found.
        detail: String,
    },
    /// An index array's write-version changed between inspection and
    /// dispatch: the verdict may describe stale contents, so the
    /// invocation is not admitted.
    TamperDetected {
        /// The array whose version drifted.
        array: String,
    },
    /// The parallel variant faulted (job panic, lost worker, injected
    /// fault) and — after any retry — the invocation finished serially.
    ParallelFault {
        /// Rendering of the underlying fault.
        detail: String,
    },
    /// The parallel variant exceeded its deadline and was cancelled.
    Timeout,
    /// The per-kernel circuit breaker is open after repeated
    /// parallel-path faults; the kernel is pinned to serial for the
    /// remainder of the cooldown.
    BreakerOpen {
        /// Breaker-admission denials left before a half-open trial.
        remaining: u32,
    },
    /// The invocation's cancel token tripped (the caller's deadline
    /// expired or the waiter abandoned the request) before a result was
    /// produced; whatever partial work ran was discarded. Unlike
    /// [`ExecError::Timeout`] — a *region*-level deadline on the
    /// parallel variant, which still finishes serially — cancellation
    /// abandons the whole invocation, serial rescue included.
    Cancelled,
}

impl ExecError {
    /// Whether one bounded retry of the faulted operation is worthwhile.
    /// Faults of the execution machinery (a died worker, an injected
    /// panic) are transient — the self-healing pool respawns workers, so
    /// an immediate second attempt can succeed. Everything rooted in the
    /// *data* (failed check, non-monotone array, tampered version) or in
    /// policy (open breaker, spent deadline) is not retryable.
    pub fn transient(&self) -> bool {
        matches!(self, ExecError::ParallelFault { .. })
    }

    /// Small stable numeric class for telemetry (`guard_verdict` event
    /// payloads): 0 is reserved for "parallel admitted", so every
    /// variant maps to a nonzero code.
    pub fn reason_class(&self) -> u8 {
        match self {
            ExecError::AnalysisSerial => 1,
            ExecError::CheckFailed { .. } => 2,
            ExecError::CheckUnevaluable { .. } => 3,
            ExecError::NotMonotone { .. } => 4,
            ExecError::InvalidIndexArray { .. } => 5,
            ExecError::TamperDetected { .. } => 6,
            ExecError::ParallelFault { .. } => 7,
            ExecError::Timeout => 8,
            ExecError::BreakerOpen { .. } => 9,
            ExecError::Cancelled => 10,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::AnalysisSerial => write!(f, "analysis decision is serial"),
            ExecError::CheckFailed { detail } => {
                write!(f, "runtime check evaluated to false: {detail}")
            }
            ExecError::CheckUnevaluable { detail } => {
                write!(f, "runtime check not evaluable: {detail}")
            }
            ExecError::NotMonotone {
                array,
                required,
                first_violation,
            } => {
                write!(f, "index array {array} is not {required}")?;
                if let Some(i) = first_violation {
                    write!(f, " (first violation at index {i})")?;
                }
                Ok(())
            }
            ExecError::InvalidIndexArray { array, detail } => {
                write!(f, "index array {array} rejected at ingestion: {detail}")
            }
            ExecError::TamperDetected { array } => {
                write!(
                    f,
                    "index array {array} was modified between inspection and dispatch"
                )
            }
            ExecError::ParallelFault { detail } => {
                write!(f, "parallel variant faulted: {detail}")
            }
            ExecError::Timeout => write!(f, "parallel variant exceeded its deadline"),
            ExecError::BreakerOpen { remaining } => {
                write!(
                    f,
                    "circuit breaker open: kernel pinned to serial ({remaining} denials before half-open trial)"
                )
            }
            ExecError::Cancelled => {
                write!(f, "invocation cancelled before a result was produced")
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_machinery_faults_are_transient() {
        assert!(ExecError::ParallelFault {
            detail: "worker died".into()
        }
        .transient());
        for e in [
            ExecError::AnalysisSerial,
            ExecError::CheckFailed { detail: "c".into() },
            ExecError::CheckUnevaluable { detail: "c".into() },
            ExecError::NotMonotone {
                array: "b".into(),
                required: MonotoneReq::Strict,
                first_violation: Some(3),
            },
            ExecError::InvalidIndexArray {
                array: "b".into(),
                detail: "entry 3 out of domain".into(),
            },
            ExecError::TamperDetected { array: "b".into() },
            ExecError::Timeout,
            ExecError::BreakerOpen { remaining: 5 },
            ExecError::Cancelled,
        ] {
            assert!(!e.transient(), "{e}");
        }
    }

    #[test]
    fn display_carries_the_location() {
        let e = ExecError::NotMonotone {
            array: "b".into(),
            required: MonotoneReq::NonStrict,
            first_violation: Some(7),
        };
        let s = e.to_string();
        assert!(
            s.contains("b is not monotone") && s.contains("index 7"),
            "{s}"
        );
    }
}
