//! Runtime scalar environment supplied by kernel instances.

use std::collections::HashMap;
use subsub_symbolic::Symbol;

/// Values of the scalar symbols a runtime check refers to: loop bounds
/// (`num_rownnz`), post-loop counter values (`irownnz_max`), …
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    vals: HashMap<Symbol, i64>,
}

impl Bindings {
    /// Empty environment.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Binds a plain program variable.
    pub fn set_var(&mut self, name: &str, v: i64) -> &mut Self {
        self.vals.insert(Symbol::var(name), v);
        self
    }

    /// Binds a post-loop (`name_max`) value.
    pub fn set_post_max(&mut self, name: &str, v: i64) -> &mut Self {
        self.vals.insert(Symbol::post_max(name), v);
        self
    }

    /// Binds an arbitrary symbol.
    pub fn set(&mut self, sym: Symbol, v: i64) -> &mut Self {
        self.vals.insert(sym, v);
        self
    }

    /// Looks a symbol up.
    pub fn get(&self, sym: &Symbol) -> Option<i64> {
        self.vals.get(sym).copied()
    }

    /// Number of bound symbols.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_and_post_max_are_distinct() {
        let mut b = Bindings::new();
        b.set_var("m", 3).set_post_max("m", 9);
        assert_eq!(b.get(&Symbol::var("m")), Some(3));
        assert_eq!(b.get(&Symbol::post_max("m")), Some(9));
        assert_eq!(b.get(&Symbol::var("q")), None);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
