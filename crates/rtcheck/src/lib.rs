//! Executable runtime checks and index-array inspection — the execution
//! side of the paper's "runtime verification" story.
//!
//! The compile-time analysis (subsub-core) sometimes parallelizes a loop
//! *conditionally*: the emitted pragma carries a check such as
//! `-1 + num_rownnz <= irownnz_max` comparing a loop bound against a
//! post-loop value that only exists at runtime. This crate makes those
//! checks executable instead of purely textual:
//!
//! * [`CheckExpr`] — a structured IR for runtime checks (comparisons over
//!   symbolic scalar expressions, conjunctions), with canonicalization so
//!   algebraically equal checks compare equal, a pretty-printer matching
//!   the paper's pragma syntax, and a parser for round-tripping.
//! * [`CompiledCheck`] — a compiled predicate: symbols are resolved to
//!   slots once, each comparison is flattened into difference form, and
//!   evaluation against a [`Bindings`] environment is allocation-free.
//! * [`inspect`] — a parallel index-array inspector verifying (strict)
//!   monotonicity of an actual array at runtime when compile-time analysis
//!   is inconclusive: chunked scan on the `omprt` thread pool with
//!   cross-chunk boundary fixup.
//! * [`InspectorCache`] — memoization of inspection verdicts keyed by
//!   array identity and version, so repeated kernel invocations with
//!   unchanged index arrays skip re-inspection in O(1).
//! * [`GuardedExecutor`] — runs the parallel variant when every check and
//!   inspection passes and degrades gracefully to the serial variant
//!   otherwise, recording pass/fail/cache-hit counters for observability.
//! * [`ExecError`] + [`CircuitBreaker`] — the degradation policy: every
//!   fallback is a classified error, transient machinery faults get one
//!   bounded retry, and a kernel whose parallel path keeps faulting is
//!   pinned to serial for a cooldown before a half-open re-trial.
//! * [`ValidatedIndexArray`] — the ingestion trust boundary: the one
//!   sanctioned path from raw subscript data into inspection and
//!   dispatch, validating every entry against the target array's domain
//!   and tracking mutations (version + checksum) so out-of-band writers
//!   are caught before the `unsafe` gather/scatter ever sees them.

pub mod bindings;
pub mod block;
pub mod breaker;
pub mod cache;
pub mod compile;
pub mod error;
pub mod expr;
pub mod guard;
pub mod inspect;
pub mod validate;

pub use bindings::Bindings;
pub use block::{BlockSummaries, BlockSummary, BLOCK_LEN, FINGERPRINT_VERSION};
pub use breaker::{BreakerState, CircuitBreaker};
pub use cache::{CacheStats, InspectorCache, VerdictCache, MEMO_CAPACITY};
pub use compile::{CompileError, CompiledCheck, EvalError};
pub use error::ExecError;
pub use expr::{parse_check, CheckExpr, CmpOp, ParseError};
pub use guard::{Decision, GuardPath, GuardStats, GuardVerdict, GuardedExecutor};
pub use inspect::{
    inspect_block_monotone, inspect_monotone, inspect_serial, scan_pairs, try_inspect_monotone,
    IndexArrayView, MonotoneReq, MonotoneVerdict, PairScan, PAR_THRESHOLD,
};
pub use validate::{
    composed_verdict, ComposedVerdict, Provenance, ValidatedIndexArray, ValidationError,
};
