//! Pretty-printer for the C-subset AST.
//!
//! Prints canonical C that re-parses to the same AST (used by round-trip
//! tests and to display Cetus-style normalized code in reports).

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for g in &p.globals {
        print_decl(&mut out, g, 0);
    }
    for f in &p.funcs {
        print_function(&mut out, f);
    }
    out
}

/// Renders one function definition.
pub fn print_function(out: &mut String, f: &Function) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| {
            let mut s = format!("{} {}{}", p.ty, "*".repeat(p.pointer), p.name);
            for d in &p.dims {
                match d {
                    Some(e) => {
                        let _ = write!(s, "[{}]", print_expr(e));
                    }
                    None => s.push_str("[]"),
                }
            }
            s
        })
        .collect();
    let _ = writeln!(out, "{} {}({}) {{", f.ret, f.name, params.join(", "));
    for s in &f.body.stmts {
        print_stmt(out, s, 1);
    }
    let _ = writeln!(out, "}}");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_decl(out: &mut String, d: &Decl, level: usize) {
    indent(out, level);
    let _ = write!(out, "{} {}{}", d.ty, "*".repeat(d.pointer), d.name);
    for dim in &d.dims {
        let _ = write!(out, "[{}]", print_expr(dim));
    }
    if let Some(init) = &d.init {
        let _ = write!(out, " = {}", print_expr(init));
    }
    out.push_str(";\n");
}

/// Renders one statement at the given indentation level.
pub fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Decl(d) => print_decl(out, d, level),
        Stmt::Expr(e) => {
            indent(out, level);
            let _ = writeln!(out, "{};", print_expr(e));
        }
        Stmt::Block(b) => {
            indent(out, level);
            out.push_str("{\n");
            for st in &b.stmts {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_stmt_body(out, then_branch, level);
            match else_branch {
                Some(e) => {
                    indent(out, level);
                    out.push_str("} else {\n");
                    print_stmt_body(out, e, level);
                    indent(out, level);
                    out.push_str("}\n");
                }
                None => {
                    indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, level);
            let init_s = match init {
                ForInit::Empty => String::new(),
                ForInit::Decl(d) => {
                    let mut s = format!("{} {}{}", d.ty, "*".repeat(d.pointer), d.name);
                    if let Some(i) = &d.init {
                        let _ = write!(s, " = {}", print_expr(i));
                    }
                    s
                }
                ForInit::Expr(e) => print_expr(e),
            };
            let cond_s = cond.as_ref().map(print_expr).unwrap_or_default();
            let step_s = step.as_ref().map(print_expr).unwrap_or_default();
            let _ = writeln!(out, "for ({init_s}; {cond_s}; {step_s}) {{");
            print_stmt_body(out, body, level);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_stmt_body(out, body, level);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return(e) => {
            indent(out, level);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", print_expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        Stmt::Pragma(t) => {
            indent(out, level);
            let _ = writeln!(out, "#pragma {t}");
        }
        Stmt::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
    }
}

fn print_stmt_body(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Block(b) => {
            for st in &b.stmts {
                print_stmt(out, st, level + 1);
            }
        }
        other => print_stmt(out, other, level + 1),
    }
}

/// Renders one expression (fully parenthesized where precedence demands).
pub fn print_expr(e: &CExpr) -> String {
    print_prec(e, 0)
}

/// Precedence levels mirroring the parser: 0 assign, 1 ternary, 2 `||`,
/// 3 `&&`, 4 equality, 5 relational, 6 additive, 7 multiplicative, 8 unary,
/// 9 postfix/primary.
fn prec_of(e: &CExpr) -> u8 {
    match e {
        CExpr::Assign { .. } => 0,
        CExpr::Ternary { .. } => 1,
        CExpr::Binary { op, .. } => match op {
            BinOp::Or => 2,
            BinOp::And => 3,
            BinOp::Eq | BinOp::Ne => 4,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 7,
        },
        CExpr::Unary { .. } | CExpr::Cast { .. } => 8,
        _ => 9,
    }
}

fn print_prec(e: &CExpr, min_prec: u8) -> String {
    let p = prec_of(e);
    let inner = match e {
        CExpr::IntLit(v) => v.to_string(),
        CExpr::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        CExpr::Ident(n) => n.clone(),
        CExpr::Index { base, index } => {
            format!("{}[{}]", print_prec(base, 9), print_expr(index))
        }
        CExpr::Call { name, args } => {
            let a: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", a.join(", "))
        }
        CExpr::Unary { op, operand } => {
            let o = print_prec(operand, 8);
            match op {
                // `-` followed by an operand that itself starts with `-`
                // (Neg or PreDec) would re-lex as `--` under maximal munch;
                // a space keeps the token boundary.
                UnOp::Neg if o.starts_with('-') => format!("- {o}"),
                UnOp::Neg => format!("-{o}"),
                UnOp::Not => format!("!{o}"),
                UnOp::PreInc => format!("++{o}"),
                UnOp::PreDec => format!("--{o}"),
            }
        }
        CExpr::Postfix { op, operand } => {
            let o = print_prec(operand, 9);
            match op {
                PostOp::PostInc => format!("{o}++"),
                PostOp::PostDec => format!("{o}--"),
            }
        }
        CExpr::Binary { op, lhs, rhs } => {
            format!(
                "{} {} {}",
                print_prec(lhs, p),
                op.symbol(),
                print_prec(rhs, p + 1)
            )
        }
        CExpr::Assign { op, lhs, rhs } => {
            format!(
                "{} {} {}",
                print_prec(lhs, 1),
                op.symbol(),
                print_prec(rhs, 0)
            )
        }
        CExpr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            format!(
                "{} ? {} : {}",
                print_prec(cond, 2),
                print_expr(then_e),
                print_prec(else_e, 1)
            )
        }
        CExpr::Cast { ty, expr } => format!("({ty}) {}", print_prec(expr, 8)),
    };
    if p < min_prec {
        format!("({inner})")
    } else {
        inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn roundtrip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed).unwrap_or_else(|err| panic!("reparse {printed:?}: {err}"));
        assert_eq!(e1, e2, "round-trip changed AST for {src:?} -> {printed:?}");
    }

    #[test]
    fn expr_roundtrips() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "y[ind[j]]",
            "a[i + 1] - a[i]",
            "m++",
            "-x + 3",
            "a < b && c != d",
            "exp(-((x - t) * (x - t)) / s)",
            "a = b = c + 1",
            "p[ind] = sm * nnz_val[ind]",
            "a < b ? a : b",
            "W[r * k + t] * H[row_ind[ind] * k + t]",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn program_roundtrip() {
        let src = r#"
        void fill(int num_rows, int *A_i, int *A_rownnz) {
            int i;
            int adiag;
            int irownnz;
            irownnz = 0;
            for (i = 0; i < num_rows; i++) {
                adiag = A_i[i + 1] - A_i[i];
                if (adiag > 0) {
                    A_rownnz[irownnz++] = i;
                }
            }
        }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        assert_eq!(p1, p2);
    }

    #[test]
    fn precedence_parens_preserved() {
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(print_expr(&e), "(a + b) * c");
    }

    fn roundtrip_program(src: &str) {
        use crate::astjson::{canonicalize, diff_programs};
        let p1 = canonicalize(&parse_program(src).unwrap());
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        let mismatches = diff_programs(&p1, &canonicalize(&p2));
        assert!(
            mismatches.is_empty(),
            "round-trip diverged for {src:?}:\n{printed}\n{mismatches:?}"
        );
        assert_eq!(p1, canonicalize(&p2));
    }

    #[test]
    fn empty_for_clauses_roundtrip() {
        roundtrip_program("void f() { for (;;) { break; } }");
        roundtrip_program("void f(int n) { int i; for (i = 0;; i++) { if (i >= n) break; } }");
        roundtrip_program("void f(int n) { int i; for (i = 0; i < n;) { i = i + 1; } }");
        roundtrip_program("void f(int n) { for (; n > 0;) { n = n - 1; } }");
    }

    #[test]
    fn dangling_else_roundtrip() {
        // The else must stay attached to the INNER if across the round trip.
        let src = "void f(int a, int b, int *x) { if (a) if (b) x[0] = 1; else x[0] = 2; }";
        let p1 = parse_program(src).unwrap();
        match &p1.funcs[0].body.stmts[0] {
            Stmt::If {
                then_branch,
                else_branch: None,
                ..
            } => assert!(
                matches!(
                    &**then_branch,
                    Stmt::If {
                        else_branch: Some(_),
                        ..
                    }
                ),
                "else should bind to inner if"
            ),
            other => panic!("{other:?}"),
        }
        roundtrip_program(src);
    }

    #[test]
    fn unbraced_bodies_roundtrip_canonically() {
        roundtrip_program("void f(int n, int *a) { int i; for (i = 0; i < n; i++) a[i] = i; }");
        roundtrip_program("void f(int a, int *x) { if (a) x[0] = 1; else x[0] = 2; }");
        roundtrip_program("void f(int n) { while (n > 0) n--; }");
    }

    #[test]
    fn negation_chains_roundtrip() {
        // `-(-x)` must not print as `--x` (which re-lexes as predecrement).
        for src in ["-(-x)", "-(--x)", "--(-x)", "-(-(-x))", "- -x + 1"] {
            roundtrip_expr(src);
        }
        let neg_neg = CExpr::Unary {
            op: UnOp::Neg,
            operand: Box::new(CExpr::Unary {
                op: UnOp::Neg,
                operand: Box::new(CExpr::ident("x")),
            }),
        };
        assert_eq!(print_expr(&neg_neg), "- -x");
    }

    #[test]
    fn pointer_for_decl_roundtrips() {
        let src = "void f(int *base, int n) { for (int *p = base; n > 0; n--) { p++; } }";
        let p1 = parse_program(src).unwrap();
        match &p1.funcs[0].body.stmts[0] {
            Stmt::For {
                init: ForInit::Decl(d),
                ..
            } => assert_eq!(d.pointer, 1),
            other => panic!("{other:?}"),
        }
        roundtrip_program(src);
    }

    #[test]
    fn empty_statement_bodies_roundtrip() {
        roundtrip_program("void f(int n) { int i; for (i = 0; i < n; i++); }");
        roundtrip_program("void f(int a) { if (a); else; }");
        roundtrip_program("void f() { ; ; }");
    }

    #[test]
    fn operator_precedence_reprints_faithfully() {
        for src in [
            "a - (b - c)",
            "a / (b * c)",
            "a % (b % c)",
            "(a < b) == (c < d)",
            "a && (b || c)",
            "(a = b) + 1",
            "-(a + b) * c",
            "(a ? b : c) + d",
            "a = b ? c : d",
            "!(a && b) || c",
        ] {
            roundtrip_expr(src);
        }
    }
}
