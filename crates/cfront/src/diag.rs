//! Typed frontend diagnostics and parse budgets.
//!
//! Everything the lexer, parser and interpreter can say about an input
//! is a [`Diagnostic`]: a stable machine-readable [`DiagCode`], the byte
//! [`Span`] the complaint anchors to, the 1-based source line, a
//! human-readable message, and optional notes. The service front door
//! forwards diagnostics to clients verbatim (a malformed program is the
//! *client's* fault — it must never read as a worker fault), so codes
//! are part of the public surface and must stay stable.
//!
//! [`ParseBudget`] bounds what a single parse may consume: input bytes,
//! token count, nesting depth, and grammar-production count. Every limit
//! violation is a deterministic diagnostic (`budget-*` codes), never a
//! panic or an OOM — the budgets are what lets the service hand the
//! frontend adversarial input without an isolation sandbox.

use std::fmt;

/// A half-open byte range `start..end` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte of the offending region.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The empty span at byte `at` (used for end-of-input diagnostics).
    pub fn at(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// Byte length of the span.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Stable machine-readable diagnostic codes. The numeric discriminant is
/// carried as the telemetry arg of frontend-reject events; the kebab
/// name is what clients match on. Both are stable across releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum DiagCode {
    /// A byte the lexer has no token for.
    UnexpectedChar = 101,
    /// `/*` with no closing `*/`.
    UnterminatedComment = 102,
    /// An integer literal that does not fit `i64`.
    BadIntLiteral = 103,
    /// A float literal `f64` cannot parse.
    BadFloatLiteral = 104,
    /// A float literal that overflows to infinity (`1e999`): rejected
    /// because `inf` has no round-trippable source spelling.
    NonFiniteFloatLiteral = 105,

    /// A token that fits no grammar production at this point.
    UnexpectedToken = 201,
    /// A specific punctuation token was required.
    ExpectedToken = 202,
    /// An identifier was required.
    ExpectedIdent = 203,
    /// A type name was required.
    ExpectedType = 204,
    /// A keyword where an expression was required.
    UnexpectedKeyword = 205,
    /// Input ended inside an open construct.
    UnexpectedEof = 206,
    /// Extra tokens after a complete snippet parse.
    TrailingInput = 207,

    /// Source text longer than [`ParseBudget::max_input_bytes`].
    InputTooLarge = 301,
    /// More tokens than [`ParseBudget::max_tokens`].
    TokenBudgetExceeded = 302,
    /// Nesting deeper than [`ParseBudget::max_depth`].
    DepthBudgetExceeded = 303,
    /// More grammar productions than [`ParseBudget::max_nodes`].
    NodeBudgetExceeded = 304,

    /// The ambient [`subsub_omprt::CancelToken`] fired mid-parse.
    Cancelled = 401,
    /// A `cfront.*` failpoint injected a fault (tests/chaos only).
    InjectedFault = 402,

    /// The interpreter's step budget ran out.
    StepBudgetExceeded = 501,
    /// A scalar or array name with no binding.
    UnknownName = 502,
    /// An array subscript outside the array's extent.
    IndexOutOfBounds = 503,
    /// Subscript count differs from the array's rank.
    RankMismatch = 504,
    /// Integer `/` or `%` by zero.
    DivideByZero = 505,
    /// A construct the interpreter does not model.
    UnsupportedConstruct = 506,
}

impl DiagCode {
    /// Stable numeric code (the telemetry arg of frontend rejections).
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Stable kebab-case name, e.g. `"parse-expected-token"`.
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::UnexpectedChar => "lex-unexpected-char",
            DiagCode::UnterminatedComment => "lex-unterminated-comment",
            DiagCode::BadIntLiteral => "lex-bad-int-literal",
            DiagCode::BadFloatLiteral => "lex-bad-float-literal",
            DiagCode::NonFiniteFloatLiteral => "lex-non-finite-float",
            DiagCode::UnexpectedToken => "parse-unexpected-token",
            DiagCode::ExpectedToken => "parse-expected-token",
            DiagCode::ExpectedIdent => "parse-expected-ident",
            DiagCode::ExpectedType => "parse-expected-type",
            DiagCode::UnexpectedKeyword => "parse-unexpected-keyword",
            DiagCode::UnexpectedEof => "parse-unexpected-eof",
            DiagCode::TrailingInput => "parse-trailing-input",
            DiagCode::InputTooLarge => "budget-input-bytes",
            DiagCode::TokenBudgetExceeded => "budget-tokens",
            DiagCode::DepthBudgetExceeded => "budget-depth",
            DiagCode::NodeBudgetExceeded => "budget-nodes",
            DiagCode::Cancelled => "cancelled",
            DiagCode::InjectedFault => "injected-fault",
            DiagCode::StepBudgetExceeded => "interp-step-budget",
            DiagCode::UnknownName => "interp-unknown-name",
            DiagCode::IndexOutOfBounds => "interp-out-of-bounds",
            DiagCode::RankMismatch => "interp-rank-mismatch",
            DiagCode::DivideByZero => "interp-divide-by-zero",
            DiagCode::UnsupportedConstruct => "interp-unsupported",
        }
    }

    /// True for the `budget-*` family (a resource ceiling, not a syntax
    /// error — the input might be well-formed, just too big).
    pub fn is_budget(self) -> bool {
        matches!(
            self,
            DiagCode::InputTooLarge
                | DiagCode::TokenBudgetExceeded
                | DiagCode::DepthBudgetExceeded
                | DiagCode::NodeBudgetExceeded
        )
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed frontend error: code + span + line + message + notes.
///
/// `line` is 0 for diagnostics with no source position (interpreter
/// runtime errors); source-anchored diagnostics carry the 1-based line
/// and a byte span, and [`Diagnostic::render`] draws a caret under the
/// offending region.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: DiagCode,
    /// Byte range the diagnostic anchors to (empty for runtime errors).
    pub span: Span,
    /// 1-based source line (0 = no source position).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
    /// Optional supplementary notes.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A source-anchored diagnostic.
    pub fn new(code: DiagCode, span: Span, line: u32, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            span,
            line,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// A position-free diagnostic (interpreter runtime errors).
    pub fn runtime(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Span::default(), 0, message)
    }

    /// Appends a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// True for the `budget-*` family.
    pub fn is_budget(&self) -> bool {
        self.code.is_budget()
    }

    /// True when the parse was cancelled by the ambient token rather
    /// than rejected on its own merits.
    pub fn is_cancelled(&self) -> bool {
        self.code == DiagCode::Cancelled
    }

    /// Recomputes the 1-based (line, column) of the span start against
    /// the source the diagnostic was produced from. Columns count
    /// characters, not bytes.
    pub fn line_col(&self, src: &str) -> (u32, u32) {
        let at = clamp_boundary(src, self.span.start);
        let before = &src[..at];
        let line = before.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        let line_start = before.rfind('\n').map(|p| p + 1).unwrap_or(0);
        let col = src[line_start..at].chars().count() as u32 + 1;
        (line, col)
    }

    /// Renders the diagnostic with a source excerpt and caret:
    ///
    /// ```text
    /// error[parse-expected-token]: expected `;`, found `)`
    ///   --> line 2, col 7
    ///    |
    ///  2 | a = b )
    ///    |       ^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("error[{}]: {}\n", self.code, self.message);
        if self.line == 0 && self.span.is_empty() && self.span.start == 0 {
            for n in &self.notes {
                out.push_str(&format!("  = note: {n}\n"));
            }
            return out;
        }
        let (line, col) = self.line_col(src);
        out.push_str(&format!("  --> line {line}, col {col}\n"));
        let at = clamp_boundary(src, self.span.start);
        let line_start = src[..at].rfind('\n').map(|p| p + 1).unwrap_or(0);
        let line_end = src[at..].find('\n').map(|p| at + p).unwrap_or(src.len());
        let text = &src[line_start..line_end];
        let gutter = format!("{line}");
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!(" {pad} |\n"));
        out.push_str(&format!(" {gutter} | {text}\n"));
        let lead = src[line_start..at].chars().count();
        let span_end = clamp_boundary(src, self.span.end.min(line_end)).max(at);
        let width = src[at..span_end].chars().count().max(1);
        out.push_str(&format!(
            " {pad} | {}{}\n",
            " ".repeat(lead),
            "^".repeat(width)
        ));
        for n in &self.notes {
            out.push_str(&format!(" {pad} = note: {n}\n"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for Diagnostic {}

/// Largest char boundary `<= at` (budget spans can land mid-character).
fn clamp_boundary(src: &str, at: usize) -> usize {
    let mut at = at.min(src.len());
    while at > 0 && !src.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// Resource ceilings for one parse. Every violation is a deterministic
/// `budget-*` [`Diagnostic`]; none is a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBudget {
    /// Maximum source length in bytes.
    pub max_input_bytes: usize,
    /// Maximum token count (including the EOF sentinel).
    pub max_tokens: usize,
    /// Maximum nesting-guard depth. Recursive descent puts source
    /// nesting on the call stack; one nesting level costs up to three
    /// guard units (assign + ternary + unary each hold one), several
    /// KiB of frames each in unoptimized builds — the default clears a
    /// 2 MiB worker-thread stack with margin (~40 paren levels).
    pub max_depth: usize,
    /// Maximum grammar productions visited (bounds AST size and parse
    /// work for token streams that are wide rather than deep).
    pub max_nodes: usize,
}

impl ParseBudget {
    /// The default ceilings: far above any real kernel source, far
    /// below anything that could distress a worker.
    pub const DEFAULT: ParseBudget = ParseBudget {
        max_input_bytes: 1 << 20,
        max_tokens: 1 << 18,
        max_depth: 120,
        max_nodes: 1 << 19,
    };
}

impl Default for ParseBudget {
    fn default() -> ParseBudget {
        ParseBudget::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_from_one() {
        let src = "ab\ncd e\nf";
        let d = Diagnostic::new(DiagCode::UnexpectedToken, Span::new(6, 7), 2, "x");
        assert_eq!(d.line_col(src), (2, 4));
        let d0 = Diagnostic::new(DiagCode::UnexpectedToken, Span::new(0, 1), 1, "x");
        assert_eq!(d0.line_col(src), (1, 1));
    }

    #[test]
    fn render_draws_caret_under_span() {
        let src = "a = b\nc = ;\n";
        let d = Diagnostic::new(
            DiagCode::ExpectedToken,
            Span::new(10, 11),
            2,
            "expected expr",
        );
        let r = d.render(src);
        assert!(r.contains("error[parse-expected-token]"), "{r}");
        assert!(r.contains("line 2, col 5"), "{r}");
        assert!(r.contains("2 | c = ;"), "{r}");
        assert!(r.contains("    ^"), "{r}");
    }

    #[test]
    fn render_survives_spans_past_the_input() {
        let src = "xy";
        let d = Diagnostic::new(DiagCode::UnexpectedEof, Span::at(99), 1, "eof");
        let r = d.render(src);
        assert!(r.contains("error[parse-unexpected-eof]"), "{r}");
    }

    #[test]
    fn render_clamps_to_char_boundaries() {
        let src = "aß = 1;"; // ß is two bytes; span lands inside it
        let d = Diagnostic::new(DiagCode::UnexpectedChar, Span::new(2, 3), 1, "x");
        let (line, col) = d.line_col(src);
        assert_eq!((line, col), (1, 2));
        let _ = d.render(src); // must not panic on slicing
    }

    #[test]
    fn notes_are_rendered() {
        let d = Diagnostic::runtime(DiagCode::UnknownName, "unknown scalar q")
            .with_note("bind it with set_int");
        let r = d.render("");
        assert!(r.contains("note: bind it with set_int"), "{r}");
    }

    #[test]
    fn budget_family_is_recognized() {
        assert!(DiagCode::InputTooLarge.is_budget());
        assert!(DiagCode::NodeBudgetExceeded.is_budget());
        assert!(!DiagCode::UnexpectedToken.is_budget());
        assert!(Diagnostic::runtime(DiagCode::TokenBudgetExceeded, "x").is_budget());
    }

    #[test]
    fn codes_and_names_are_unique() {
        let all = [
            DiagCode::UnexpectedChar,
            DiagCode::UnterminatedComment,
            DiagCode::BadIntLiteral,
            DiagCode::BadFloatLiteral,
            DiagCode::NonFiniteFloatLiteral,
            DiagCode::UnexpectedToken,
            DiagCode::ExpectedToken,
            DiagCode::ExpectedIdent,
            DiagCode::ExpectedType,
            DiagCode::UnexpectedKeyword,
            DiagCode::UnexpectedEof,
            DiagCode::TrailingInput,
            DiagCode::InputTooLarge,
            DiagCode::TokenBudgetExceeded,
            DiagCode::DepthBudgetExceeded,
            DiagCode::NodeBudgetExceeded,
            DiagCode::Cancelled,
            DiagCode::InjectedFault,
            DiagCode::StepBudgetExceeded,
            DiagCode::UnknownName,
            DiagCode::IndexOutOfBounds,
            DiagCode::RankMismatch,
            DiagCode::DivideByZero,
            DiagCode::UnsupportedConstruct,
        ];
        let mut names: Vec<&str> = all.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        let mut codes: Vec<u32> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn display_includes_line_when_present() {
        let d = Diagnostic::new(DiagCode::UnexpectedToken, Span::new(0, 1), 3, "boom");
        assert_eq!(d.to_string(), "line 3: boom");
        let r = Diagnostic::runtime(DiagCode::DivideByZero, "division by zero");
        assert_eq!(r.to_string(), "division by zero");
    }
}
