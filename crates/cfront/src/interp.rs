//! A concrete interpreter for the C subset.
//!
//! Used by the property-based soundness harness: generated programs run
//! both through the compile-time analysis and through this interpreter,
//! and every property the analysis claims (monotonicity of a subscript
//! array) is checked against the concrete execution. The interpreter is
//! deliberately simple — recursive AST evaluation over integer and
//! floating-point scalars and flat arrays.

use crate::ast::*;
use crate::diag::{DiagCode, Diagnostic};
use std::collections::HashMap;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Double(f64),
}

impl Value {
    /// Integer view (floats truncate, as in C).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Double(v) => *v as i64,
        }
    }

    /// Floating view.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Double(v) => *v,
        }
    }

    /// C truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Double(v) => *v != 0.0,
        }
    }
}

/// A runtime array: flat storage plus the dimension sizes for
/// multi-dimensional indexing.
#[derive(Debug, Clone)]
pub struct ArrayVal {
    /// Dimension sizes, outermost first (a 1-D array has one entry).
    pub dims: Vec<usize>,
    /// Flat element storage.
    pub data: Vec<Value>,
}

impl ArrayVal {
    /// A zero-initialized integer array.
    pub fn int_zeros(dims: Vec<usize>) -> ArrayVal {
        let len = dims.iter().product();
        ArrayVal {
            dims,
            data: vec![Value::Int(0); len],
        }
    }

    /// A 1-D integer array from a slice.
    pub fn from_ints(v: &[i64]) -> ArrayVal {
        ArrayVal {
            dims: vec![v.len()],
            data: v.iter().map(|&x| Value::Int(x)).collect(),
        }
    }

    /// A 1-D double array from a slice.
    pub fn from_f64s(v: &[f64]) -> ArrayVal {
        ArrayVal {
            dims: vec![v.len()],
            data: v.iter().map(|&x| Value::Double(x)).collect(),
        }
    }

    /// The integer contents of a 1-D array.
    pub fn to_ints(&self) -> Vec<i64> {
        self.data.iter().map(Value::as_int).collect()
    }

    fn flat_index(&self, subs: &[i64]) -> Result<usize, InterpError> {
        if subs.len() != self.dims.len() {
            return Err(ierr(
                DiagCode::RankMismatch,
                format!(
                    "rank mismatch: {} subscripts for {} dims",
                    subs.len(),
                    self.dims.len()
                ),
            ));
        }
        let mut flat = 0usize;
        for (s, &d) in subs.iter().zip(&self.dims) {
            if *s < 0 || *s as usize >= d {
                return Err(ierr(
                    DiagCode::IndexOutOfBounds,
                    format!("index {s} out of bounds (dim {d})"),
                ));
            }
            flat = flat * d + *s as usize;
        }
        Ok(flat)
    }
}

/// Interpreter failures are typed diagnostics: runtime errors carry no
/// source span (the interpreter works on the AST), only a code + message.
pub type InterpError = Diagnostic;

fn ierr(code: DiagCode, msg: impl Into<String>) -> Diagnostic {
    Diagnostic::runtime(code, msg)
}

/// The mutable machine state: scalar and array environments.
#[derive(Debug, Clone, Default)]
pub struct Machine {
    /// Scalar variables.
    pub scalars: HashMap<String, Value>,
    /// Array variables.
    pub arrays: HashMap<String, ArrayVal>,
}

/// Iteration budget guarding against runaway generated programs.
const MAX_STEPS: u64 = 5_000_000;

impl Machine {
    /// An empty machine.
    pub fn new() -> Machine {
        Machine::default()
    }

    /// Binds an integer scalar argument.
    pub fn set_int(&mut self, name: &str, v: i64) {
        self.scalars.insert(name.into(), Value::Int(v));
    }

    /// Binds a double scalar argument.
    pub fn set_double(&mut self, name: &str, v: f64) {
        self.scalars.insert(name.into(), Value::Double(v));
    }

    /// Binds an array argument.
    pub fn set_array(&mut self, name: &str, a: ArrayVal) {
        self.arrays.insert(name.into(), a);
    }

    /// The current contents of an array.
    pub fn array(&self, name: &str) -> Option<&ArrayVal> {
        self.arrays.get(name)
    }

    /// The current value of a scalar.
    pub fn scalar(&self, name: &str) -> Option<&Value> {
        self.scalars.get(name)
    }

    /// Executes a function body against the pre-bound arguments. Local
    /// declarations allocate scalars (and fixed-size arrays).
    pub fn run(&mut self, f: &Function) -> Result<(), InterpError> {
        let mut steps = 0u64;
        self.exec_block(&f.body, &mut steps)
    }

    fn exec_block(&mut self, b: &Block, steps: &mut u64) -> Result<(), InterpError> {
        for s in &b.stmts {
            self.exec_stmt(s, steps)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, steps: &mut u64) -> Result<(), InterpError> {
        *steps += 1;
        if *steps > MAX_STEPS {
            return Err(ierr(DiagCode::StepBudgetExceeded, "step budget exceeded"));
        }
        match s {
            Stmt::Decl(d) => {
                if d.dims.is_empty() {
                    let init = match &d.init {
                        Some(e) => self.eval(e, steps)?,
                        None => match d.ty {
                            Type::Float | Type::Double => Value::Double(0.0),
                            _ => Value::Int(0),
                        },
                    };
                    self.scalars.insert(d.name.clone(), init);
                } else {
                    let dims: Result<Vec<usize>, _> = d
                        .dims
                        .iter()
                        .map(|e| self.eval(e, steps).map(|v| v.as_int() as usize))
                        .collect();
                    self.arrays
                        .insert(d.name.clone(), ArrayVal::int_zeros(dims?));
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.eval(e, steps)?;
                Ok(())
            }
            Stmt::Block(b) => self.exec_block(b, steps),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond, steps)?.truthy() {
                    self.exec_stmt(then_branch, steps)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, steps)
                } else {
                    Ok(())
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                match init {
                    ForInit::Empty => {}
                    ForInit::Decl(d) => self.exec_stmt(&Stmt::Decl(d.clone()), steps)?,
                    ForInit::Expr(e) => {
                        self.eval(e, steps)?;
                    }
                }
                loop {
                    *steps += 1;
                    if *steps > MAX_STEPS {
                        return Err(ierr(DiagCode::StepBudgetExceeded, "step budget exceeded"));
                    }
                    if let Some(c) = cond {
                        if !self.eval(c, steps)?.truthy() {
                            break;
                        }
                    }
                    self.exec_stmt(body, steps)?;
                    if let Some(st) = step {
                        self.eval(st, steps)?;
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, steps)?.truthy() {
                    *steps += 1;
                    if *steps > MAX_STEPS {
                        return Err(ierr(DiagCode::StepBudgetExceeded, "step budget exceeded"));
                    }
                    self.exec_stmt(body, steps)?;
                }
                Ok(())
            }
            Stmt::Return(_) | Stmt::Break | Stmt::Continue => {
                // The analysis subset rejects these inside analyzed loops;
                // the interpreter treats them as unsupported.
                Err(ierr(
                    DiagCode::UnsupportedConstruct,
                    "return/break/continue not supported",
                ))
            }
            Stmt::Pragma(_) | Stmt::Empty => Ok(()),
        }
    }

    fn eval(&mut self, e: &CExpr, steps: &mut u64) -> Result<Value, InterpError> {
        *steps += 1;
        if *steps > MAX_STEPS {
            return Err(ierr(DiagCode::StepBudgetExceeded, "step budget exceeded"));
        }
        match e {
            CExpr::IntLit(v) => Ok(Value::Int(*v)),
            CExpr::FloatLit(v) => Ok(Value::Double(*v)),
            CExpr::Ident(n) => self
                .scalars
                .get(n)
                .cloned()
                .ok_or_else(|| ierr(DiagCode::UnknownName, format!("unknown scalar {n}"))),
            CExpr::Index { .. } => {
                let (name, subs) = self.resolve_access(e, steps)?;
                let arr = self
                    .arrays
                    .get(&name)
                    .ok_or_else(|| ierr(DiagCode::UnknownName, format!("unknown array {name}")))?;
                let flat = arr.flat_index(&subs)?;
                Ok(arr.data[flat].clone())
            }
            CExpr::Call { name, args } => {
                let vals: Result<Vec<Value>, _> =
                    args.iter().map(|a| self.eval(a, steps)).collect();
                let vals = vals?;
                let x = vals.first().map(Value::as_f64).unwrap_or(0.0);
                let y = vals.get(1).map(Value::as_f64).unwrap_or(0.0);
                let out = match name.as_str() {
                    "exp" => x.exp(),
                    "log" => x.ln(),
                    "sqrt" => x.sqrt(),
                    "fabs" => x.abs(),
                    "sin" => x.sin(),
                    "cos" => x.cos(),
                    "pow" => x.powf(y),
                    "fmax" => x.max(y),
                    "fmin" => x.min(y),
                    "floor" => x.floor(),
                    "ceil" => x.ceil(),
                    "abs" | "labs" => {
                        return Ok(Value::Int(vals[0].as_int().abs()));
                    }
                    other => {
                        return Err(ierr(
                            DiagCode::UnsupportedConstruct,
                            format!("unsupported call {other}"),
                        ))
                    }
                };
                Ok(Value::Double(out))
            }
            CExpr::Unary { op, operand } => match op {
                UnOp::Neg => {
                    let v = self.eval(operand, steps)?;
                    Ok(match v {
                        Value::Int(x) => Value::Int(-x),
                        Value::Double(x) => Value::Double(-x),
                    })
                }
                UnOp::Not => Ok(Value::Int(i64::from(!self.eval(operand, steps)?.truthy()))),
                UnOp::PreInc | UnOp::PreDec => {
                    let delta = if *op == UnOp::PreInc { 1 } else { -1 };
                    let new = Value::Int(self.eval(operand, steps)?.as_int() + delta);
                    self.assign_to(operand, new.clone(), steps)?;
                    Ok(new)
                }
            },
            CExpr::Postfix { op, operand } => {
                let old = self.eval(operand, steps)?;
                let delta = if *op == PostOp::PostInc { 1 } else { -1 };
                self.assign_to(operand, Value::Int(old.as_int() + delta), steps)?;
                Ok(old)
            }
            CExpr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    let l = self.eval(lhs, steps)?;
                    if !l.truthy() {
                        return Ok(Value::Int(0));
                    }
                    return Ok(Value::Int(i64::from(self.eval(rhs, steps)?.truthy())));
                }
                if *op == BinOp::Or {
                    let l = self.eval(lhs, steps)?;
                    if l.truthy() {
                        return Ok(Value::Int(1));
                    }
                    return Ok(Value::Int(i64::from(self.eval(rhs, steps)?.truthy())));
                }
                let l = self.eval(lhs, steps)?;
                let r = self.eval(rhs, steps)?;
                let both_int = matches!((&l, &r), (Value::Int(_), Value::Int(_)));
                let out = if both_int {
                    let (a, b) = (l.as_int(), r.as_int());
                    match op {
                        BinOp::Add => Value::Int(a.wrapping_add(b)),
                        BinOp::Sub => Value::Int(a.wrapping_sub(b)),
                        BinOp::Mul => Value::Int(a.wrapping_mul(b)),
                        BinOp::Div => {
                            if b == 0 {
                                return Err(ierr(DiagCode::DivideByZero, "division by zero"));
                            }
                            Value::Int(a / b)
                        }
                        BinOp::Mod => {
                            if b == 0 {
                                return Err(ierr(DiagCode::DivideByZero, "mod by zero"));
                            }
                            Value::Int(a % b)
                        }
                        BinOp::Lt => Value::Int(i64::from(a < b)),
                        BinOp::Le => Value::Int(i64::from(a <= b)),
                        BinOp::Gt => Value::Int(i64::from(a > b)),
                        BinOp::Ge => Value::Int(i64::from(a >= b)),
                        BinOp::Eq => Value::Int(i64::from(a == b)),
                        BinOp::Ne => Value::Int(i64::from(a != b)),
                        BinOp::And | BinOp::Or => unreachable!(),
                    }
                } else {
                    let (a, b) = (l.as_f64(), r.as_f64());
                    match op {
                        BinOp::Add => Value::Double(a + b),
                        BinOp::Sub => Value::Double(a - b),
                        BinOp::Mul => Value::Double(a * b),
                        BinOp::Div => Value::Double(a / b),
                        BinOp::Mod => Value::Double(a % b),
                        BinOp::Lt => Value::Int(i64::from(a < b)),
                        BinOp::Le => Value::Int(i64::from(a <= b)),
                        BinOp::Gt => Value::Int(i64::from(a > b)),
                        BinOp::Ge => Value::Int(i64::from(a >= b)),
                        BinOp::Eq => Value::Int(i64::from(a == b)),
                        BinOp::Ne => Value::Int(i64::from(a != b)),
                        BinOp::And | BinOp::Or => unreachable!(),
                    }
                };
                Ok(out)
            }
            CExpr::Assign { op, lhs, rhs } => {
                let value = match op.binop() {
                    None => self.eval(rhs, steps)?,
                    Some(b) => {
                        let combined = CExpr::bin(b, (**lhs).clone(), (**rhs).clone());
                        self.eval(&combined, steps)?
                    }
                };
                self.assign_to(lhs, value.clone(), steps)?;
                Ok(value)
            }
            CExpr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                if self.eval(cond, steps)?.truthy() {
                    self.eval(then_e, steps)
                } else {
                    self.eval(else_e, steps)
                }
            }
            CExpr::Cast { ty, expr } => {
                let v = self.eval(expr, steps)?;
                Ok(match ty {
                    Type::Float | Type::Double => Value::Double(v.as_f64()),
                    _ => Value::Int(v.as_int()),
                })
            }
        }
    }

    fn resolve_access(
        &mut self,
        e: &CExpr,
        steps: &mut u64,
    ) -> Result<(String, Vec<i64>), InterpError> {
        let (name, subs) = e
            .as_index_chain()
            .ok_or_else(|| ierr(DiagCode::UnsupportedConstruct, "unsupported lvalue"))?;
        let name = name.to_string();
        let idx: Result<Vec<i64>, _> = subs
            .iter()
            .map(|s| self.eval(s, steps).map(|v| v.as_int()))
            .collect();
        Ok((name, idx?))
    }

    fn assign_to(&mut self, lhs: &CExpr, value: Value, steps: &mut u64) -> Result<(), InterpError> {
        match lhs {
            CExpr::Ident(n) => {
                self.scalars.insert(n.clone(), value);
                Ok(())
            }
            CExpr::Index { .. } => {
                let (name, subs) = self.resolve_access(lhs, steps)?;
                let arr = self
                    .arrays
                    .get_mut(&name)
                    .ok_or_else(|| ierr(DiagCode::UnknownName, format!("unknown array {name}")))?;
                let flat = arr.flat_index(&subs)?;
                arr.data[flat] = value;
                Ok(())
            }
            _ => Err(ierr(
                DiagCode::UnsupportedConstruct,
                "unsupported assignment target",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run_with(src: &str, setup: impl FnOnce(&mut Machine)) -> Machine {
        let p = parse_program(src).unwrap();
        let mut m = Machine::new();
        setup(&mut m);
        m.run(&p.funcs[0]).unwrap();
        m
    }

    #[test]
    fn amgmk_fill_executes() {
        let m = run_with(
            r#"
            void f(int num_rows, int *A_i, int *A_rownnz) {
                int i; int adiag; int irownnz;
                irownnz = 0;
                for (i = 0; i < num_rows; i++) {
                    adiag = A_i[i+1] - A_i[i];
                    if (adiag > 0)
                        A_rownnz[irownnz++] = i;
                }
            }
            "#,
            |m| {
                m.set_int("num_rows", 5);
                m.set_array("A_i", ArrayVal::from_ints(&[0, 2, 2, 5, 5, 9]));
                m.set_array("A_rownnz", ArrayVal::int_zeros(vec![5]));
            },
        );
        // Rows 0, 2, 4 have nonzeros.
        assert_eq!(m.array("A_rownnz").unwrap().to_ints()[..3], [0, 2, 4]);
        assert_eq!(m.scalar("irownnz").unwrap().as_int(), 3);
    }

    #[test]
    fn multidim_indexing() {
        let m = run_with(
            r#"
            void f(int a[3][4]) {
                int i; int j;
                for (i = 0; i < 3; i++)
                    for (j = 0; j < 4; j++)
                        a[i][j] = i * 10 + j;
            }
            "#,
            |m| m.set_array("a", ArrayVal::int_zeros(vec![3, 4])),
        );
        let a = m.array("a").unwrap();
        assert_eq!(a.data[a.flat_index(&[2, 3]).unwrap()].as_int(), 23);
    }

    #[test]
    fn float_arithmetic_and_calls() {
        let m = run_with("void f(double *y) { y[0] = exp(0.0) + sqrt(4.0); }", |m| {
            m.set_array("y", ArrayVal::from_f64s(&[0.0]))
        });
        assert!((m.array("y").unwrap().data[0].as_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let p = parse_program("void f(int *a) { a[10] = 1; }").unwrap();
        let mut m = Machine::new();
        m.set_array("a", ArrayVal::int_zeros(vec![3]));
        assert!(m.run(&p.funcs[0]).is_err());
    }

    #[test]
    fn compound_assign_and_postfix() {
        let m = run_with("void f() { int x; int y; x = 3; x += 4; y = x++; }", |_| {});
        assert_eq!(m.scalar("x").unwrap().as_int(), 8);
        assert_eq!(m.scalar("y").unwrap().as_int(), 7);
    }

    #[test]
    fn while_and_logical_ops() {
        let m = run_with(
            "void f(int n) { int k; int hits; k = 0; hits = 0; while (k < n && k >= 0) { if (k > 2 || k == 0) hits = hits + 1; k = k + 1; } }",
            |m| m.set_int("n", 6),
        );
        assert_eq!(m.scalar("hits").unwrap().as_int(), 4); // k = 0,3,4,5
    }

    #[test]
    fn step_budget_stops_infinite_loop() {
        let p = parse_program("void f() { int x; x = 0; while (1 < 2) { x = x + 1; } }").unwrap();
        let mut m = Machine::new();
        assert!(m.run(&p.funcs[0]).is_err());
    }
}
