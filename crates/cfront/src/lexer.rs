//! Hand-written lexer for the C subset.

use std::fmt;

/// Kinds of tokens produced by [`lex`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// A full `#pragma …` line (text after `#pragma`).
    Pragma(String),
    /// Punctuation or operator, e.g. `"+="`, `"("`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Pragma(s) => write!(f, "#pragma {s}"),
            TokenKind::Punct(s) => write!(f, "{s}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// A lexical error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "++", "--", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "->", "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":",
    ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Tokenizes `src`, skipping whitespace and `//`/`/* */` comments and
/// capturing `#pragma` lines as single tokens (other `#` directives are
/// skipped).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    i += 2;
                    loop {
                        if i + 1 >= bytes.len() {
                            return Err(LexError {
                                msg: "unterminated comment".into(),
                                line,
                            });
                        }
                        if bytes[i] as char == '\n' {
                            line += 1;
                        }
                        if bytes[i] as char == '*' && bytes[i + 1] as char == '/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                    continue;
                }
                _ => {}
            }
        }
        // Preprocessor lines.
        if c == '#' {
            let start = i;
            while i < bytes.len() && bytes[i] as char != '\n' {
                i += 1;
            }
            let text = &src[start..i];
            if let Some(rest) = text.strip_prefix("#pragma") {
                out.push(Token {
                    kind: TokenKind::Pragma(rest.trim().to_string()),
                    line,
                });
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else if (d == 'e' || d == 'E')
                    && i + 1 < bytes.len()
                    && ((bytes[i + 1] as char).is_ascii_digit()
                        || bytes[i + 1] as char == '-'
                        || bytes[i + 1] as char == '+')
                {
                    is_float = true;
                    i += 2;
                } else {
                    break;
                }
            }
            // Suffixes (f, L, u…) are consumed and ignored.
            while i < bytes.len() && matches!(bytes[i] as char, 'f' | 'F' | 'l' | 'L' | 'u' | 'U') {
                if matches!(bytes[i] as char, 'f' | 'F') {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = src[start..i]
                .trim_end_matches(|ch: char| ch.is_ascii_alphabetic())
                .to_string();
            let kind = if is_float {
                TokenKind::Float(text.parse::<f64>().map_err(|e| LexError {
                    msg: format!("bad float literal {text:?}: {e}"),
                    line,
                })?)
            } else {
                TokenKind::Int(text.parse::<i64>().map_err(|e| LexError {
                    msg: format!("bad int literal {text:?}: {e}"),
                    line,
                })?)
            };
            out.push(Token { kind, line });
            continue;
        }
        // Identifiers.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
            {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        // Punctuation (maximal munch).
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            out.push(Token {
                kind: TokenKind::Punct(p),
                line,
            });
            i += p.len();
            continue;
        }
        return Err(LexError {
            msg: format!("unexpected character {c:?}"),
            line,
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("a = b + 42;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("+"),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        let ks = kinds("m++; x<=y; p+=1;");
        assert!(ks.contains(&TokenKind::Punct("++")));
        assert!(ks.contains(&TokenKind::Punct("<=")));
        assert!(ks.contains(&TokenKind::Punct("+=")));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("a /* comment \n more */ = 1; // trailing\nb = 2;");
        assert_eq!(
            ks.iter().filter(|k| matches!(k, TokenKind::Int(_))).count(),
            2
        );
    }

    #[test]
    fn float_literals() {
        let ks = kinds("x = 1.5; y = 2e3; z = 3.0f;");
        let floats: Vec<f64> = ks
            .iter()
            .filter_map(|k| {
                if let TokenKind::Float(v) = k {
                    Some(*v)
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(floats, vec![1.5, 2000.0, 3.0]);
    }

    #[test]
    fn pragma_line_captured() {
        let ks = kinds("#pragma omp parallel for\nfor(;;) ;");
        assert_eq!(ks[0], TokenKind::Pragma("omp parallel for".into()));
    }

    #[test]
    fn include_skipped() {
        let ks = kinds("#include <stdio.h>\nint x;");
        assert_eq!(ks[0], TokenKind::Ident("int".into()));
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a;\nb;\nc;").unwrap();
        let lines: Vec<u32> = ts
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Ident(_)))
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn error_on_garbage() {
        assert!(lex("a = $;").is_err());
    }
}
