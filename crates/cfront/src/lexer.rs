//! Hand-written lexer for the C subset.

use crate::diag::{DiagCode, Diagnostic, ParseBudget, Span};
use std::fmt;
use subsub_failpoint as failpoint;

/// Lexical errors are ordinary typed diagnostics.
pub type LexError = Diagnostic;

/// Kinds of tokens produced by [`lex`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// A full `#pragma …` line (text after `#pragma`).
    Pragma(String),
    /// Punctuation or operator, e.g. `"+="`, `"("`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Pragma(s) => write!(f, "#pragma {s}"),
            TokenKind::Punct(s) => write!(f, "{s}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// Byte range of the token text.
    pub span: Span,
}

/// How many tokens between cooperative-cancellation polls. Cheap enough
/// to keep deadline latency low, rare enough to stay off the profile.
const CANCEL_POLL_TOKENS: usize = 1024;

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "++", "--", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>", "->", "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~", "?", ":",
    ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Tokenizes `src` under the default [`ParseBudget`].
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    lex_with(src, &ParseBudget::DEFAULT)
}

/// Tokenizes `src`, skipping whitespace and `//`/`/* */` comments and
/// capturing `#pragma` lines as single tokens (other `#` directives are
/// skipped). Enforces `budget.max_input_bytes` and `budget.max_tokens`,
/// and polls the ambient [`subsub_omprt::CancelToken`] so an expired
/// request deadline stops the scan mid-input.
pub fn lex_with(src: &str, budget: &ParseBudget) -> Result<Vec<Token>, Diagnostic> {
    if src.len() > budget.max_input_bytes {
        return Err(Diagnostic::new(
            DiagCode::InputTooLarge,
            Span::new(budget.max_input_bytes, src.len()),
            1,
            format!(
                "input is {} bytes (budget {})",
                src.len(),
                budget.max_input_bytes
            ),
        ));
    }
    if matches!(failpoint::hit("cfront.lex"), failpoint::Action::Error) {
        return Err(Diagnostic::new(
            DiagCode::InjectedFault,
            Span::at(0),
            1,
            "injected lexer fault (cfront.lex failpoint)",
        ));
    }
    let cancel = subsub_omprt::cancel::ambient_cancel();

    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out: Vec<Token> = Vec::new();

    macro_rules! push {
        ($kind:expr, $start:expr, $end:expr) => {{
            if out.len() + 1 >= budget.max_tokens {
                return Err(Diagnostic::new(
                    DiagCode::TokenBudgetExceeded,
                    Span::new($start, $end),
                    line,
                    format!("token budget exceeded (limit {})", budget.max_tokens),
                ));
            }
            if out.len() % CANCEL_POLL_TOKENS == 0 {
                if let Some(c) = &cancel {
                    if c.is_cancelled() {
                        return Err(Diagnostic::new(
                            DiagCode::Cancelled,
                            Span::new($start, $end),
                            line,
                            "lexing cancelled",
                        ));
                    }
                }
            }
            out.push(Token {
                kind: $kind,
                line,
                span: Span::new($start, $end),
            });
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    let start = i;
                    i += 2;
                    loop {
                        if i + 1 >= bytes.len() {
                            return Err(Diagnostic::new(
                                DiagCode::UnterminatedComment,
                                Span::new(start, bytes.len()),
                                line,
                                "unterminated comment",
                            ));
                        }
                        if bytes[i] as char == '\n' {
                            line += 1;
                        }
                        if bytes[i] as char == '*' && bytes[i + 1] as char == '/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                    continue;
                }
                _ => {}
            }
        }
        // Preprocessor lines.
        if c == '#' {
            let start = i;
            while i < bytes.len() && bytes[i] as char != '\n' {
                i += 1;
            }
            let text = &src[start..i];
            if let Some(rest) = text.strip_prefix("#pragma") {
                push!(TokenKind::Pragma(rest.trim().to_string()), start, i);
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else if (d == 'e' || d == 'E')
                    && i + 1 < bytes.len()
                    && ((bytes[i + 1] as char).is_ascii_digit()
                        || bytes[i + 1] as char == '-'
                        || bytes[i + 1] as char == '+')
                {
                    is_float = true;
                    i += 2;
                } else {
                    break;
                }
            }
            // Suffixes (f, L, u…) are consumed and ignored.
            while i < bytes.len() && matches!(bytes[i] as char, 'f' | 'F' | 'l' | 'L' | 'u' | 'U') {
                if matches!(bytes[i] as char, 'f' | 'F') {
                    is_float = true;
                }
                i += 1;
            }
            let text: &str = src[start..i].trim_end_matches(|ch: char| ch.is_ascii_alphabetic());
            let kind = if is_float {
                let v = text.parse::<f64>().map_err(|e| {
                    Diagnostic::new(
                        DiagCode::BadFloatLiteral,
                        Span::new(start, i),
                        line,
                        format!("bad float literal {text:?}: {e}"),
                    )
                })?;
                if !v.is_finite() {
                    return Err(Diagnostic::new(
                        DiagCode::NonFiniteFloatLiteral,
                        Span::new(start, i),
                        line,
                        format!("float literal {text:?} is not finite"),
                    )
                    .with_note("literals that overflow f64 have no printable form"));
                }
                TokenKind::Float(v)
            } else {
                TokenKind::Int(text.parse::<i64>().map_err(|e| {
                    Diagnostic::new(
                        DiagCode::BadIntLiteral,
                        Span::new(start, i),
                        line,
                        format!("bad int literal {text:?}: {e}"),
                    )
                })?)
            };
            push!(kind, start, i);
            continue;
        }
        // Identifiers.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
            {
                i += 1;
            }
            push!(TokenKind::Ident(src[start..i].to_string()), start, i);
            continue;
        }
        // Punctuation (maximal munch).
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            let start = i;
            i += p.len();
            push!(TokenKind::Punct(p), start, i);
            continue;
        }
        let clen = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        return Err(Diagnostic::new(
            DiagCode::UnexpectedChar,
            Span::new(i, i + clen),
            line,
            format!("unexpected character {c:?}"),
        ));
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        span: Span::at(src.len()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("a = b + 42;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("+"),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        let ks = kinds("m++; x<=y; p+=1;");
        assert!(ks.contains(&TokenKind::Punct("++")));
        assert!(ks.contains(&TokenKind::Punct("<=")));
        assert!(ks.contains(&TokenKind::Punct("+=")));
    }

    #[test]
    fn comments_skipped() {
        let ks = kinds("a /* comment \n more */ = 1; // trailing\nb = 2;");
        assert_eq!(
            ks.iter().filter(|k| matches!(k, TokenKind::Int(_))).count(),
            2
        );
    }

    #[test]
    fn float_literals() {
        let ks = kinds("x = 1.5; y = 2e3; z = 3.0f;");
        let floats: Vec<f64> = ks
            .iter()
            .filter_map(|k| {
                if let TokenKind::Float(v) = k {
                    Some(*v)
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(floats, vec![1.5, 2000.0, 3.0]);
    }

    #[test]
    fn pragma_line_captured() {
        let ks = kinds("#pragma omp parallel for\nfor(;;) ;");
        assert_eq!(ks[0], TokenKind::Pragma("omp parallel for".into()));
    }

    #[test]
    fn include_skipped() {
        let ks = kinds("#include <stdio.h>\nint x;");
        assert_eq!(ks[0], TokenKind::Ident("int".into()));
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("a;\nb;\nc;").unwrap();
        let lines: Vec<u32> = ts
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Ident(_)))
            .map(|t| t.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn spans_cover_token_text() {
        let src = "abc = 42;";
        let ts = lex(src).unwrap();
        assert_eq!(&src[ts[0].span.start..ts[0].span.end], "abc");
        assert_eq!(&src[ts[1].span.start..ts[1].span.end], "=");
        assert_eq!(&src[ts[2].span.start..ts[2].span.end], "42");
        assert_eq!(ts.last().unwrap().span, Span::at(src.len()));
    }

    #[test]
    fn error_on_garbage() {
        let err = lex("a = $;").unwrap_err();
        assert_eq!(err.code, DiagCode::UnexpectedChar);
        assert_eq!(err.span, Span::new(4, 5));
    }

    #[test]
    fn unterminated_comment_spans_to_eof() {
        let err = lex("x /* open").unwrap_err();
        assert_eq!(err.code, DiagCode::UnterminatedComment);
        assert_eq!(err.span.start, 2);
    }

    #[test]
    fn non_finite_float_rejected() {
        let err = lex("x = 1e999;").unwrap_err();
        assert_eq!(err.code, DiagCode::NonFiniteFloatLiteral);
        let err = lex("x = 1e999999;").unwrap_err();
        assert_eq!(err.code, DiagCode::NonFiniteFloatLiteral);
    }

    #[test]
    fn int_overflow_rejected() {
        let err = lex("x = 99999999999999999999;").unwrap_err();
        assert_eq!(err.code, DiagCode::BadIntLiteral);
    }

    #[test]
    fn input_budget_enforced() {
        let budget = ParseBudget {
            max_input_bytes: 8,
            ..ParseBudget::DEFAULT
        };
        let err = lex_with("a = 1; b = 2;", &budget).unwrap_err();
        assert_eq!(err.code, DiagCode::InputTooLarge);
        assert_eq!(err.span.start, 8);
        assert!(lex_with("a = 1;", &budget).is_ok());
    }

    #[test]
    fn token_budget_enforced() {
        let budget = ParseBudget {
            max_tokens: 4,
            ..ParseBudget::DEFAULT
        };
        let err = lex_with("a = 1 + 2 + 3;", &budget).unwrap_err();
        assert_eq!(err.code, DiagCode::TokenBudgetExceeded);
        // Exactly at the limit (3 tokens + EOF) still fits.
        assert!(lex_with("a = 1", &budget).is_ok());
    }

    #[test]
    fn cancelled_lex_reports_cancellation() {
        use std::sync::Arc;
        use subsub_omprt::cancel::{with_ambient_cancel, CancelToken};
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let err = with_ambient_cancel(&token, || lex("a = b + c;")).unwrap_err();
        assert_eq!(err.code, DiagCode::Cancelled);
    }
}
