//! A C-subset frontend: lexer, recursive-descent parser, AST and printer.
//!
//! This crate substitutes for the Cetus compiler frontend used by the paper
//! *Recurrence Analysis for Automatic Parallelization of Subscripted
//! Subscripts* (PPoPP'24). It covers the C fragment the paper's benchmark
//! kernels are written in: functions, scalar and (multi-dimensional) array
//! declarations, `for`/`while`/`if`, assignment operators (`=`, `+=`, …),
//! increment/decrement (`m++`, `++ind`), subscripted subscripts
//! (`y[ind[j]]`), calls, and `#pragma` lines.
//!
//! # Example
//!
//! ```
//! use subsub_cfront::parse_program;
//!
//! let src = r#"
//! void fill(int n, int *a) {
//!     int p;
//!     int i;
//!     p = 0;
//!     for (i = 0; i < n; i++) {
//!         a[i] = p;
//!         p = p + 1;
//!     }
//! }
//! "#;
//! let prog = parse_program(src).unwrap();
//! assert_eq!(prog.funcs.len(), 1);
//! assert_eq!(prog.funcs[0].name, "fill");
//! ```

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{
    AssignOp, BinOp, Block, CExpr, Decl, ForInit, Function, Param, PostOp, Program, Stmt, Type,
    UnOp,
};
pub use interp::{ArrayVal, InterpError, Machine, Value};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse_expr, parse_program, parse_stmt, ParseError};

/// Parses a program and panics with the parser diagnostic on failure.
/// Convenient for embedding kernel sources in tests and benchmarks.
pub fn parse_program_unwrap(src: &str) -> Program {
    match parse_program(src) {
        Ok(p) => p,
        Err(e) => panic!("parse error: {e}"),
    }
}
