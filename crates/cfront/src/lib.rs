//! A C-subset frontend: lexer, recursive-descent parser, AST and printer.
//!
//! This crate substitutes for the Cetus compiler frontend used by the paper
//! *Recurrence Analysis for Automatic Parallelization of Subscripted
//! Subscripts* (PPoPP'24). It covers the C fragment the paper's benchmark
//! kernels are written in: functions, scalar and (multi-dimensional) array
//! declarations, `for`/`while`/`if`, assignment operators (`=`, `+=`, …),
//! increment/decrement (`m++`, `++ind`), subscripted subscripts
//! (`y[ind[j]]`), calls, and `#pragma` lines.
//!
//! # Example
//!
//! ```
//! use subsub_cfront::parse_program;
//!
//! let src = r#"
//! void fill(int n, int *a) {
//!     int p;
//!     int i;
//!     p = 0;
//!     for (i = 0; i < n; i++) {
//!         a[i] = p;
//!         p = p + 1;
//!     }
//! }
//! "#;
//! let prog = parse_program(src).unwrap();
//! assert_eq!(prog.funcs.len(), 1);
//! assert_eq!(prog.funcs[0].name, "fill");
//! ```

//! # Untrusted input
//!
//! The frontend is hardened for adversarial sources: every failure is a
//! typed [`Diagnostic`] (stable numeric code, byte-offset [`Span`],
//! caret rendering via [`Diagnostic::render`]), resource consumption is
//! bounded by an explicit [`ParseBudget`] (input bytes, tokens, nesting
//! depth, AST nodes), and the lex/parse loops poll the ambient
//! `CancelToken` so request deadlines reach the frontend. The
//! [`astjson`] module provides the canonical `subsub-ast/v1`
//! serialization and the structural differ backing the conformance
//! harness.

pub mod ast;
pub mod astjson;
pub mod diag;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{
    AssignOp, BinOp, Block, CExpr, Decl, ForInit, Function, Param, PostOp, Program, Stmt, Type,
    UnOp,
};
pub use astjson::{canonicalize, diff_programs, program_to_json, AstMismatch, AST_SCHEMA};
pub use diag::{DiagCode, Diagnostic, ParseBudget, Span};
pub use interp::{ArrayVal, InterpError, Machine, Value};
pub use lexer::{lex, lex_with, LexError, Token, TokenKind};
pub use parser::{
    parse_expr, parse_expr_with, parse_program, parse_program_with, parse_stmt, parse_stmt_with,
    ParseError,
};

/// Parses a program and panics with the parser diagnostic on failure.
/// Convenient for embedding kernel sources in tests and benchmarks.
pub fn parse_program_unwrap(src: &str) -> Program {
    match parse_program(src) {
        Ok(p) => p,
        Err(e) => panic!("parse error: {e}"),
    }
}
