//! Recursive-descent parser for the C subset.

use crate::ast::*;
use crate::diag::{DiagCode, Diagnostic, ParseBudget, Span};
use crate::lexer::{lex_with, Token, TokenKind};
use std::sync::Arc;
use subsub_failpoint as failpoint;
use subsub_omprt::cancel::{ambient_cancel, CancelToken};

/// Parse errors are ordinary typed diagnostics.
pub type ParseError = Diagnostic;

type PResult<T> = Result<T, Diagnostic>;

/// Guard-descents between cooperative-cancellation polls. A descent
/// happens at least once per statement and per expression operand, so
/// this bounds how much work a doomed parse does after its deadline.
const CANCEL_POLL_DESCENTS: usize = 256;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    depth: usize,
    /// Monotone count of guard descents — a proxy for grammar
    /// productions visited, charged against `budget.max_nodes`.
    nodes: usize,
    budget: ParseBudget,
    cancel: Option<Arc<CancelToken>>,
}

impl Parser {
    fn new(toks: Vec<Token>, budget: ParseBudget) -> Parser {
        Parser {
            toks,
            pos: 0,
            depth: 0,
            nodes: 0,
            budget,
            cancel: ambient_cancel(),
        }
    }
}

fn parse_gate() -> Result<(), Diagnostic> {
    if matches!(failpoint::hit("cfront.parse"), failpoint::Action::Error) {
        return Err(Diagnostic::new(
            DiagCode::InjectedFault,
            Span::at(0),
            1,
            "injected parser fault (cfront.parse failpoint)",
        ));
    }
    Ok(())
}

/// Parses a full translation unit under the default [`ParseBudget`].
pub fn parse_program(src: &str) -> PResult<Program> {
    parse_program_with(src, &ParseBudget::DEFAULT)
}

/// Parses a full translation unit under an explicit budget.
pub fn parse_program_with(src: &str, budget: &ParseBudget) -> PResult<Program> {
    let toks = lex_with(src, budget)?;
    parse_gate()?;
    let mut p = Parser::new(toks, *budget);
    p.program()
}

/// Parses a single statement (for tests and embedded snippets).
pub fn parse_stmt(src: &str) -> PResult<Stmt> {
    parse_stmt_with(src, &ParseBudget::DEFAULT)
}

/// Parses a single statement under an explicit budget.
pub fn parse_stmt_with(src: &str, budget: &ParseBudget) -> PResult<Stmt> {
    let toks = lex_with(src, budget)?;
    parse_gate()?;
    let mut p = Parser::new(toks, *budget);
    let s = p.statement()?;
    p.expect_eof()?;
    Ok(s)
}

/// Parses a single expression (for tests and embedded snippets).
pub fn parse_expr(src: &str) -> PResult<CExpr> {
    parse_expr_with(src, &ParseBudget::DEFAULT)
}

/// Parses a single expression under an explicit budget.
pub fn parse_expr_with(src: &str, budget: &ParseBudget) -> PResult<CExpr> {
    let toks = lex_with(src, budget)?;
    parse_gate()?;
    let mut p = Parser::new(toks, *budget);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, code: DiagCode, msg: impl Into<String>) -> PResult<T> {
        Err(Diagnostic::new(code, self.span(), self.line(), msg))
    }

    /// Enters one nesting level. Fails once `budget.max_depth` is
    /// exceeded so hostile nesting becomes a parse error, not a stack
    /// overflow, and once `budget.max_nodes` descents have happened so
    /// wide-but-flat token streams are bounded too. Also the cadence for
    /// cooperative-cancellation polls: every recursing production passes
    /// through here.
    fn descend(&mut self) -> PResult<()> {
        self.depth += 1;
        self.nodes += 1;
        if self.depth > self.budget.max_depth {
            return self.err(
                DiagCode::DepthBudgetExceeded,
                format!("nesting too deep (limit {})", self.budget.max_depth),
            );
        }
        if self.nodes > self.budget.max_nodes {
            return self.err(
                DiagCode::NodeBudgetExceeded,
                format!("node budget exceeded (limit {})", self.budget.max_nodes),
            );
        }
        if self.nodes.is_multiple_of(CANCEL_POLL_DESCENTS) {
            if let Some(c) = &self.cancel {
                if c.is_cancelled() {
                    return self.err(DiagCode::Cancelled, "parsing cancelled");
                }
            }
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(
                DiagCode::ExpectedToken,
                format!("expected `{p}`, found `{}`", self.peek()),
            )
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) if !is_keyword(&s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(
                DiagCode::ExpectedIdent,
                format!("expected identifier, found `{other}`"),
            ),
        }
    }

    fn expect_eof(&mut self) -> PResult<()> {
        // Trailing semicolons are tolerated in snippet parsing.
        while self.eat_punct(";") {}
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.err(
                DiagCode::TrailingInput,
                format!("trailing input starting at `{}`", self.peek()),
            )
        }
    }

    // ------------------------------------------------------------------
    // Types & declarations
    // ------------------------------------------------------------------

    fn peek_type(&self) -> Option<Type> {
        match self.peek() {
            TokenKind::Ident(s) => match s.as_str() {
                "int" => Some(Type::Int),
                "long" => Some(Type::Long),
                "float" => Some(Type::Float),
                "double" => Some(Type::Double),
                "void" => Some(Type::Void),
                "unsigned" | "const" | "static" | "register" => Some(Type::Int), // qualifiers folded
                _ => None,
            },
            _ => None,
        }
    }

    #[allow(clippy::while_let_loop)]
    fn parse_type(&mut self) -> PResult<Type> {
        // Consume qualifiers then one base type keyword (possibly "long long").
        let mut ty = None;
        loop {
            match self.peek() {
                TokenKind::Ident(s) => match s.as_str() {
                    "const" | "static" | "unsigned" | "signed" | "register" => {
                        self.bump();
                    }
                    "int" => {
                        self.bump();
                        ty = Some(ty.unwrap_or(Type::Int));
                    }
                    "long" => {
                        self.bump();
                        ty = Some(Type::Long);
                    }
                    "float" => {
                        self.bump();
                        ty = Some(Type::Float);
                    }
                    "double" => {
                        self.bump();
                        ty = Some(Type::Double);
                    }
                    "void" => {
                        self.bump();
                        ty = Some(Type::Void);
                    }
                    _ => break,
                },
                _ => break,
            }
            if ty.is_some()
                && !matches!(self.peek(), TokenKind::Ident(s) if s == "int" || s == "long")
            {
                break;
            }
        }
        match ty {
            Some(t) => Ok(t),
            None => self.err(DiagCode::ExpectedType, "expected type"),
        }
    }

    fn pointer_depth(&mut self) -> usize {
        let mut d = 0;
        while self.eat_punct("*") {
            d += 1;
        }
        d
    }

    /// Parses the declarators after a type, producing one `Decl` each.
    fn declarators(&mut self, ty: Type) -> PResult<Vec<Decl>> {
        let mut out = Vec::new();
        loop {
            let pointer = self.pointer_depth();
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.eat_punct("[") {
                let d = self.expr()?;
                self.expect_punct("]")?;
                dims.push(d);
            }
            let init = if self.eat_punct("=") {
                Some(self.assign_expr()?)
            } else {
                None
            };
            out.push(Decl {
                ty: ty.clone(),
                pointer,
                name,
                dims,
                init,
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Program structure
    // ------------------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        let mut prog = Program {
            globals: Vec::new(),
            funcs: Vec::new(),
        };
        loop {
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Pragma(_) => {
                    self.bump(); // file-scope pragmas ignored
                }
                _ => {
                    let ty = self.parse_type()?;
                    let pointer = self.pointer_depth();
                    let name = self.expect_ident()?;
                    if matches!(self.peek(), TokenKind::Punct("(")) {
                        prog.funcs.push(self.function(ty, name)?);
                    } else {
                        // Global declaration; re-parse remaining declarators.
                        let mut dims = Vec::new();
                        while self.eat_punct("[") {
                            let d = self.expr()?;
                            self.expect_punct("]")?;
                            dims.push(d);
                        }
                        let init = if self.eat_punct("=") {
                            Some(self.assign_expr()?)
                        } else {
                            None
                        };
                        prog.globals.push(Decl {
                            ty: ty.clone(),
                            pointer,
                            name,
                            dims,
                            init,
                        });
                        while self.eat_punct(",") {
                            let pointer = self.pointer_depth();
                            let name = self.expect_ident()?;
                            let mut dims = Vec::new();
                            while self.eat_punct("[") {
                                let d = self.expr()?;
                                self.expect_punct("]")?;
                                dims.push(d);
                            }
                            let init = if self.eat_punct("=") {
                                Some(self.assign_expr()?)
                            } else {
                                None
                            };
                            prog.globals.push(Decl {
                                ty: ty.clone(),
                                pointer,
                                name,
                                dims,
                                init,
                            });
                        }
                        self.expect_punct(";")?;
                    }
                }
            }
        }
        Ok(prog)
    }

    fn function(&mut self, ret: Type, name: String) -> PResult<Function> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                if self.eat_ident("void") && matches!(self.peek(), TokenKind::Punct(")")) {
                    // `(void)` parameter list
                } else {
                    let ty = self.parse_type()?;
                    let pointer = self.pointer_depth();
                    let pname = self.expect_ident()?;
                    let mut dims = Vec::new();
                    while self.eat_punct("[") {
                        if self.eat_punct("]") {
                            dims.push(None);
                        } else {
                            let d = self.expr()?;
                            self.expect_punct("]")?;
                            dims.push(Some(d));
                        }
                    }
                    params.push(Param {
                        ty,
                        pointer,
                        name: pname,
                        dims,
                    });
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let body = self.block()?;
        Ok(Function {
            ret,
            name,
            params,
            body,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err(DiagCode::UnexpectedEof, "unexpected end of input in block");
            }
            stmts.push(self.statement()?);
        }
        Ok(Block { stmts })
    }

    fn statement(&mut self) -> PResult<Stmt> {
        // Every nested statement form (blocks, if/else arms, loop bodies)
        // recurses through here, so this one guard bounds them all.
        self.descend()?;
        let r = self.statement_inner();
        self.ascend();
        r
    }

    fn statement_inner(&mut self) -> PResult<Stmt> {
        if let TokenKind::Pragma(text) = self.peek().clone() {
            self.bump();
            return Ok(Stmt::Pragma(text));
        }
        match self.peek() {
            TokenKind::Punct("{") => Ok(Stmt::Block(self.block()?)),
            TokenKind::Punct(";") => {
                self.bump();
                Ok(Stmt::Empty)
            }
            TokenKind::Ident(s) => match s.as_str() {
                "if" => self.if_stmt(),
                "for" => self.for_stmt(),
                "while" => self.while_stmt(),
                "return" => {
                    self.bump();
                    if self.eat_punct(";") {
                        Ok(Stmt::Return(None))
                    } else {
                        let e = self.expr()?;
                        self.expect_punct(";")?;
                        Ok(Stmt::Return(Some(e)))
                    }
                }
                "break" => {
                    self.bump();
                    self.expect_punct(";")?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.bump();
                    self.expect_punct(";")?;
                    Ok(Stmt::Continue)
                }
                _ => {
                    if self.peek_type().is_some() {
                        let ty = self.parse_type()?;
                        let mut decls = self.declarators(ty)?;
                        if decls.len() == 1 {
                            // `declarators` always yields at least one
                            // entry on Ok; keep this unwrap-free for the
                            // lint gate anyway.
                            match decls.pop() {
                                Some(d) => Ok(Stmt::Decl(d)),
                                None => self.err(DiagCode::ExpectedIdent, "expected declarator"),
                            }
                        } else {
                            Ok(Stmt::Block(Block {
                                stmts: decls.into_iter().map(Stmt::Decl).collect(),
                            }))
                        }
                    } else {
                        let e = self.expr()?;
                        self.expect_punct(";")?;
                        Ok(Stmt::Expr(e))
                    }
                }
            },
            _ => {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // `if`
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_branch = Box::new(self.statement()?);
        let else_branch = if self.eat_ident("else") {
            Some(Box::new(self.statement()?))
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn for_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // `for`
        self.expect_punct("(")?;
        let init = if self.eat_punct(";") {
            ForInit::Empty
        } else if self.peek_type().is_some() {
            let ty = self.parse_type()?;
            let pointer = self.pointer_depth();
            let name = self.expect_ident()?;
            let init = if self.eat_punct("=") {
                Some(self.assign_expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            ForInit::Decl(Decl {
                ty,
                pointer,
                name,
                dims: Vec::new(),
                init,
            })
        } else {
            let e = self.expr()?;
            self.expect_punct(";")?;
            ForInit::Expr(e)
        };
        let cond = if self.eat_punct(";") {
            None
        } else {
            let e = self.expr()?;
            self.expect_punct(";")?;
            Some(e)
        };
        let step = if matches!(self.peek(), TokenKind::Punct(")")) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect_punct(")")?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn while_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // `while`
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let body = Box::new(self.statement()?);
        Ok(Stmt::While { cond, body })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> PResult<CExpr> {
        // Comma operator is not supported except in call argument lists,
        // where it is handled explicitly; `expr` == assignment expression.
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> PResult<CExpr> {
        // The depth guard must be HELD by every frame that recurses —
        // `a = a = …` recurses from here after the inner guards have
        // already unwound, so assign/ternary/unary each hold one level.
        self.descend()?;
        let r = self.assign_expr_inner();
        self.ascend();
        r
    }

    fn assign_expr_inner(&mut self) -> PResult<CExpr> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            TokenKind::Punct("=") => Some(AssignOp::Assign),
            TokenKind::Punct("+=") => Some(AssignOp::AddAssign),
            TokenKind::Punct("-=") => Some(AssignOp::SubAssign),
            TokenKind::Punct("*=") => Some(AssignOp::MulAssign),
            TokenKind::Punct("/=") => Some(AssignOp::DivAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assign_expr()?; // right-associative
            Ok(CExpr::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn ternary(&mut self) -> PResult<CExpr> {
        // Held across the arms: `a ? b : a ? b : …` recurses through the
        // else arm below, after the cond's guards have unwound.
        self.descend()?;
        let r = self.ternary_inner();
        self.ascend();
        r
    }

    fn ternary_inner(&mut self) -> PResult<CExpr> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then_e = self.expr()?;
            self.expect_punct(":")?;
            let else_e = self.ternary()?;
            Ok(CExpr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            })
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: usize) -> Option<BinOp> {
        let p = match self.peek() {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        let (op, op_level) = match p {
            "||" => (BinOp::Or, 0),
            "&&" => (BinOp::And, 1),
            "==" => (BinOp::Eq, 2),
            "!=" => (BinOp::Ne, 2),
            "<" => (BinOp::Lt, 3),
            "<=" => (BinOp::Le, 3),
            ">" => (BinOp::Gt, 3),
            ">=" => (BinOp::Ge, 3),
            "+" => (BinOp::Add, 4),
            "-" => (BinOp::Sub, 4),
            "*" => (BinOp::Mul, 5),
            "/" => (BinOp::Div, 5),
            "%" => (BinOp::Mod, 5),
            _ => return None,
        };
        (op_level == level).then_some(op)
    }

    fn binary(&mut self, level: usize) -> PResult<CExpr> {
        if level > 5 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = CExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<CExpr> {
        // Every recursive expression form — unary chains, parenthesized
        // expressions, subscript and call arguments — descends through
        // here at least once per level, so this guard bounds them all.
        self.descend()?;
        let r = self.unary_inner();
        self.ascend();
        r
    }

    fn unary_inner(&mut self) -> PResult<CExpr> {
        match self.peek() {
            TokenKind::Punct("-") => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(self.unary()?),
                })
            }
            TokenKind::Punct("!") => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(self.unary()?),
                })
            }
            TokenKind::Punct("+") => {
                self.bump();
                self.unary()
            }
            TokenKind::Punct("++") => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::PreInc,
                    operand: Box::new(self.unary()?),
                })
            }
            TokenKind::Punct("--") => {
                self.bump();
                Ok(CExpr::Unary {
                    op: UnOp::PreDec,
                    operand: Box::new(self.unary()?),
                })
            }
            TokenKind::Punct("(") => {
                // Either a cast or a parenthesized expression.
                let save = self.pos;
                self.bump();
                if let Some(ty) = self.peek_type() {
                    self.parse_type()?;
                    let _ptr = self.pointer_depth();
                    if self.eat_punct(")") {
                        let inner = self.unary()?;
                        return Ok(CExpr::Cast {
                            ty,
                            expr: Box::new(inner),
                        });
                    }
                }
                self.pos = save;
                self.postfix_chain()
            }
            _ => self.postfix_chain(),
        }
    }

    fn postfix_chain(&mut self) -> PResult<CExpr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Punct("[") => {
                    self.bump();
                    let ix = self.expr()?;
                    self.expect_punct("]")?;
                    e = CExpr::Index {
                        base: Box::new(e),
                        index: Box::new(ix),
                    };
                }
                TokenKind::Punct("++") => {
                    self.bump();
                    e = CExpr::Postfix {
                        op: PostOp::PostInc,
                        operand: Box::new(e),
                    };
                }
                TokenKind::Punct("--") => {
                    self.bump();
                    e = CExpr::Postfix {
                        op: PostOp::PostDec,
                        operand: Box::new(e),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<CExpr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(CExpr::IntLit(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(CExpr::FloatLit(v))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if is_keyword(&name) {
                    return self.err(
                        DiagCode::UnexpectedKeyword,
                        format!("unexpected keyword `{name}` in expression"),
                    );
                }
                self.bump();
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(CExpr::Call { name, args })
                } else {
                    Ok(CExpr::Ident(name))
                }
            }
            TokenKind::Eof => self.err(
                DiagCode::UnexpectedEof,
                "unexpected end of input in expression",
            ),
            other => self.err(
                DiagCode::UnexpectedToken,
                format!("unexpected token `{other}` in expression"),
            ),
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "for"
            | "while"
            | "return"
            | "break"
            | "continue"
            | "int"
            | "long"
            | "float"
            | "double"
            | "void"
            | "const"
            | "static"
            | "unsigned"
            | "signed"
            | "register"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_assignment() {
        let e = parse_expr("a = b + 2 * c").unwrap();
        match e {
            CExpr::Assign {
                op: AssignOp::Assign,
                rhs,
                ..
            } => match *rhs {
                CExpr::Binary { op: BinOp::Add, .. } => {}
                other => panic!("bad precedence: {other:?}"),
            },
            other => panic!("not an assignment: {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            CExpr::bin(
                BinOp::Add,
                CExpr::IntLit(1),
                CExpr::bin(BinOp::Mul, CExpr::IntLit(2), CExpr::IntLit(3))
            )
        );
    }

    #[test]
    fn subscripted_subscript() {
        let e = parse_expr("y[ind[j]]").unwrap();
        let (base, subs) = e.as_index_chain().unwrap();
        assert_eq!(base, "y");
        assert_eq!(subs.len(), 1);
        let (inner, isubs) = subs[0].as_index_chain().unwrap();
        assert_eq!(inner, "ind");
        assert_eq!(isubs.len(), 1);
    }

    #[test]
    fn postincrement_subscript() {
        let s = parse_stmt("ind[m++] = j;").unwrap();
        match s {
            Stmt::Expr(CExpr::Assign { lhs, .. }) => match *lhs {
                CExpr::Index { index, .. } => {
                    assert!(matches!(
                        *index,
                        CExpr::Postfix {
                            op: PostOp::PostInc,
                            ..
                        }
                    ))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_loop_with_decl_init() {
        let s = parse_stmt("for (int i = 0; i < n; i++) { a[i] = i; }").unwrap();
        match s {
            Stmt::For {
                init: ForInit::Decl(d),
                cond: Some(_),
                step: Some(_),
                ..
            } => {
                assert_eq!(d.name, "i");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_else_chain() {
        let s = parse_stmt("if (a < b) x = 1; else if (a > b) x = 2; else x = 3;").unwrap();
        match s {
            Stmt::If {
                else_branch: Some(e),
                ..
            } => {
                assert!(matches!(*e, Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn amgmk_fill_loop_parses() {
        let src = r#"
        void fill(int num_rows, int *A_i, int *A_rownnz) {
            int i;
            int adiag;
            int irownnz;
            irownnz = 0;
            for (i = 0; i < num_rows; i++) {
                adiag = A_i[i+1] - A_i[i];
                if (adiag > 0)
                    A_rownnz[irownnz++] = i;
            }
        }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs[0].params.len(), 3);
        assert_eq!(p.funcs[0].params[1].pointer, 1);
    }

    #[test]
    fn ua_multidim_parses() {
        let src = r#"
        void init(int idel[10][6][5][5]) {
            int iel; int j; int i; int ntemp;
            for (iel = 0; iel < 10; iel++) {
                ntemp = 125 * iel;
                for (j = 0; j < 5; j++) {
                    for (i = 0; i < 5; i++) {
                        idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                        idel[iel][1][j][i] = ntemp + i*5 + j*25;
                    }
                }
            }
        }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs[0].params[0].dims.len(), 4);
    }

    #[test]
    fn pragma_inside_block() {
        let src = r#"
        void f(int n, double *x) {
            int i;
            #pragma omp parallel for
            for (i = 0; i < n; i++) x[i] = 0.0;
        }
        "#;
        let p = parse_program(src).unwrap();
        assert!(matches!(&p.funcs[0].body.stmts[1], Stmt::Pragma(t) if t == "omp parallel for"));
    }

    #[test]
    fn cast_expression() {
        let e = parse_expr("(double) n * 0.5").unwrap();
        assert!(matches!(e, CExpr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn call_with_args() {
        let e = parse_expr("exp(-((x - t) * (x - t)) / sigma2)").unwrap();
        assert!(
            matches!(e, CExpr::Call { ref name, ref args } if name == "exp" && args.len() == 1)
        );
    }

    #[test]
    fn global_declarations() {
        let p = parse_program("int n = 100;\ndouble buf[256];\nvoid f() { }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].dims.len(), 1);
    }

    #[test]
    fn multi_declarator_statement_splits() {
        let s = parse_stmt("int a, b, c;").unwrap();
        match s {
            Stmt::Block(b) => assert_eq!(b.stmts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_line_span_and_code() {
        let src = "void f() {\n  a = ;\n}";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.code, DiagCode::UnexpectedToken);
        // The span points at the offending `;`.
        assert_eq!(&src[err.span.start..err.span.end], ";");
        let rendered = err.render(src);
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn eof_inside_block_is_typed() {
        let err = parse_program("void f() { a = 1;").unwrap_err();
        assert_eq!(err.code, DiagCode::UnexpectedEof);
    }

    #[test]
    fn ternary_expression() {
        let e = parse_expr("a < b ? a : b").unwrap();
        assert!(matches!(e, CExpr::Ternary { .. }));
    }

    #[test]
    fn while_loop() {
        let s = parse_stmt("while (k < n) { k = k + 1; }").unwrap();
        assert!(matches!(s, Stmt::While { .. }));
    }

    #[test]
    fn deep_paren_nesting_is_an_error_not_a_crash() {
        let src = format!("{}1{}", "(".repeat(100_000), ")".repeat(100_000));
        let err = parse_expr(&src).unwrap_err();
        assert_eq!(err.code, DiagCode::DepthBudgetExceeded);
        assert!(err.message.contains("nesting too deep"), "{err}");
    }

    #[test]
    fn deep_unary_chain_is_an_error_not_a_crash() {
        let src = format!("{}x", "-".repeat(100_000));
        let err = parse_expr(&src).unwrap_err();
        assert_eq!(err.code, DiagCode::DepthBudgetExceeded);
    }

    #[test]
    fn deep_block_nesting_is_an_error_not_a_crash() {
        let src = format!("{}{}", "{".repeat(100_000), "}".repeat(100_000));
        let err = parse_stmt(&src).unwrap_err();
        assert_eq!(err.code, DiagCode::DepthBudgetExceeded);
    }

    #[test]
    fn deep_subscript_nesting_is_an_error_not_a_crash() {
        let src = format!("{}0{}", "x[".repeat(50_000), "]".repeat(50_000));
        let err = parse_expr(&src).unwrap_err();
        assert_eq!(err.code, DiagCode::DepthBudgetExceeded);
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let src = format!("{}x + 1{}", "(".repeat(30), ")".repeat(30));
        assert!(parse_expr(&src).is_ok());
    }

    #[test]
    fn node_budget_bounds_flat_inputs() {
        let budget = ParseBudget {
            max_nodes: 64,
            ..ParseBudget::DEFAULT
        };
        let src = format!("void f() {{ {} }}", "x = 1; ".repeat(1_000));
        let err = parse_program_with(&src, &budget).unwrap_err();
        assert_eq!(err.code, DiagCode::NodeBudgetExceeded);
        // The same budget admits a small program.
        assert!(parse_program_with("void f() { x = 1; }", &budget).is_ok());
    }

    #[test]
    fn budget_rejections_are_deterministic() {
        let budget = ParseBudget {
            max_depth: 10,
            ..ParseBudget::DEFAULT
        };
        let src = format!("{}1{}", "(".repeat(64), ")".repeat(64));
        let a = parse_expr_with(&src, &budget).unwrap_err();
        let b = parse_expr_with(&src, &budget).unwrap_err();
        assert_eq!(a, b);
        assert!(a.span.end <= src.len());
    }

    #[test]
    fn cancelled_parse_reports_cancellation() {
        use std::sync::Arc;
        use subsub_omprt::cancel::with_ambient_cancel;
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let src = format!("void f() {{ {} }}", "x = y + 1; ".repeat(2_000));
        let err = with_ambient_cancel(&token, || parse_program(&src)).unwrap_err();
        assert_eq!(err.code, DiagCode::Cancelled);
    }
}
