//! Abstract syntax tree for the C subset.

use std::fmt;

/// Base types of the C subset (pointer/array shape lives in the declarator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `void`
    Void,
    /// A typedef-style named type we do not interpret.
    Named(String),
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Long => write!(f, "long"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Void => write!(f, "void"),
            Type::Named(n) => write!(f, "{n}"),
        }
    }
}

impl Type {
    /// True for the integer types the analysis tracks as loop-variant
    /// integer scalars/arrays.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Int | Type::Long)
    }
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// File-scope variable declarations.
    pub globals: Vec<Decl>,
    /// Function definitions, in source order.
    pub funcs: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
}

/// A formal parameter, e.g. `int *a` or `double x[5][5]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Base type.
    pub ty: Type,
    /// Pointer depth (`int **p` has depth 2).
    pub pointer: usize,
    /// Parameter name.
    pub name: String,
    /// Array dimension expressions (empty for scalars/pointers). The first
    /// dimension may be omitted in C (`a[]`), represented as `None`.
    pub dims: Vec<Option<CExpr>>,
}

/// A variable declaration (one declarator; comma lists are split by the
/// parser).
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Base type.
    pub ty: Type,
    /// Pointer depth.
    pub pointer: usize,
    /// Variable name.
    pub name: String,
    /// Array dimensions (empty for scalars).
    pub dims: Vec<CExpr>,
    /// Optional initializer.
    pub init: Option<CExpr>,
}

/// A brace-enclosed statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// The init clause of a `for` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ForInit {
    /// Empty init (`for (;…;…)`).
    Empty,
    /// A declaration with initializer (`for (int i = 0; …)`).
    Decl(Decl),
    /// An expression, typically an assignment (`for (i = 0; …)`).
    Expr(CExpr),
}

/// Statements of the C subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local declaration.
    Decl(Decl),
    /// An expression statement (assignments, calls, `m++`).
    Expr(CExpr),
    /// A nested block.
    Block(Block),
    /// `if (cond) then [else …]`.
    If {
        /// Controlling condition.
        cond: CExpr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Init clause.
        init: ForInit,
        /// Loop condition (`None` = infinite).
        cond: Option<CExpr>,
        /// Step expression.
        step: Option<CExpr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: CExpr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return [expr];`
    Return(Option<CExpr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A `#pragma` line, kept verbatim.
    Pragma(String),
    /// The empty statement `;`.
    Empty,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// C-style operator spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// True for `< <= > >= == !=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
}

/// Postfix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PostOp {
    /// `x++`
    PostInc,
    /// `x--`
    PostDec,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl AssignOp {
    /// C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        }
    }

    /// The underlying binary operator of a compound assignment.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        }
    }
}

/// Expressions of the C subset.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Identifier reference.
    Ident(String),
    /// Array subscript `base[index]` (chained for multi-dimensional).
    Index {
        /// The array expression being indexed.
        base: Box<CExpr>,
        /// Subscript expression.
        index: Box<CExpr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<CExpr>,
    },
    /// Prefix unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<CExpr>,
    },
    /// Postfix `++`/`--`.
    Postfix {
        /// Operator.
        op: PostOp,
        /// Operand.
        operand: Box<CExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Assignment (an expression in C).
    Assign {
        /// Assignment operator.
        op: AssignOp,
        /// Assigned lvalue.
        lhs: Box<CExpr>,
        /// Right-hand side.
        rhs: Box<CExpr>,
    },
    /// Conditional expression `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<CExpr>,
        /// Value when true.
        then_e: Box<CExpr>,
        /// Value when false.
        else_e: Box<CExpr>,
    },
    /// C cast `(type) expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<CExpr>,
    },
}

impl CExpr {
    /// Convenience constructor for `Ident`.
    pub fn ident(name: &str) -> CExpr {
        CExpr::Ident(name.to_string())
    }

    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: CExpr, rhs: CExpr) -> CExpr {
        CExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Peels a (possibly multi-dimensional) index chain, returning the base
    /// identifier and the subscripts outermost-first:
    /// `idel[iel][0][j][i]` → `("idel", [iel, 0, j, i])`.
    pub fn as_index_chain(&self) -> Option<(&str, Vec<&CExpr>)> {
        let mut subs_rev = Vec::new();
        let mut cur = self;
        while let CExpr::Index { base, index } = cur {
            subs_rev.push(index.as_ref());
            cur = base.as_ref();
        }
        match cur {
            CExpr::Ident(name) if !subs_rev.is_empty() => {
                subs_rev.reverse();
                Some((name, subs_rev))
            }
            _ => None,
        }
    }

    /// True if the expression contains an assignment or `++`/`--`
    /// (i.e. has side effects the normalizer must lift out).
    pub fn has_side_effects(&self) -> bool {
        match self {
            CExpr::IntLit(_) | CExpr::FloatLit(_) | CExpr::Ident(_) => false,
            CExpr::Index { base, index } => base.has_side_effects() || index.has_side_effects(),
            CExpr::Call { args, .. } => args.iter().any(CExpr::has_side_effects),
            CExpr::Unary { op, operand } => {
                matches!(op, UnOp::PreInc | UnOp::PreDec) || operand.has_side_effects()
            }
            CExpr::Postfix { .. } => true,
            CExpr::Binary { lhs, rhs, .. } => lhs.has_side_effects() || rhs.has_side_effects(),
            CExpr::Assign { .. } => true,
            CExpr::Ternary {
                cond,
                then_e,
                else_e,
            } => cond.has_side_effects() || then_e.has_side_effects() || else_e.has_side_effects(),
            CExpr::Cast { expr, .. } => expr.has_side_effects(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_chain_multidim() {
        // idel[iel][0][j]
        let e = CExpr::Index {
            base: Box::new(CExpr::Index {
                base: Box::new(CExpr::Index {
                    base: Box::new(CExpr::ident("idel")),
                    index: Box::new(CExpr::ident("iel")),
                }),
                index: Box::new(CExpr::IntLit(0)),
            }),
            index: Box::new(CExpr::ident("j")),
        };
        match e.as_index_chain() {
            Some((name, subs)) => {
                assert_eq!(name, "idel");
                assert_eq!(subs.len(), 3);
                assert_eq!(subs[0], &CExpr::ident("iel"));
                assert_eq!(subs[1], &CExpr::IntLit(0));
                assert_eq!(subs[2], &CExpr::ident("j"));
            }
            None => panic!("expected an index chain"),
        }
    }

    #[test]
    fn non_index_chain_returns_none() {
        // A bare identifier has no subscripts.
        assert!(CExpr::ident("a").as_index_chain().is_none());
        // Indexing a call result has no identifier base: `f(x)[0]`.
        let call_base = CExpr::Index {
            base: Box::new(CExpr::Call {
                name: "f".into(),
                args: vec![CExpr::ident("x")],
            }),
            index: Box::new(CExpr::IntLit(0)),
        };
        assert!(call_base.as_index_chain().is_none());
        // Indexing an arithmetic base: `(a + b)[i]`.
        let expr_base = CExpr::Index {
            base: Box::new(CExpr::bin(BinOp::Add, CExpr::ident("a"), CExpr::ident("b"))),
            index: Box::new(CExpr::ident("i")),
        };
        assert!(expr_base.as_index_chain().is_none());
        // Literals and casts are not chains either.
        assert!(CExpr::IntLit(3).as_index_chain().is_none());
        let cast = CExpr::Cast {
            ty: Type::Int,
            expr: Box::new(CExpr::ident("a")),
        };
        assert!(cast.as_index_chain().is_none());
    }

    #[test]
    fn side_effects_detection() {
        let clean = CExpr::bin(BinOp::Add, CExpr::ident("a"), CExpr::IntLit(1));
        assert!(!clean.has_side_effects());
        let post = CExpr::Postfix {
            op: PostOp::PostInc,
            operand: Box::new(CExpr::ident("m")),
        };
        assert!(post.has_side_effects());
        let idx = CExpr::Index {
            base: Box::new(CExpr::ident("a")),
            index: Box::new(post),
        };
        assert!(idx.has_side_effects());
    }

    #[test]
    fn assign_op_binop() {
        assert_eq!(AssignOp::AddAssign.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Assign.binop(), None);
    }
}
