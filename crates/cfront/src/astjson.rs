//! Canonical AST serialization (`subsub-ast/v1`) and structural diffing.
//!
//! The serializer emits a deterministic JSON form of a [`Program`] —
//! the conformance contract for the frontend: two sources are
//! structurally identical iff their serialized forms are byte-identical.
//! The differ walks two ASTs in lockstep and reports path-addressed
//! mismatches (`$.funcs[0].body.stmts[2].cond`), which is what the
//! `conform` harness prints when a round trip diverges.
//!
//! String escaping reuses `telemetry::json` so the output parses with the
//! in-tree JSON reader; integer literals are serialized as strings to
//! keep full `i64` precision (the reader holds numbers as `f64`).

use crate::ast::*;
use crate::printer::print_expr;
use std::fmt;
use std::fmt::Write;
use subsub_telemetry::json::escape;

/// Schema identifier embedded in every serialized program.
pub const AST_SCHEMA: &str = "subsub-ast/v1";

/// One structural divergence between two ASTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstMismatch {
    /// JSONPath-style address of the diverging node.
    pub path: String,
    /// Short rendering of the left side at that path.
    pub left: String,
    /// Short rendering of the right side at that path.
    pub right: String,
}

impl fmt::Display for AstMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} != {}", self.path, self.left, self.right)
    }
}

// ---------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------

/// Rewrites a program into printer-canonical form: every control-flow
/// body (`if` arms, `for`/`while` bodies) becomes an explicit block.
/// The printer always emits braces, so a reparse of printed output
/// yields the canonical form — round-trip identity is checked between
/// canonical forms on both sides.
pub fn canonicalize(p: &Program) -> Program {
    Program {
        globals: p.globals.clone(),
        funcs: p
            .funcs
            .iter()
            .map(|f| Function {
                ret: f.ret.clone(),
                name: f.name.clone(),
                params: f.params.clone(),
                body: canon_block(&f.body),
            })
            .collect(),
    }
}

fn canon_block(b: &Block) -> Block {
    Block {
        stmts: b.stmts.iter().map(canon_stmt).collect(),
    }
}

/// Wraps a statement used as a control-flow body into a block. A body
/// that is already a block is canonicalized in place (the printer
/// flattens it into the braces it emits anyway).
fn canon_body(s: &Stmt) -> Box<Stmt> {
    Box::new(match canon_stmt(s) {
        Stmt::Block(b) => Stmt::Block(b),
        other => Stmt::Block(Block { stmts: vec![other] }),
    })
}

fn canon_stmt(s: &Stmt) -> Stmt {
    match s {
        Stmt::Block(b) => Stmt::Block(canon_block(b)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: cond.clone(),
            then_branch: canon_body(then_branch),
            else_branch: else_branch.as_ref().map(|e| canon_body(e)),
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            init: init.clone(),
            cond: cond.clone(),
            step: step.clone(),
            body: canon_body(body),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: cond.clone(),
            body: canon_body(body),
        },
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Serializes a program to canonical `subsub-ast/v1` JSON.
pub fn program_to_json(p: &Program) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\":\"{AST_SCHEMA}\",\"globals\":[");
    for (i, g) in p.globals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        decl_json(&mut out, g);
    }
    out.push_str("],\"funcs\":[");
    for (i, f) in p.funcs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        func_json(&mut out, f);
    }
    out.push_str("]}");
    out
}

fn func_json(out: &mut String, f: &Function) {
    let _ = write!(
        out,
        "{{\"ret\":\"{}\",\"name\":\"{}\",\"params\":[",
        escape(&f.ret.to_string()),
        escape(&f.name)
    );
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ty\":\"{}\",\"ptr\":{},\"name\":\"{}\",\"dims\":[",
            escape(&p.ty.to_string()),
            p.pointer,
            escape(&p.name)
        );
        for (j, d) in p.dims.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match d {
                Some(e) => expr_json(out, e),
                None => out.push_str("null"),
            }
        }
        out.push_str("]}");
    }
    out.push_str("],\"body\":");
    block_json(out, &f.body);
    out.push('}');
}

fn decl_json(out: &mut String, d: &Decl) {
    let _ = write!(
        out,
        "{{\"k\":\"decl\",\"ty\":\"{}\",\"ptr\":{},\"name\":\"{}\",\"dims\":[",
        escape(&d.ty.to_string()),
        d.pointer,
        escape(&d.name)
    );
    for (i, e) in d.dims.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        expr_json(out, e);
    }
    out.push_str("],\"init\":");
    match &d.init {
        Some(e) => expr_json(out, e),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn block_json(out: &mut String, b: &Block) {
    out.push('[');
    for (i, s) in b.stmts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        stmt_json(out, s);
    }
    out.push(']');
}

fn stmt_json(out: &mut String, s: &Stmt) {
    match s {
        Stmt::Decl(d) => decl_json(out, d),
        Stmt::Expr(e) => {
            out.push_str("{\"k\":\"expr\",\"e\":");
            expr_json(out, e);
            out.push('}');
        }
        Stmt::Block(b) => {
            out.push_str("{\"k\":\"block\",\"stmts\":");
            block_json(out, b);
            out.push('}');
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("{\"k\":\"if\",\"cond\":");
            expr_json(out, cond);
            out.push_str(",\"then\":");
            stmt_json(out, then_branch);
            out.push_str(",\"else\":");
            match else_branch {
                Some(e) => stmt_json(out, e),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("{\"k\":\"for\",\"init\":");
            match init {
                ForInit::Empty => out.push_str("{\"k\":\"none\"}"),
                ForInit::Decl(d) => decl_json(out, d),
                ForInit::Expr(e) => {
                    out.push_str("{\"k\":\"expr\",\"e\":");
                    expr_json(out, e);
                    out.push('}');
                }
            }
            out.push_str(",\"cond\":");
            match cond {
                Some(e) => expr_json(out, e),
                None => out.push_str("null"),
            }
            out.push_str(",\"step\":");
            match step {
                Some(e) => expr_json(out, e),
                None => out.push_str("null"),
            }
            out.push_str(",\"body\":");
            stmt_json(out, body);
            out.push('}');
        }
        Stmt::While { cond, body } => {
            out.push_str("{\"k\":\"while\",\"cond\":");
            expr_json(out, cond);
            out.push_str(",\"body\":");
            stmt_json(out, body);
            out.push('}');
        }
        Stmt::Return(e) => {
            out.push_str("{\"k\":\"return\",\"e\":");
            match e {
                Some(e) => expr_json(out, e),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        Stmt::Break => out.push_str("{\"k\":\"break\"}"),
        Stmt::Continue => out.push_str("{\"k\":\"continue\"}"),
        Stmt::Pragma(t) => {
            let _ = write!(out, "{{\"k\":\"pragma\",\"text\":\"{}\"}}", escape(t));
        }
        Stmt::Empty => out.push_str("{\"k\":\"empty\"}"),
    }
}

fn unop_symbol(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "-",
        UnOp::Not => "!",
        UnOp::PreInc => "++",
        UnOp::PreDec => "--",
    }
}

fn postop_symbol(op: PostOp) -> &'static str {
    match op {
        PostOp::PostInc => "++",
        PostOp::PostDec => "--",
    }
}

fn expr_json(out: &mut String, e: &CExpr) {
    match e {
        // Integer literals serialize as strings: the in-tree JSON reader
        // holds numbers as f64 and would lose i64 precision past 2^53.
        CExpr::IntLit(v) => {
            let _ = write!(out, "{{\"k\":\"int\",\"v\":\"{v}\"}}");
        }
        CExpr::FloatLit(v) => {
            let _ = write!(out, "{{\"k\":\"float\",\"v\":\"{v}\"}}");
        }
        CExpr::Ident(n) => {
            let _ = write!(out, "{{\"k\":\"ident\",\"name\":\"{}\"}}", escape(n));
        }
        CExpr::Index { base, index } => {
            out.push_str("{\"k\":\"index\",\"base\":");
            expr_json(out, base);
            out.push_str(",\"index\":");
            expr_json(out, index);
            out.push('}');
        }
        CExpr::Call { name, args } => {
            let _ = write!(
                out,
                "{{\"k\":\"call\",\"name\":\"{}\",\"args\":[",
                escape(name)
            );
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                expr_json(out, a);
            }
            out.push_str("]}");
        }
        CExpr::Unary { op, operand } => {
            let _ = write!(
                out,
                "{{\"k\":\"unary\",\"op\":\"{}\",\"e\":",
                unop_symbol(*op)
            );
            expr_json(out, operand);
            out.push('}');
        }
        CExpr::Postfix { op, operand } => {
            let _ = write!(
                out,
                "{{\"k\":\"postfix\",\"op\":\"{}\",\"e\":",
                postop_symbol(*op)
            );
            expr_json(out, operand);
            out.push('}');
        }
        CExpr::Binary { op, lhs, rhs } => {
            let _ = write!(out, "{{\"k\":\"bin\",\"op\":\"{}\",\"lhs\":", op.symbol());
            expr_json(out, lhs);
            out.push_str(",\"rhs\":");
            expr_json(out, rhs);
            out.push('}');
        }
        CExpr::Assign { op, lhs, rhs } => {
            let _ = write!(
                out,
                "{{\"k\":\"assign\",\"op\":\"{}\",\"lhs\":",
                op.symbol()
            );
            expr_json(out, lhs);
            out.push_str(",\"rhs\":");
            expr_json(out, rhs);
            out.push('}');
        }
        CExpr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            out.push_str("{\"k\":\"ternary\",\"cond\":");
            expr_json(out, cond);
            out.push_str(",\"then\":");
            expr_json(out, then_e);
            out.push_str(",\"else\":");
            expr_json(out, else_e);
            out.push('}');
        }
        CExpr::Cast { ty, expr } => {
            let _ = write!(
                out,
                "{{\"k\":\"cast\",\"ty\":\"{}\",\"e\":",
                escape(&ty.to_string())
            );
            expr_json(out, expr);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Structural diff
// ---------------------------------------------------------------------

struct Differ {
    out: Vec<AstMismatch>,
}

/// Bound on the number of reported mismatches — the first divergence is
/// what matters; an unbounded report on grossly different trees is noise.
const MAX_MISMATCHES: usize = 32;

impl Differ {
    fn report(&mut self, path: &str, left: impl Into<String>, right: impl Into<String>) {
        if self.out.len() < MAX_MISMATCHES {
            self.out.push(AstMismatch {
                path: path.to_string(),
                left: left.into(),
                right: right.into(),
            });
        }
    }

    fn lens<T>(&mut self, path: &str, what: &str, a: &[T], b: &[T]) -> bool {
        if a.len() != b.len() {
            self.report(
                path,
                format!("{} {}(s)", a.len(), what),
                format!("{} {}(s)", b.len(), what),
            );
            false
        } else {
            true
        }
    }

    fn diff_decl(&mut self, path: &str, a: &Decl, b: &Decl) {
        if a.ty != b.ty {
            self.report(&format!("{path}.ty"), a.ty.to_string(), b.ty.to_string());
        }
        if a.pointer != b.pointer {
            self.report(
                &format!("{path}.ptr"),
                a.pointer.to_string(),
                b.pointer.to_string(),
            );
        }
        if a.name != b.name {
            self.report(&format!("{path}.name"), &a.name, &b.name);
        }
        if self.lens(&format!("{path}.dims"), "dim", &a.dims, &b.dims) {
            for (i, (x, y)) in a.dims.iter().zip(&b.dims).enumerate() {
                self.diff_expr(&format!("{path}.dims[{i}]"), x, y);
            }
        }
        self.diff_opt_expr(&format!("{path}.init"), &a.init, &b.init);
    }

    fn diff_opt_expr(&mut self, path: &str, a: &Option<CExpr>, b: &Option<CExpr>) {
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => self.diff_expr(path, x, y),
            (Some(x), None) => self.report(path, print_expr(x), "<absent>"),
            (None, Some(y)) => self.report(path, "<absent>", print_expr(y)),
        }
    }

    fn diff_block(&mut self, path: &str, a: &Block, b: &Block) {
        if self.lens(&format!("{path}.stmts"), "stmt", &a.stmts, &b.stmts) {
            for (i, (x, y)) in a.stmts.iter().zip(&b.stmts).enumerate() {
                self.diff_stmt(&format!("{path}.stmts[{i}]"), x, y);
            }
        }
    }

    fn diff_stmt(&mut self, path: &str, a: &Stmt, b: &Stmt) {
        match (a, b) {
            (Stmt::Decl(x), Stmt::Decl(y)) => self.diff_decl(path, x, y),
            (Stmt::Expr(x), Stmt::Expr(y)) => self.diff_expr(path, x, y),
            (Stmt::Block(x), Stmt::Block(y)) => self.diff_block(path, x, y),
            (
                Stmt::If {
                    cond: c1,
                    then_branch: t1,
                    else_branch: e1,
                },
                Stmt::If {
                    cond: c2,
                    then_branch: t2,
                    else_branch: e2,
                },
            ) => {
                self.diff_expr(&format!("{path}.cond"), c1, c2);
                self.diff_stmt(&format!("{path}.then"), t1, t2);
                match (e1, e2) {
                    (None, None) => {}
                    (Some(x), Some(y)) => self.diff_stmt(&format!("{path}.else"), x, y),
                    (Some(_), None) => self.report(&format!("{path}.else"), "else", "<absent>"),
                    (None, Some(_)) => self.report(&format!("{path}.else"), "<absent>", "else"),
                }
            }
            (
                Stmt::For {
                    init: i1,
                    cond: c1,
                    step: s1,
                    body: b1,
                },
                Stmt::For {
                    init: i2,
                    cond: c2,
                    step: s2,
                    body: b2,
                },
            ) => {
                match (i1, i2) {
                    (ForInit::Empty, ForInit::Empty) => {}
                    (ForInit::Decl(x), ForInit::Decl(y)) => {
                        self.diff_decl(&format!("{path}.init"), x, y)
                    }
                    (ForInit::Expr(x), ForInit::Expr(y)) => {
                        self.diff_expr(&format!("{path}.init"), x, y)
                    }
                    _ => self.report(&format!("{path}.init"), forinit_tag(i1), forinit_tag(i2)),
                }
                self.diff_opt_expr(&format!("{path}.cond"), c1, c2);
                self.diff_opt_expr(&format!("{path}.step"), s1, s2);
                self.diff_stmt(&format!("{path}.body"), b1, b2);
            }
            (Stmt::While { cond: c1, body: b1 }, Stmt::While { cond: c2, body: b2 }) => {
                self.diff_expr(&format!("{path}.cond"), c1, c2);
                self.diff_stmt(&format!("{path}.body"), b1, b2);
            }
            (Stmt::Return(x), Stmt::Return(y)) => {
                self.diff_opt_expr(&format!("{path}.value"), x, y)
            }
            (Stmt::Break, Stmt::Break)
            | (Stmt::Continue, Stmt::Continue)
            | (Stmt::Empty, Stmt::Empty) => {}
            (Stmt::Pragma(x), Stmt::Pragma(y)) => {
                if x != y {
                    self.report(&format!("{path}.pragma"), x, y);
                }
            }
            _ => self.report(path, stmt_tag(a), stmt_tag(b)),
        }
    }

    fn diff_expr(&mut self, path: &str, a: &CExpr, b: &CExpr) {
        if a == b {
            return;
        }
        match (a, b) {
            (
                CExpr::Index {
                    base: b1,
                    index: i1,
                },
                CExpr::Index {
                    base: b2,
                    index: i2,
                },
            ) => {
                self.diff_expr(&format!("{path}.base"), b1, b2);
                self.diff_expr(&format!("{path}.index"), i1, i2);
            }
            (CExpr::Call { name: n1, args: a1 }, CExpr::Call { name: n2, args: a2 }) => {
                if n1 != n2 {
                    self.report(&format!("{path}.callee"), n1, n2);
                }
                if self.lens(&format!("{path}.args"), "arg", a1, a2) {
                    for (i, (x, y)) in a1.iter().zip(a2).enumerate() {
                        self.diff_expr(&format!("{path}.args[{i}]"), x, y);
                    }
                }
            }
            (
                CExpr::Binary {
                    op: o1,
                    lhs: l1,
                    rhs: r1,
                },
                CExpr::Binary {
                    op: o2,
                    lhs: l2,
                    rhs: r2,
                },
            ) if o1 == o2 => {
                self.diff_expr(&format!("{path}.lhs"), l1, l2);
                self.diff_expr(&format!("{path}.rhs"), r1, r2);
            }
            (
                CExpr::Assign {
                    op: o1,
                    lhs: l1,
                    rhs: r1,
                },
                CExpr::Assign {
                    op: o2,
                    lhs: l2,
                    rhs: r2,
                },
            ) if o1 == o2 => {
                self.diff_expr(&format!("{path}.lhs"), l1, l2);
                self.diff_expr(&format!("{path}.rhs"), r1, r2);
            }
            (
                CExpr::Ternary {
                    cond: c1,
                    then_e: t1,
                    else_e: e1,
                },
                CExpr::Ternary {
                    cond: c2,
                    then_e: t2,
                    else_e: e2,
                },
            ) => {
                self.diff_expr(&format!("{path}.cond"), c1, c2);
                self.diff_expr(&format!("{path}.then"), t1, t2);
                self.diff_expr(&format!("{path}.else"), e1, e2);
            }
            // Leaf or tag-level mismatch: render both sides as C.
            _ => self.report(path, print_expr(a), print_expr(b)),
        }
    }
}

fn stmt_tag(s: &Stmt) -> &'static str {
    match s {
        Stmt::Decl(_) => "decl",
        Stmt::Expr(_) => "expr",
        Stmt::Block(_) => "block",
        Stmt::If { .. } => "if",
        Stmt::For { .. } => "for",
        Stmt::While { .. } => "while",
        Stmt::Return(_) => "return",
        Stmt::Break => "break",
        Stmt::Continue => "continue",
        Stmt::Pragma(_) => "pragma",
        Stmt::Empty => "empty",
    }
}

fn forinit_tag(i: &ForInit) -> &'static str {
    match i {
        ForInit::Empty => "empty-init",
        ForInit::Decl(_) => "decl-init",
        ForInit::Expr(_) => "expr-init",
    }
}

/// Structurally compares two programs, returning path-addressed
/// mismatches (empty = identical). At most 32 mismatches are reported.
pub fn diff_programs(a: &Program, b: &Program) -> Vec<AstMismatch> {
    let mut d = Differ { out: Vec::new() };
    if d.lens("$.globals", "global", &a.globals, &b.globals) {
        for (i, (x, y)) in a.globals.iter().zip(&b.globals).enumerate() {
            d.diff_decl(&format!("$.globals[{i}]"), x, y);
        }
    }
    if d.lens("$.funcs", "func", &a.funcs, &b.funcs) {
        for (i, (x, y)) in a.funcs.iter().zip(&b.funcs).enumerate() {
            let path = format!("$.funcs[{i}]");
            if x.ret != y.ret {
                d.report(&format!("{path}.ret"), x.ret.to_string(), y.ret.to_string());
            }
            if x.name != y.name {
                d.report(&format!("{path}.name"), &x.name, &y.name);
            }
            if d.lens(&format!("{path}.params"), "param", &x.params, &y.params) {
                for (j, (p, q)) in x.params.iter().zip(&y.params).enumerate() {
                    if p != q {
                        d.report(
                            &format!("{path}.params[{j}]"),
                            format!("{} {}{}", p.ty, "*".repeat(p.pointer), p.name),
                            format!("{} {}{}", q.ty, "*".repeat(q.pointer), q.name),
                        );
                    }
                }
            }
            d.diff_block(&format!("{path}.body"), &x.body, &y.body);
        }
    }
    d.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use subsub_telemetry::json;

    const SRC: &str = r#"
    int total = 0;
    void fill(int num_rows, int *A_i, int *A_rownnz) {
        int i; int adiag; int irownnz;
        irownnz = 0;
        for (i = 0; i < num_rows; i++) {
            adiag = A_i[i + 1] - A_i[i];
            if (adiag > 0)
                A_rownnz[irownnz++] = i;
        }
    }
    "#;

    #[test]
    fn serialization_is_deterministic_and_parses() {
        let p = parse_program(SRC).unwrap();
        let j1 = program_to_json(&p);
        let j2 = program_to_json(&p);
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"schema\":\"subsub-ast/v1\""));
        let parsed = json::parse(&j1).expect("serialized AST must be valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some(AST_SCHEMA)
        );
        assert_eq!(
            parsed
                .get("funcs")
                .and_then(|f| f.as_array())
                .map(|f| f.len()),
            Some(1)
        );
    }

    #[test]
    fn int_literals_keep_full_precision() {
        let p = parse_program("void f(long *x) { x[0] = 9007199254740993; }").unwrap();
        let j = program_to_json(&p);
        // 2^53 + 1 is not representable in f64; the string form must
        // carry it exactly.
        assert!(j.contains("\"9007199254740993\""), "{j}");
    }

    #[test]
    fn canonicalize_braces_all_bodies() {
        let p = parse_program(SRC).unwrap();
        let c = canonicalize(&p);
        match &c.funcs[0].body.stmts[4] {
            Stmt::For { body, .. } => match &**body {
                Stmt::Block(b) => match &b.stmts[1] {
                    Stmt::If { then_branch, .. } => {
                        assert!(matches!(&**then_branch, Stmt::Block(_)))
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // Canonicalization is idempotent.
        assert_eq!(c, canonicalize(&c));
    }

    #[test]
    fn identical_programs_have_empty_diff() {
        let p = parse_program(SRC).unwrap();
        assert!(diff_programs(&p, &p).is_empty());
        // And identical serialized forms.
        assert_eq!(program_to_json(&p), program_to_json(&p.clone()));
    }

    #[test]
    fn diff_addresses_the_changed_node() {
        let a = parse_program("void f(int *x) { x[0] = 1 + 2; }").unwrap();
        let b = parse_program("void f(int *x) { x[0] = 1 + 3; }").unwrap();
        let m = diff_programs(&a, &b);
        assert_eq!(m.len(), 1, "{m:?}");
        assert_eq!(m[0].path, "$.funcs[0].body.stmts[0].rhs.rhs");
        assert_eq!(m[0].left, "2");
        assert_eq!(m[0].right, "3");
    }

    #[test]
    fn diff_reports_shape_changes() {
        let a = parse_program("void f() { int i; }").unwrap();
        let b = parse_program("void f() { int i; int j; }").unwrap();
        let m = diff_programs(&a, &b);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].path, "$.funcs[0].body.stmts");
    }

    #[test]
    fn diff_is_bounded() {
        let mk = |v: i64| {
            let body: String = (0..100).map(|i| format!("x[{i}] = {v};")).collect();
            parse_program(&format!("void f(int *x) {{ {body} }}")).unwrap()
        };
        let m = diff_programs(&mk(1), &mk(2));
        assert_eq!(m.len(), MAX_MISMATCHES);
    }
}
