//! Fuzz smoke test: the lexer and parser must never panic (or overflow
//! the stack) on arbitrary input — every malformed program is a
//! `LexError`/`ParseError`, never a crash. The frontend sits upstream of
//! the parallelization pipeline, so a crash here is denial of service
//! for the whole analysis.
//!
//! Deterministic, offline, no external fuzzing engine: a small inline
//! PRNG drives 3 334 random byte strings and 3 334 random token soups
//! per pinned seed (20 004 inputs total), each fed to `parse_program`,
//! `parse_stmt`, and `parse_expr` under `catch_unwind`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use subsub_cfront::{parse_expr, parse_program, parse_stmt};

/// xorshift64* — inline so the test has no dependencies beyond cfront.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Byte pool skewed toward bytes the lexer treats specially, plus raw
/// non-ASCII bytes (folded to U+FFFD by `from_utf8_lossy`, which the
/// lexer must reject cleanly, not crash on).
fn random_bytes(rng: &mut Rng) -> String {
    const POOL: &[u8] =
        b"(){}[];,+-*/%=<>!&|^~?:.#\\\"'\n\t 0123456789abcdefXYZ_\x00\x7f\x80\xc3\xff";
    let len = rng.below(200);
    let bytes: Vec<u8> = (0..len).map(|_| POOL[rng.below(POOL.len())]).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Structured soup: valid tokens in random order, which drives the
/// parser much deeper than raw bytes do.
fn random_tokens(rng: &mut Rng) -> String {
    const TOKENS: &[&str] = &[
        "(",
        ")",
        "[",
        "]",
        "{",
        "}",
        ";",
        ",",
        "=",
        "+",
        "-",
        "*",
        "/",
        "%",
        "<",
        ">",
        "<=",
        ">=",
        "==",
        "!=",
        "&&",
        "||",
        "++",
        "--",
        "+=",
        "-=",
        "?",
        ":",
        "!",
        "if",
        "else",
        "for",
        "while",
        "return",
        "break",
        "continue",
        "int",
        "long",
        "float",
        "double",
        "void",
        "unsigned",
        "const",
        "static",
        "x",
        "y",
        "ind",
        "n",
        "0",
        "1",
        "42",
        "1.5",
        "2e3",
        "1e",
        "0.",
        "9999999999999999999999",
        "#pragma omp parallel for\n",
        "#include <x>\n",
        "// c\n",
        "/*",
        "*/",
        "\n",
    ];
    let len = rng.below(80);
    let mut out = String::new();
    for _ in 0..len {
        out.push_str(TOKENS[rng.below(TOKENS.len())]);
        out.push(' ');
    }
    out
}

fn assert_no_panic(src: &str) {
    for (what, run) in [
        (
            "parse_program",
            Box::new(|| drop(parse_program(src))) as Box<dyn Fn()>,
        ),
        ("parse_stmt", Box::new(|| drop(parse_stmt(src)))),
        ("parse_expr", Box::new(|| drop(parse_expr(src)))),
    ] {
        let outcome = catch_unwind(AssertUnwindSafe(&run));
        assert!(
            outcome.is_ok(),
            "{what} panicked on input ({} bytes): {:?}",
            src.len(),
            &src[..src.len().min(120)]
        );
    }
}

#[test]
fn random_byte_inputs_never_panic() {
    for seed in [7u64, 31337, 271828] {
        let mut rng = Rng::new(seed);
        for _ in 0..3_334 {
            assert_no_panic(&random_bytes(&mut rng));
        }
    }
}

#[test]
fn random_token_soup_never_panics() {
    for seed in [7u64, 31337, 271828] {
        let mut rng = Rng::new(seed);
        for _ in 0..3_334 {
            assert_no_panic(&random_tokens(&mut rng));
        }
    }
}

#[test]
fn hostile_nesting_returns_errors() {
    for src in [
        format!("{}1", "(".repeat(100_000)),
        format!("{}x", "-".repeat(100_000)),
        format!("{}x", "!".repeat(100_000)),
        format!("{}x", "++".repeat(100_000)),
        "{".repeat(100_000),
        format!("void f() {{ {} }}", "{".repeat(100_000)),
        format!("if (x) {}", "if (x) ".repeat(100_000)),
        format!("a{}", "[0".repeat(100_000)),
        format!("f{}", "(g".repeat(100_000)),
        format!("a ? {}b : c", "b ? ".repeat(100_000)),
    ] {
        assert_no_panic(&src);
        assert!(
            parse_expr(&src).is_err() || parse_stmt(&src).is_err(),
            "hostile input unexpectedly parsed"
        );
    }
}

#[test]
fn truncated_and_garbage_inputs_error_cleanly() {
    for src in [
        "",
        "/*",
        "/* unterminated",
        "\"",
        "void f( {",
        "int x = ;",
        "for (;;",
        "1e",
        "1e+",
        "0..5",
        "99999999999999999999999999",
        "#pragma",
        "\u{fffd}\u{fffd}",
        "int \u{fffd};",
    ] {
        assert_no_panic(src);
    }
}
