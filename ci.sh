#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, full test suite.
# Everything runs offline — the workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (no unwrap in omprt/rtcheck hot paths) =="
# The runtime's recovery story depends on lock/channel results never
# being unwrapped on the execution path; keep the lint as a gate.
cargo clippy -q -p subsub-omprt -p subsub-rtcheck -- \
  -D warnings -D clippy::unwrap_used

echo "== release build =="
cargo build --release --workspace

echo "== test suite =="
cargo test --workspace -q

echo "== chaos sweep (seeded fault injection, pinned seeds) =="
# Seeded failpoint schedules over the full kernel registry: every run
# must complete parallel matching the serial golden or degrade serially
# with a classified error and bit-identical output (see DESIGN.md 5c).
cargo run --release -q -p subsub-bench --bin chaos -- 17 4242 900913

echo "== differential fuzz (pinned seeds + corpus replay) =="
# Adversarial campaigns over the inspect/guard/dispatch trust boundary:
# inspector vs brute-force reference, compiled predicate vs checked-i128
# evaluator, guarded parallel kernels vs serial goldens — then a full
# replay of the committed regression corpus. Any divergence fails CI
# (see DESIGN.md 5d).
cargo run --release -q -p subsub-bench --bin fuzz -- 7 31337 271828

echo "== fork-join smoke (calibrate + validate) =="
# A quick real measurement of fork-join latency on this machine; the
# --validate pass re-parses the emitted JSON through the simulator's own
# MachineCalibration parser and fails on missing/non-finite/zero numbers.
cargo run --release -q -p subsub-bench --bin forkjoin_calibrate -- \
  --quick --threads 1,4 --out target/BENCH_forkjoin_ci.json
cargo run --release -q -p subsub-bench --bin forkjoin_calibrate -- \
  --validate target/BENCH_forkjoin_ci.json

echo "CI gate passed."
