#!/usr/bin/env bash
# CI gate, in two tiers. Everything runs offline — the workspace has
# zero external dependencies.
#
#   ./ci.sh quick   fmt, clippy, debug build, unit tests
#                   (the edit-compile loop: fast, no release artifacts)
#   ./ci.sh full    everything in quick, plus the release build, chaos
#                   sweep, differential fuzz, the AST round-trip
#                   conformance harness, the incremental re-inspection
#                   gate, fork-join calibration smoke, telemetry trace
#                   smoke, the service workload + lifecycle chaos
#                   storms, and the perf gate
#                   (the merge gate; the default)
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"
case "$MODE" in
  quick|full) ;;
  *) echo "usage: $0 [quick|full]" >&2; exit 2 ;;
esac

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (no unwrap in omprt/rtcheck/cfront/core hot paths) =="
# The runtime's recovery story depends on lock/channel results never
# being unwrapped on the execution path, and the frontend + analysis
# driver sit on the service's untrusted-input boundary where a panic
# would read as a worker fault; keep the lint as a gate on all four.
cargo clippy -q -p subsub-omprt -p subsub-rtcheck -p subsub-cfront -p subsub-core -- \
  -D warnings -D clippy::unwrap_used

echo "== debug build =="
cargo build --workspace

echo "== test suite =="
cargo test --workspace -q

if [ "$MODE" = "quick" ]; then
  echo "CI gate passed (quick tier; run './ci.sh full' before merging)."
  exit 0
fi

echo "== release build =="
cargo build --release --workspace

echo "== chaos sweep (seeded fault injection, pinned seeds) =="
# Seeded failpoint schedules over the full kernel registry: every run
# must complete parallel matching the serial golden or degrade serially
# with a classified error and bit-identical output (see DESIGN.md 5c).
cargo run --release -q -p subsub-bench --bin chaos -- 17 4242 900913

echo "== differential fuzz (pinned seeds + corpus replay) =="
# Adversarial campaigns over the inspect/guard/dispatch trust boundary:
# inspector vs brute-force reference, incremental re-inspection vs
# full-scan rebuild, compiled predicate vs checked-i128 evaluator,
# mutated C sources vs the frontend's no-panic/deterministic-rejection/
# round-trip contract, guarded parallel kernels vs serial goldens —
# then a full replay of the committed regression corpus. Any divergence
# fails CI (see DESIGN.md 5d and 9).
cargo run --release -q -p subsub-bench --bin fuzz -- 7 31337 271828

echo "== AST round-trip conformance (kernel registry + committed corpus) =="
# The frontend's canonical contract: for every accepted source,
# parse -> canonicalize -> print -> reparse is a structural identity,
# the printed form is a printer fixpoint, and the subsub-ast/v1 JSON
# serialization is deterministic. Runs over all registry kernel sources
# plus crates/bench/corpus/conform/*.c (see DESIGN.md 9).
cargo run --release -q -p subsub-bench --bin conform

echo "== incremental re-inspection gate (O(delta) vs full re-scan) =="
# The 1 Mi-element mutate-then-reinspect workload: a single-element
# mutate_range (block rescan + O(blocks) verdict/checksum recombine)
# must agree with the full re-ingest + full-scan reference at every
# checkpoint and beat it by at least the 20x acceptance floor.
cargo run --release -q -p subsub-bench --bin reinspect

echo "== fork-join smoke (calibrate + validate) =="
# A quick real measurement of fork-join latency on this machine; the
# --validate pass re-parses the emitted JSON through the strict parser
# and the simulator's own MachineCalibration scanner, and — because
# --threads is passed — rejects a file whose measured series does not
# match the requested thread counts.
cargo run --release -q -p subsub-bench --bin forkjoin_calibrate -- \
  --quick --threads 1,4 --out target/BENCH_forkjoin_ci.json
cargo run --release -q -p subsub-bench --bin forkjoin_calibrate -- \
  --validate target/BENCH_forkjoin_ci.json --threads 1,4

echo "== telemetry trace smoke (capture + strict validation) =="
# Arms the flight recorder, runs one registry kernel through the full
# guarded pipeline, and validates the emitted Chrome trace with the
# strict parser: balanced B/E pairs, per-thread monotone timestamps,
# and every required span family present (region/inspect/guard/
# dispatch; see DESIGN.md 5e). Malformed output fails CI.
cargo run --release -q -p subsub-bench --bin trace -- \
  --kernel AMGmk --threads 4 \
  --out target/BENCH_trace_ci.json --snapshot target/BENCH_telemetry_ci.json
cargo run --release -q -p subsub-bench --bin trace -- \
  --validate target/BENCH_trace_ci.json

echo "== analysis service smoke (seeded multi-client workload + chaos) =="
# Closed-loop clients over the long-lived service front door, cold and
# warm cache phases, with a mid-run worker kill: every completion must
# match the serial golden checksum (zero incorrect dispatches), no
# ticket may wedge, the warm phase must hit the shard cache >= 90% of
# the time, and >= 8 requests must be observed in flight at once
# (see DESIGN.md 6). The pinned default seed keeps the run replayable.
cargo run --release -q -p subsub-bench --bin serve

echo "== chaos-serve (seeded lifecycle storms over the service, pinned seeds) =="
# Service-layer chaos: seeded failpoint schedules over the multi-client
# workload with deadlines and abandoned tickets in the mix — admission
# faults, worker dispatch deaths, single-flight leader panics, snapshot
# save/rotate/load faults. Every request must settle in a typed terminal
# state within bounds: zero divergence on Ok responses, no wedged
# ticket, no post-storm lockout (quarantined identities re-admit via
# their serial probe), and recovery from the snapshot directory must
# find a verified generation or start cold (see DESIGN.md 8).
cargo run --release -q -p subsub-bench --bin chaos_serve -- 29 8181 424243

echo "== snapshot round-trip (write -> corrupt -> reject -> rebuild) =="
# Persistence drill for the verdict cache: a snapshot with any single
# byte flipped must be rejected wholesale (digest mismatch), a rejected
# load must leave the cache empty for a clean rebuild, and an intact
# snapshot must warm-start a fresh service into a hit on the first
# repeated request.
cargo run --release -q -p subsub-bench --bin serve -- --roundtrip

echo "== perf gate (medians vs committed baseline, +/-25%) =="
# The pinned micro-suite (fork-join latency, inspector throughput,
# three representative serial kernels) against BENCH_baseline.json.
# A median beyond the band fails; refresh with 'perfgate --update'
# alongside an intentional perf change.
cargo run --release -q -p subsub-bench --bin perfgate

echo "CI gate passed (full tier)."
