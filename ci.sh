#!/usr/bin/env bash
# Full CI gate: formatting, lints, release build, full test suite.
# Everything runs offline — the workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== release build =="
cargo build --release --workspace

echo "== test suite =="
cargo test --workspace -q

echo "CI gate passed."
