#!/usr/bin/env bash
# CI gate, in two tiers. Everything runs offline — the workspace has
# zero external dependencies.
#
#   ./ci.sh quick   fmt, clippy, debug build, unit tests, corpus replay
#                   (the edit-compile loop: fast, no release artifacts)
#   ./ci.sh full    everything in quick, plus the release build, chaos
#                   sweep, differential fuzz, the AST round-trip
#                   conformance harness, the incremental re-inspection
#                   gate, fork-join calibration smoke, telemetry trace
#                   smoke, the service workload + lifecycle chaos
#                   storms, and the perf gate
#                   (the merge gate; the default)
#
# Every `==` step is wall-clock timed and appended to ci-report.json
# (schema subsub-ci-report/v1): one row per step with its tier, elapsed
# seconds and pass/fail. The report is flushed even when a step fails,
# and the failure summary names the failing step.
#
# Knobs (environment):
#   SUBSUB_FUZZ_CASES    scales fuzz campaign volume (default 200-ish;
#                        see `fuzz --help`)
#   SUBSUB_CHAOS_SEEDS   comma/space-separated seeds for the chaos
#                        sweep (defaults to the pinned trio)
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"
case "$MODE" in
  quick|full) ;;
  *) echo "usage: $0 [quick|full]" >&2; exit 2 ;;
esac

REPORT="ci-report.json"
STEPS_JSON=""
SUITE_T0=$(date +%s%N)

elapsed_s() { # elapsed_s T0_NANOS -> seconds with ms precision
  awk "BEGIN{printf \"%.3f\", ($(date +%s%N) - $1) / 1e9}"
}

flush_report() { # flush_report pass|fail
  printf '{"schema":"subsub-ci-report/v1","mode":"%s","result":"%s","total_seconds":%s,"steps":[%s]}\n' \
    "$MODE" "$1" "$(elapsed_s "$SUITE_T0")" "$STEPS_JSON" > "$REPORT"
}

run_step() { # run_step TIER NAME CMD...
  local tier="$1" name="$2"
  shift 2
  echo "== $name =="
  local t0 rc=0
  t0=$(date +%s%N)
  "$@" || rc=$?
  local secs pass
  secs=$(elapsed_s "$t0")
  if [ "$rc" -eq 0 ]; then pass=true; else pass=false; fi
  [ -n "$STEPS_JSON" ] && STEPS_JSON+=","
  STEPS_JSON+=$(printf '{"step":"%s","tier":"%s","seconds":%s,"pass":%s}' \
    "$name" "$tier" "$secs" "$pass")
  if [ "$rc" -ne 0 ]; then
    flush_report fail
    echo "CI FAILED at step: $name (after ${secs}s; report in $REPORT)" >&2
    exit "$rc"
  fi
  echo "   (${secs}s)"
}

run_step quick "cargo fmt --check" cargo fmt --all -- --check

run_step quick "cargo clippy (deny warnings)" \
  cargo clippy --workspace --all-targets -- -D warnings

# The runtime's recovery story depends on lock/channel results never
# being unwrapped on the execution path, and the frontend + analysis
# driver sit on the service's untrusted-input boundary where a panic
# would read as a worker fault; keep the lint as a gate on all four.
run_step quick "cargo clippy (no unwrap in omprt/rtcheck/cfront/core hot paths)" \
  cargo clippy -q -p subsub-omprt -p subsub-rtcheck -p subsub-cfront -p subsub-core -- \
  -D warnings -D clippy::unwrap_used

run_step quick "debug build" cargo build --workspace

run_step quick "test suite" cargo test --workspace -q

# Replay the committed adversarial corpus (arrays, predicates, kernels,
# reinspect plans, composed chains, frontend sources) without the
# seeded campaigns: cheap enough for the edit-compile loop, and the
# corpus is exactly the set of cases that once broke something.
run_step quick "corpus replay (committed regressions, no campaigns)" \
  cargo run -q -p subsub-bench --bin fuzz -- --replay-only

if [ "$MODE" = "quick" ]; then
  flush_report pass
  echo "CI gate passed (quick tier; run './ci.sh full' before merging). Report: $REPORT"
  exit 0
fi

run_step full "release build" cargo build --release --workspace

# Seeded failpoint schedules over the full kernel registry: every run
# must complete parallel matching the serial golden or degrade serially
# with a classified error and bit-identical output (see DESIGN.md 5c).
# SUBSUB_CHAOS_SEEDS (env) overrides the pinned seed trio.
run_step full "chaos sweep (seeded fault injection, pinned seeds)" \
  cargo run --release -q -p subsub-bench --bin chaos -- ${SUBSUB_CHAOS_SEEDS:-17 4242 900913}

# Adversarial campaigns over the inspect/guard/dispatch trust boundary:
# inspector vs brute-force reference (whole-array, block-monotone and
# composed two-level flavours), incremental re-inspection vs full-scan
# rebuild, compiled predicate vs checked-i128 evaluator, mutated C
# sources vs the frontend's no-panic/deterministic-rejection/round-trip
# contract, guarded parallel kernels vs serial goldens — then a full
# replay of the committed regression corpus. Any divergence fails CI
# (see DESIGN.md 5d and 9). SUBSUB_FUZZ_CASES (env) scales volume.
run_step full "differential fuzz (pinned seeds + corpus replay)" \
  cargo run --release -q -p subsub-bench --bin fuzz -- 7 31337 271828

# The frontend's canonical contract: for every accepted source,
# parse -> canonicalize -> print -> reparse is a structural identity,
# the printed form is a printer fixpoint, and the subsub-ast/v1 JSON
# serialization is deterministic. Runs over all registry kernel sources
# plus crates/bench/corpus/conform/*.c (see DESIGN.md 9).
run_step full "AST round-trip conformance (kernel registry + committed corpus)" \
  cargo run --release -q -p subsub-bench --bin conform

# The 1 Mi-element mutate-then-reinspect workload: a single-element
# mutate_range (block rescan + O(blocks) verdict/checksum recombine)
# must agree with the full re-ingest + full-scan reference at every
# checkpoint and beat it by at least the 20x acceptance floor.
run_step full "incremental re-inspection gate (O(delta) vs full re-scan)" \
  cargo run --release -q -p subsub-bench --bin reinspect

# A quick real measurement of fork-join latency on this machine; the
# --validate pass re-parses the emitted JSON through the strict parser
# and the simulator's own MachineCalibration scanner, and — because
# --threads is passed — rejects a file whose measured series does not
# match the requested thread counts.
run_step full "fork-join smoke (calibrate)" \
  cargo run --release -q -p subsub-bench --bin forkjoin_calibrate -- \
  --quick --threads 1,4 --out target/BENCH_forkjoin_ci.json
run_step full "fork-join smoke (validate)" \
  cargo run --release -q -p subsub-bench --bin forkjoin_calibrate -- \
  --validate target/BENCH_forkjoin_ci.json --threads 1,4

# Arms the flight recorder, runs one registry kernel through the full
# guarded pipeline, and validates the emitted Chrome trace with the
# strict parser: balanced B/E pairs, per-thread monotone timestamps,
# and every required span family present (region/inspect/guard/
# dispatch; see DESIGN.md 5e). Malformed output fails CI.
run_step full "telemetry trace smoke (capture)" \
  cargo run --release -q -p subsub-bench --bin trace -- \
  --kernel AMGmk --threads 4 \
  --out target/BENCH_trace_ci.json --snapshot target/BENCH_telemetry_ci.json
run_step full "telemetry trace smoke (validate)" \
  cargo run --release -q -p subsub-bench --bin trace -- \
  --validate target/BENCH_trace_ci.json

# Closed-loop clients over the long-lived service front door, cold and
# warm cache phases, with a mid-run worker kill: every completion must
# match the serial golden checksum (zero incorrect dispatches), no
# ticket may wedge, the warm phase must hit the shard cache >= 90% of
# the time, and >= 8 requests must be observed in flight at once
# (see DESIGN.md 6). The pinned default seed keeps the run replayable.
run_step full "analysis service smoke (seeded multi-client workload + chaos)" \
  cargo run --release -q -p subsub-bench --bin serve

# Service-layer chaos: seeded failpoint schedules over the multi-client
# workload with deadlines and abandoned tickets in the mix — admission
# faults, worker dispatch deaths, single-flight leader panics, snapshot
# save/rotate/load faults. Every request must settle in a typed terminal
# state within bounds: zero divergence on Ok responses, no wedged
# ticket, no post-storm lockout (quarantined identities re-admit via
# their serial probe), and recovery from the snapshot directory must
# find a verified generation or start cold (see DESIGN.md 8).
run_step full "chaos-serve (seeded lifecycle storms over the service, pinned seeds)" \
  cargo run --release -q -p subsub-bench --bin chaos_serve -- 29 8181 424243

# Persistence drill for the verdict cache: a snapshot with any single
# byte flipped must be rejected wholesale (digest mismatch), a rejected
# load must leave the cache empty for a clean rebuild, and an intact
# snapshot must warm-start a fresh service into a hit on the first
# repeated request.
run_step full "snapshot round-trip (write -> corrupt -> reject -> rebuild)" \
  cargo run --release -q -p subsub-bench --bin serve -- --roundtrip

# The pinned micro-suite (fork-join latency, inspector throughput —
# including the composed two-level verdict — and representative serial
# kernels) against BENCH_baseline.json. A median beyond the band fails;
# refresh with 'perfgate --update' alongside an intentional perf change.
run_step full "perf gate (medians vs committed baseline, +/-25%)" \
  cargo run --release -q -p subsub-bench --bin perfgate

flush_report pass
echo "CI gate passed (full tier). Report: $REPORT"
