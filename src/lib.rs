//! Umbrella crate for the PPoPP'24 *Recurrence Analysis for Automatic
//! Parallelization of Subscripted Subscripts* reproduction.
//!
//! Re-exports every workspace crate under one root so that examples and
//! integration tests can `use subsub::…`. See the individual crates for
//! the actual functionality:
//!
//! * [`symbolic`] — expression & range algebra,
//! * [`cfront`] — C-subset frontend,
//! * [`ir`] — normalized loop IR and CFGs,
//! * [`core`] — the paper's Phase-1/Phase-2 analysis and the
//!   parallelization driver,
//! * [`omprt`] — OpenMP-like runtime and scheduling cost model,
//! * [`rtcheck`] — executable runtime checks, the parallel index-array
//!   inspector with memoization, and guarded execution,
//! * [`sparse`] — sparse-matrix substrate and workload generators,
//! * [`kernels`] — the twelve evaluation benchmarks.

pub use subsub_cfront as cfront;
pub use subsub_core as core;
pub use subsub_ir as ir;
pub use subsub_kernels as kernels;
pub use subsub_omprt as omprt;
pub use subsub_rtcheck as rtcheck;
pub use subsub_sparse as sparse;
pub use subsub_symbolic as symbolic;
