//! The three worked examples of the paper's Section 3, transcribed as
//! integration tests over the whole pipeline: parse → normalize → CFG →
//! Phase-1 → Phase-2 → collapse → loop-entry substitution → dependence
//! test. Each assertion cites the expression the paper derives.

use std::collections::HashMap;
use subsub::core::{analyze_function, phase1, AlgorithmLevel, Monotonicity, Val};
use subsub::ir::{lower_function, LoopCfg, LoopId};
use subsub::symbolic::{Expr, Range, RangeEnv};

fn lowered(src: &str) -> subsub::ir::LoweredFunction {
    let p = subsub::cfront::parse_program(src).unwrap();
    lower_function(&p.funcs[0], &p.globals).unwrap()
}

/// Section 3.1 (AMGmk). Phase-1 of the fill loop must produce
/// `{A_rownnz[λ_irownnz] = [λ_A_rownnz, ⟨i⟩], irownnz = [λ, ⟨1+λ⟩],
///   adiag = A_i[i+1] - A_i[i]}` and Phase-2 (with Λ_irownnz = 0)
/// `A_rownnz[0 : irownnz_max] = [0 : num_rows-1] #SMA`.
#[test]
fn section_3_1_amgmk() {
    let src = r#"
        void f(int num_rows, int *A_i, int *A_rownnz) {
            int i; int adiag; int irownnz;
            irownnz = 0;
            for (i = 0; i < num_rows; i++) {
                adiag = A_i[i+1] - A_i[i];
                if (adiag > 0)
                    A_rownnz[irownnz++] = i;
            }
        }
    "#;
    let f = lowered(src);
    let env = RangeEnv::new();

    // Phase-1, rendered in the paper's notation.
    let loops = f.loops();
    let cfg = LoopCfg::build(loops[0]);
    let p1 = phase1(loops[0], &cfg, &HashMap::new(), &f.types, &env);
    let dump = p1.svd.dump();
    assert!(dump.contains("A_rownnz[λ_irownnz]"), "{dump}");
    assert!(dump.contains("⟨i⟩"), "{dump}");
    assert!(dump.contains("⟨λ_irownnz + 1⟩"), "{dump}");
    assert!(
        dump.contains("A_i[1 + i]") || dump.contains("A_i[i + 1]"),
        "{dump}"
    );

    // Phase-2 with loop-entry substitution.
    let fa = analyze_function(&f, AlgorithmLevel::New, &env);
    let p = fa.properties.get("A_rownnz").expect("property");
    assert_eq!(p.monotonicity, Monotonicity::StrictlyMonotonic);
    assert_eq!(
        p.index_range,
        Range::new(Expr::int(0), Expr::post_max("irownnz"))
    );
    assert_eq!(
        p.value_range,
        Some(Range::new(
            Expr::int(0),
            Expr::var("num_rows") - Expr::int(1)
        ))
    );

    // Aggregated counter: irownnz = [Λ : Λ + num_rows] with Λ = 0.
    let collapsed = &fa.collapsed[&LoopId(0)];
    let irownnz = collapsed
        .scalars
        .iter()
        .find(|s| s.name == "irownnz")
        .unwrap();
    assert_eq!(
        irownnz.val,
        Val::Range(Range::new(
            Expr::entry("irownnz"),
            Expr::entry("irownnz") + Expr::var("num_rows")
        ))
    );
    // adiag = ⊥ after the loop.
    let adiag = collapsed
        .scalars
        .iter()
        .find(|s| s.name == "adiag")
        .unwrap();
    assert_eq!(adiag.val, Val::Bottom);
}

/// Section 3.2 (SDDMM): strict monotonicity of col_ptr with the holder
/// counter, extended over the directly-written slot 0.
#[test]
fn section_3_2_sddmm() {
    let src = r#"
        void fill(int nonzeros, int *col_val, int *col_ptr) {
            int i; int holder; int r;
            holder = 1; col_ptr[0] = 0; r = col_val[0];
            for (i = 0; i < nonzeros; i++) {
                if (col_val[i] != r) {
                    col_ptr[holder++] = i;
                    r = col_val[i];
                }
            }
        }
    "#;
    let f = lowered(src);
    let env = RangeEnv::new();

    // Phase-1: r is assigned ⟨col_val[i]⟩ under the tag.
    let loops = f.loops();
    let cfg = LoopCfg::build(loops[0]);
    let p1 = phase1(loops[0], &cfg, &HashMap::new(), &f.types, &env);
    let dump = p1.svd.dump();
    assert!(dump.contains("col_ptr[λ_holder]"), "{dump}");
    assert!(dump.contains("⟨col_val[i]⟩"), "{dump}");

    let fa = analyze_function(&f, AlgorithmLevel::New, &env);
    let p = fa.properties.get("col_ptr").expect("property");
    // Range [0 : holder_max] (the paper's convention), value [0:nonzeros-1].
    assert_eq!(
        p.index_range,
        Range::new(Expr::int(0), Expr::post_max("holder"))
    );
    assert_eq!(
        p.value_range,
        Some(Range::new(
            Expr::int(0),
            Expr::var("nonzeros") - Expr::int(1)
        ))
    );
    // holder aggregates to [Λ : Λ + nonzeros] = [1 : 1 + nonzeros].
    let holder = fa.collapsed[&LoopId(0)]
        .scalars
        .iter()
        .find(|s| s.name == "holder")
        .unwrap();
    assert_eq!(
        holder.val,
        Val::Range(Range::new(
            Expr::entry("holder"),
            Expr::entry("holder") + Expr::var("nonzeros")
        ))
    );
}

/// Section 3.3 (UA): the two collapses and LEMMA 2.
#[test]
fn section_3_3_ua() {
    let src = r#"
        void init(int LELT, int idel[64][6][5][5]) {
            int iel; int j; int i; int ntemp;
            for (iel = 0; iel < LELT; iel++) {
                ntemp = 125 * iel;
                for (j = 0; j < 5; j++) {
                    for (i = 0; i < 5; i++) {
                        idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                        idel[iel][1][j][i] = ntemp + i*5 + j*25;
                        idel[iel][2][j][i] = ntemp + i + j*25 + 20;
                        idel[iel][3][j][i] = ntemp + i + j*25;
                        idel[iel][4][j][i] = ntemp + i + j*5 + 100;
                        idel[iel][5][j][i] = ntemp + i + j*5;
                    }
                }
            }
        }
    "#;
    let f = lowered(src);
    let env = RangeEnv::new();
    let fa = analyze_function(&f, AlgorithmLevel::New, &env);

    // Innermost i-loop (L2): six writes, not yet mergeable — the paper's
    // "a simplified expression cannot yet be determined".
    let c2 = &fa.collapsed[&LoopId(2)];
    assert_eq!(
        c2.arrays.len(),
        6,
        "six idel facets stay separate after the i-loop"
    );

    // j-loop (L1): simplification succeeds —
    // idel[iel][0:5][0:4][0:4] = [Λ_ntemp : 124 + Λ_ntemp].
    let c1 = &fa.collapsed[&LoopId(1)];
    assert_eq!(c1.arrays.len(), 1, "the six ranges merge after the j-loop");
    let w = &c1.arrays[0];
    assert_eq!(w.subs[1], Range::ints(0, 5));
    assert_eq!(w.subs[2], Range::ints(0, 4));
    assert_eq!(w.subs[3], Range::ints(0, 4));
    // ntemp is invariant within the j-loop, so Λ_ntemp has been resolved
    // to the plain symbol (the paper writes Λ_ntemp; the two denote the
    // same value at this level).
    assert_eq!(
        w.val,
        Val::Range(Range::new(
            Expr::var("ntemp"),
            Expr::var("ntemp") + Expr::int(124)
        ))
    );

    // Outermost loop (L0): LEMMA 2 with α = 125, [rl:ru] = [0:124],
    // 125 + 0 > 124 ⇒ strictly monotonic w.r.t. dimension 0.
    let p = fa.properties.get("idel").expect("property");
    assert_eq!(p.dim, 0);
    assert_eq!(p.monotonicity, Monotonicity::StrictlyMonotonic);
    assert_eq!(
        p.value_range,
        Some(Range::new(
            Expr::int(0),
            Expr::int(125) * (Expr::var("LELT") - Expr::int(1)) + Expr::int(124)
        ))
    );

    // Collapsed ntemp covers [0 : 125·(LELT-1)] as the paper states.
    let ntemp = fa.collapsed[&LoopId(0)]
        .scalars
        .iter()
        .find(|s| s.name == "ntemp")
        .unwrap();
    assert_eq!(
        ntemp.val,
        Val::Range(Range::new(
            Expr::int(0),
            Expr::int(125) * Expr::var("LELT") - Expr::int(125)
        ))
    );
}

/// Figure 2(a): the two-level pattern the BASE algorithm handles — an
/// outer SRA assignment fed by an inner-loop conditional SSR.
#[test]
fn figure_2a_nested_ssr_sra() {
    let src = r#"
        void f(int n, int m, int *a, int *flag) {
            int i1; int i2; int p;
            p = 0;
            for (i1 = 0; i1 < n; i1++) {
                a[i1] = p;
                for (i2 = 0; i2 < m; i2++) {
                    if (flag[i2] > 0) {
                        p = p + 1;
                    }
                }
            }
        }
    "#;
    let f = lowered(src);
    let fa = analyze_function(&f, AlgorithmLevel::Base, &RangeEnv::new());
    let p = fa.properties.get("a").expect("base algorithm property");
    // Conditional inner increments: monotone but not strict.
    assert_eq!(p.monotonicity, Monotonicity::Monotonic);
}
