//! End-to-end runtime validation: for every benchmark and every algorithm
//! level, execute the variant the analysis selected on the real `omprt`
//! thread pool and require bit-level agreement (up to floating-point
//! reassociation) with the serial reference. This is the safety property
//! the whole system rests on — a wrong parallelization decision would
//! corrupt results, not just performance.

use subsub::core::AlgorithmLevel;
use subsub::kernels::{all_kernels, common::close};
use subsub::omprt::{Schedule, ThreadPool};
use subsub_bench::variant_for;

#[test]
fn every_selected_variant_matches_serial() {
    let pool = ThreadPool::new(4);
    for k in all_kernels() {
        let mut inst = k.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        for level in [AlgorithmLevel::Classic, AlgorithmLevel::Base, AlgorithmLevel::New] {
            let variant = variant_for(k.as_ref(), level);
            for sched in [Schedule::static_default(), Schedule::dynamic_default()] {
                inst.reset();
                inst.run(variant, &pool, sched);
                let got = inst.checksum();
                assert!(
                    close(reference, got),
                    "{} @ {level} ({variant}, {sched}): {got} != {reference}",
                    k.name()
                );
            }
        }
    }
}

/// The paper's runtime check is part of the emitted pragma for the two
/// benchmarks whose analysis bound is a post-loop value — and absent where
/// the bound is compile-time (UA) or no property is needed (regular
/// benchmarks).
#[test]
fn runtime_checks_present_exactly_where_expected() {
    use subsub::core::analyze_program;
    for k in all_kernels() {
        let report = analyze_program(k.source(), AlgorithmLevel::New).unwrap();
        let f = report.function(k.func_name()).unwrap();
        let check = f
            .last_nest_parallel()
            .and_then(|l| l.decision.plan())
            .and_then(|p| p.runtime_check.clone());
        match k.name() {
            "AMGmk" | "SDDMM" => {
                assert!(check.is_some(), "{} should carry a runtime check", k.name())
            }
            _ => assert!(
                check.is_none(),
                "{} should not need a runtime check (got {check:?})",
                k.name()
            ),
        }
    }
}

/// Larger-than-test datasets also validate (one spot check per headline
/// benchmark, outer variant, both schedules).
#[test]
fn headline_benchmarks_validate_on_real_datasets() {
    let pool = ThreadPool::new(4);
    for (name, ds) in [("AMGmk", "MATRIX1"), ("SDDMM", "gsm_106857"), ("UA(transf)", "CLASS A")] {
        let k = subsub::kernels::kernel_by_name(name).unwrap();
        let mut inst = k.prepare(ds);
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        inst.run(subsub::kernels::Variant::OuterParallel, &pool, Schedule::dynamic_default());
        assert!(close(reference, inst.checksum()), "{name} [{ds}]");
    }
}
