//! End-to-end runtime validation: for every benchmark and every algorithm
//! level, execute the variant the analysis selected on the real `omprt`
//! thread pool and require bit-level agreement (up to floating-point
//! reassociation) with the serial reference. This is the safety property
//! the whole system rests on — a wrong parallelization decision would
//! corrupt results, not just performance.

use subsub::core::AlgorithmLevel;
use subsub::kernels::{all_kernels, common::close};
use subsub::omprt::{Schedule, ThreadPool};
use subsub::rtcheck::{parse_check, GuardPath};
use subsub_bench::{variant_for, GuardedHarness};

#[test]
fn every_selected_variant_matches_serial() {
    let pool = ThreadPool::new(4);
    for k in all_kernels() {
        let mut inst = k.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        for level in [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ] {
            let variant = variant_for(k.as_ref(), level);
            for sched in [Schedule::static_default(), Schedule::dynamic_default()] {
                inst.reset();
                inst.run(variant, &pool, sched);
                let got = inst.checksum();
                assert!(
                    close(reference, got),
                    "{} @ {level} ({variant}, {sched}): {got} != {reference}",
                    k.name()
                );
            }
        }
    }
}

/// The paper's runtime check is part of the emitted pragma exactly for
/// the benchmarks whose analysis bound is a post-loop value (AMGmk,
/// SDDMM, and the two-level CSRoCSR composition) or whose recurrence is
/// only conditionally monotone (GuardedPrefix's step guard) — and absent
/// where the bound is compile-time (UA) or no property is needed.
#[test]
fn runtime_checks_present_exactly_where_expected() {
    use subsub::core::analyze_program;
    for k in all_kernels() {
        let report = analyze_program(k.source(), AlgorithmLevel::New).unwrap();
        let f = report.function(k.func_name()).unwrap();
        let check = f
            .last_nest_parallel()
            .and_then(|l| l.decision.plan())
            .and_then(|p| p.runtime_check.clone());
        match k.name() {
            "AMGmk" | "SDDMM" | "CSRoCSR" | "GuardedPrefix" => {
                assert!(check.is_some(), "{} should carry a runtime check", k.name())
            }
            _ => assert!(
                check.is_none(),
                "{} should not need a runtime check (got {check:?})",
                k.name()
            ),
        }
    }
}

/// Larger-than-test datasets also validate (one spot check per headline
/// benchmark, outer variant, both schedules).
#[test]
fn headline_benchmarks_validate_on_real_datasets() {
    let pool = ThreadPool::new(4);
    for (name, ds) in [
        ("AMGmk", "MATRIX1"),
        ("SDDMM", "gsm_106857"),
        ("UA(transf)", "CLASS A"),
    ] {
        let k = subsub::kernels::kernel_by_name(name).unwrap();
        let mut inst = k.prepare(ds);
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        inst.run(
            subsub::kernels::Variant::OuterParallel,
            &pool,
            Schedule::dynamic_default(),
        );
        assert!(close(reference, inst.checksum()), "{name} [{ds}]");
    }
}

/// The emitted checks are executable: they round-trip through the display
/// form (`CheckExpr → string → parse → CheckExpr`) without losing the
/// structure the compiler and the dedup rely on.
#[test]
fn emitted_checks_round_trip_through_text() {
    use subsub::core::analyze_program;
    for name in ["AMGmk", "SDDMM"] {
        let k = subsub::kernels::kernel_by_name(name).unwrap();
        let report = analyze_program(k.source(), AlgorithmLevel::New).unwrap();
        let f = report.function(k.func_name()).unwrap();
        let check = f
            .last_nest_parallel()
            .and_then(|l| l.decision.plan())
            .and_then(|p| p.runtime_check.clone())
            .unwrap_or_else(|| panic!("{name} should carry a runtime check"));
        let reparsed = parse_check(&check.to_string()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed, check, "{name}: round-trip changed the check");
    }
}

/// The guarded executor admits the parallel variant on healthy inputs and
/// produces results matching a plain serial run.
#[test]
fn guarded_execution_admits_parallel_and_matches_serial() {
    let pool = ThreadPool::new(4);
    for name in ["AMGmk", "SDDMM"] {
        let k = subsub::kernels::kernel_by_name(name).unwrap();
        let mut inst = k.prepare("test");
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
        let out = harness.run(inst.as_mut(), &pool, Schedule::static_default());
        assert_eq!(out.path, GuardPath::Parallel, "{name}: {:?}", out.reason);
        assert!(close(reference, out.checksum), "{name}");
        assert_eq!(harness.stats().parallel_runs, 1);
    }
}

/// Corrupting an index array flips the guarded executor to the serial
/// path, and the result is bit-identical to a plain serial run on the
/// same corrupted instance (no parallel reassociation: exact equality).
#[test]
fn tampered_index_array_degrades_to_serial_bit_identical() {
    let pool = ThreadPool::new(4);
    for name in ["AMGmk", "SDDMM"] {
        let k = subsub::kernels::kernel_by_name(name).unwrap();

        // Serial reference on an identically tampered instance.
        let mut serial_inst = k.prepare("test");
        assert!(
            serial_inst.tamper_index_arrays(),
            "{name}: nothing tampered"
        );
        serial_inst.run_serial();
        let reference = serial_inst.checksum();

        let mut inst = k.prepare("test");
        assert!(inst.tamper_index_arrays());
        let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
        let out = harness.run(inst.as_mut(), &pool, Schedule::static_default());
        assert_eq!(out.path, GuardPath::Serial, "{name}: guard must reject");
        let reason = out.reason.expect("fallback reason");
        assert!(
            matches!(reason, subsub::rtcheck::ExecError::NotMonotone { .. }),
            "{name}: {reason}"
        );
        assert_eq!(out.executed, subsub::kernels::Variant::Serial);
        // Same serial code on same input: exactly equal, not just close.
        assert_eq!(out.checksum.to_bits(), reference.to_bits(), "{name}");
        assert_eq!(harness.stats().inspection_failures, 1, "{name}");
    }
}

/// Re-running an unchanged instance revalidates from the inspector cache
/// (hit counter advances); tampering bumps the version and invalidates.
#[test]
fn inspector_cache_memoizes_and_invalidates() {
    let pool = ThreadPool::new(2);
    let k = subsub::kernels::kernel_by_name("AMGmk").unwrap();
    let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
    let mut inst = k.prepare("test");

    harness.run(inst.as_mut(), &pool, Schedule::static_default());
    inst.reset();
    harness.run(inst.as_mut(), &pool, Schedule::static_default());
    let s = harness.stats();
    assert_eq!(s.cache.misses, 1, "first run inspects");
    assert!(s.cache.hits >= 1, "second run must be a cache hit: {s:?}");

    // Tampering bumps the version: the stale entry is invalidated and the
    // re-inspection rejects the array.
    assert!(inst.tamper_index_arrays());
    let out = harness.run(inst.as_mut(), &pool, Schedule::static_default());
    assert_eq!(out.path, GuardPath::Serial);
    let s = harness.stats();
    assert_eq!(s.cache.invalidations, 1, "{s:?}");
}

/// Kernels whose decision carries no check get a pass-through guard: the
/// parallel path is admitted unconditionally (UA), and analysis-serial
/// kernels never consult the guard at all (IS).
#[test]
fn no_check_kernels_keep_their_decision() {
    let pool = ThreadPool::new(2);

    let ua = subsub::kernels::kernel_by_name("UA(transf)").unwrap();
    let harness = GuardedHarness::new(ua.as_ref(), AlgorithmLevel::New);
    assert!(harness.check().is_none());
    let mut inst = ua.prepare("test");
    let out = harness.run(inst.as_mut(), &pool, Schedule::static_default());
    assert_eq!(out.path, GuardPath::Parallel);
    assert_eq!(out.executed, subsub::kernels::Variant::OuterParallel);

    let is = subsub::kernels::kernel_by_name("IS").unwrap();
    let harness = GuardedHarness::new(is.as_ref(), AlgorithmLevel::New);
    assert!(harness.check().is_none());
    let mut inst = is.prepare(is.datasets()[0]);
    let out = harness.run(inst.as_mut(), &pool, Schedule::static_default());
    assert_eq!(out.executed, subsub::kernels::Variant::Serial);
    assert_eq!(out.reason, Some(subsub::rtcheck::ExecError::AnalysisSerial));
}
