//! Workspace-level adversarial integration test: drives the whole
//! inspect/guard/dispatch trust boundary end-to-end with hostile input
//! and cross-checks it through the differential oracle.
//!
//! Unit tests in `rtcheck` and `oracle` cover each layer in isolation;
//! this test asserts the layers compose — raw bytes cannot reach the
//! parser's stack, raw indices cannot reach the inspector without
//! ingestion, overflowing predicates cannot reach the parallel path,
//! and a pinned fuzz campaign over every kernel stays divergence-free.

use subsub::omprt::ThreadPool;
use subsub::rtcheck::{Provenance, ValidatedIndexArray, ValidationError};
use subsub_oracle::{check_kernel, gen_array, run_campaign, ArrayShape, FuzzConfig, ALL_SHAPES};

#[test]
fn ingestion_is_the_only_gate_and_it_holds() {
    // Every generated out-of-domain array must be rejected with a
    // structured error naming the offending entry; every in-domain array
    // must be accepted whatever its monotonicity.
    let mut rejected = 0;
    for seed in [7u64, 31337, 271828] {
        let mut rng = subsub::sparse::Rng64::seed_from_u64(seed);
        for shape in ALL_SHAPES {
            let g = gen_array(&mut rng, shape);
            let r = ValidatedIndexArray::ingest(
                "adv",
                g.data.clone(),
                g.domain,
                Provenance::Untrusted {
                    source: "fuzz".into(),
                },
            );
            if g.expect_reject {
                let Err(ValidationError::OutOfDomain {
                    index,
                    value,
                    domain,
                    ..
                }) = r
                else {
                    panic!("{shape}: out-of-domain input ingested: {:?}", g.data);
                };
                assert!(value >= domain);
                assert_eq!(g.data[index], value);
                rejected += 1;
            } else {
                let v = r.unwrap_or_else(|e| panic!("{shape}: spurious reject: {e}"));
                assert_eq!(v.data(), &g.data[..]);
                assert!(v.verify().is_ok());
            }
        }
    }
    assert!(rejected >= 3, "generator produced no out-of-domain cases");
}

#[test]
fn tampering_after_ingestion_is_caught() {
    let mut v = ValidatedIndexArray::ingest(
        "t",
        vec![0, 1, 2, 3],
        8,
        Provenance::Dataset {
            name: "unit".into(),
        },
    )
    .unwrap();
    // A writer that bypasses the boundary breaks the checksum.
    v.bypass_validation_mut()[2] = 99;
    match v.verify() {
        Err(ValidationError::ChecksumMismatch { array }) => assert_eq!(array, "t"),
        other => panic!("tamper not detected: {other:?}"),
    }
}

#[test]
fn pinned_campaigns_stay_clean_across_the_stack() {
    // A reduced-size campaign per pinned seed (CI runs the full ones via
    // ci.sh): arrays through ingestion+inspection, predicates through
    // compile-vs-reference, mutated sources through the frontend
    // contract, no kernels here to keep the test fast.
    let pool = ThreadPool::new(3);
    for seed in [7u64, 31337, 271828] {
        let report = run_campaign(
            &FuzzConfig {
                seed,
                arrays_per_shape: 4,
                predicates: 60,
                sources: 24,
                kernels: false,
            },
            &pool,
        );
        assert!(report.is_clean(), "seed {seed} diverged:\n{report}");
        assert_eq!(report.source_cases, 24, "source leg did not run");
    }
}

#[test]
fn one_guarded_kernel_survives_an_adversarial_seed_end_to_end() {
    // Full dispatch path on a real kernel: serial golden, guarded
    // parallel run, output comparison, and the tamper leg proving a
    // monotonicity-breaking mutation is denied the parallel path.
    let k = subsub::kernels::kernel_by_name("CG").expect("CG registered");
    let divergences = check_kernel(k.as_ref(), 7);
    assert!(divergences.is_empty(), "{divergences:?}");
}

#[test]
fn adversarial_shapes_cover_the_threat_model() {
    // Keep the generator honest: the shape list must retain the classes
    // the threat model names (degenerate, boundary, near-max, OOB).
    for name in [
        "empty",
        "single",
        "plateau",
        "duplicate-at-boundary",
        "near-max",
        "out-of-domain",
        "almost-monotone",
        "sawtooth",
    ] {
        assert!(
            ArrayShape::parse(name).is_some(),
            "shape `{name}` missing from ALL_SHAPES"
        );
    }
}
