//! Golden phase-2 recognition matrix: for every registry kernel and
//! every algorithm level, pins the *exact* analysis artifacts — loop
//! depth parallelized, the emitted runtime-check text, and the property
//! verdict strings the proof used (`#MA`/`#SMA`/`#SMA+gap`, guard
//! suffixes, value ranges).
//!
//! `tests/decisions.rs` locks the coarse variant choice; this file locks
//! the evidence. A recognizer regression that still lands on the right
//! variant by accident (weaker property, spurious extra check, lost
//! value range) is a diff here.

use subsub::core::{analyze_program, AlgorithmLevel};
use subsub::kernels::all_kernels;

/// What the analysis must produce for one (kernel, level) cell.
#[derive(Debug, PartialEq, Eq)]
enum Expect {
    /// No parallel nest at all.
    Serial,
    /// A parallel nest at `depth` with exactly this check and these
    /// property verdicts, in emission order.
    Parallel {
        depth: usize,
        check: Option<&'static str>,
        props: &'static [&'static str],
    },
}

use Expect::{Parallel, Serial};

fn expected(name: &str, level: AlgorithmLevel) -> Expect {
    use AlgorithmLevel::*;
    // Shorthand: a classically parallel nest carries no subscript
    // properties and no check.
    let plain = |depth| Parallel {
        depth,
        check: None,
        props: &[],
    };
    match (name, level) {
        ("AMGmk", Classic | Base) => plain(1),
        ("AMGmk", New) => Parallel {
            depth: 0,
            check: Some("num_rownnz - 1 <= irownnz_max"),
            props: &["A_rownnz[0:irownnz_max]#SMA = [0:num_rows - 1]"],
        },
        ("CHOLMOD-Supernodal", Classic) => plain(1),
        ("CHOLMOD-Supernodal", Base | New) => Parallel {
            depth: 0,
            check: None,
            props: &["colptr[0:n_super]#SMA+192"],
        },
        ("SDDMM", Classic | Base) => plain(1),
        ("SDDMM", New) => Parallel {
            depth: 0,
            check: Some("n_cols - 1 <= holder_max"),
            props: &["col_ptr[0:holder_max]#MA = [0:nonzeros - 1]"],
        },
        ("UA(transf)", Classic | Base) => plain(1),
        ("UA(transf)", New) => Parallel {
            depth: 0,
            check: None,
            props: &["idel[0:LELT - 1]#SMA = [0:125*LELT - 1]"],
        },
        ("CG" | "syrk", _) => plain(0),
        ("heat-3d" | "fdtd-2d" | "gramschmidt" | "MG", _) => plain(1),
        ("IS" | "Incomplete-Cholesky", _) => Serial,
        // Pattern-language extensions.
        ("CSRoCSR", Classic | Base) => Serial,
        ("CSRoCSR", New) => Parallel {
            depth: 0,
            check: Some("num_act - 1 <= m_max"),
            props: &[
                "row_start[0:num_rows - 1]#SMA+2 = [0:2*num_rows - 2]",
                "act[0:m_max]#SMA = [0:num_rows - 1]",
            ],
        },
        ("StridedScatter", Classic) => Serial,
        ("StridedScatter", Base | New) => Parallel {
            depth: 0,
            check: None,
            props: &["off[0:n - 1]#SMA+2 = [0:2*n - 2]"],
        },
        ("GuardedPrefix", Classic | Base) => plain(1),
        ("GuardedPrefix", New) => Parallel {
            depth: 0,
            check: Some("1 <= gstep"),
            props: &["off[0:n]#SMA if 1 <= gstep"],
        },
        ("BlockHist", _) => Serial,
        (other, _) => panic!("unexpected kernel {other}"),
    }
}

#[test]
fn golden_recognition_matrix() {
    let mut failures = Vec::new();
    for k in all_kernels() {
        for level in [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ] {
            let report =
                analyze_program(k.source(), level).unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            let f = report
                .function(k.func_name())
                .unwrap_or_else(|| panic!("{}: function missing", k.name()));
            let got = match f.last_nest_parallel() {
                None => "SERIAL".to_string(),
                Some(l) => {
                    let plan = l
                        .decision
                        .plan()
                        .unwrap_or_else(|| panic!("{}: parallel nest without plan", k.name()));
                    format!(
                        "depth={} check={:?} props={:?}",
                        l.depth,
                        plan.runtime_check.as_ref().map(|c| c.to_string()),
                        plan.properties_used
                    )
                }
            };
            let want = match expected(k.name(), level) {
                Serial => "SERIAL".to_string(),
                Parallel {
                    depth,
                    check,
                    props,
                } => format!(
                    "depth={depth} check={:?} props={:?}",
                    check.map(str::to_string),
                    props.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                ),
            };
            if got != want {
                failures.push(format!(
                    "{} @ {level}:\n  want {want}\n  got  {got}",
                    k.name()
                ));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The strided verdict is not a coincidence of one kernel: CHOLMOD's
/// 192-wide panels and StridedScatter's gap-2 offsets both land in the
/// `#SMA+gap` family, whose gap is the panel/stride width.
#[test]
fn strided_gaps_track_the_source_stride() {
    for (name, level, gap) in [
        ("CHOLMOD-Supernodal", AlgorithmLevel::Base, "+192"),
        ("StridedScatter", AlgorithmLevel::Base, "+2"),
        ("CSRoCSR", AlgorithmLevel::New, "+2"),
    ] {
        let k = subsub::kernels::kernel_by_name(name).unwrap();
        let report = analyze_program(k.source(), level).unwrap();
        let f = report.function(k.func_name()).unwrap();
        let plan = f.last_nest_parallel().unwrap().decision.plan().unwrap();
        assert!(
            plan.properties_used
                .iter()
                .any(|p| p.contains(&format!("#SMA{gap}"))),
            "{name}: {:?}",
            plan.properties_used
        );
    }
}

/// The guarded property's predicate is carried verbatim into the plan's
/// runtime check — the guard is the proof obligation, not advice.
#[test]
fn guard_predicate_reaches_the_emitted_check() {
    let k = subsub::kernels::kernel_by_name("GuardedPrefix").unwrap();
    let report = analyze_program(k.source(), AlgorithmLevel::New).unwrap();
    let f = report.function(k.func_name()).unwrap();
    let plan = f.last_nest_parallel().unwrap().decision.plan().unwrap();
    let check = plan.runtime_check.as_ref().expect("guard check");
    assert_eq!(check.to_string(), "1 <= gstep");
    assert!(plan.properties_used[0].ends_with("if 1 <= gstep"));
    // And it round-trips through its display form like every check.
    assert_eq!(
        subsub::rtcheck::parse_check(&check.to_string()).unwrap(),
        *check
    );
}
