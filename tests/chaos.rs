//! Chaos integration suite: seeded fault-injection sweeps over the full
//! kernel registry, plus an end-to-end circuit-breaker scenario and the
//! inspection→dispatch tamper-gate regression.
//!
//! Armed failpoints are process-global, so this suite owns its test
//! binary and serializes its tests through one lock — a sweep arming a
//! panic schedule must not inject into another test's "clean" phase.

use std::sync::Mutex;
use subsub::core::AlgorithmLevel;
use subsub::kernels::{common::close, kernel_by_name, Variant};
use subsub::omprt::{Schedule, ThreadPool};
use subsub::rtcheck::{BreakerState, ExecError, GuardPath, GuardedExecutor};
use subsub_bench::{chaos_sweep, GuardedHarness, DEFAULT_SEEDS};
use subsub_failpoint::{self as failpoint, Arm, FailPlan, Fire};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// The acceptance sweep: every pinned CI seed over every kernel, with
/// seeded schedules armed over all failpoint sites. Each run must either
/// complete parallel (matching the serial golden) or degrade serially
/// with a classified error and bit-identical output — never abort, hang,
/// or corrupt.
#[test]
fn pinned_seed_sweeps_uphold_the_robustness_invariant() {
    let _t = serialize();
    let mut any_fired = false;
    for &seed in DEFAULT_SEEDS {
        let report = chaos_sweep(seed);
        assert!(
            report.ok(),
            "seed {seed} violations:\n{}",
            report.violations.join("\n")
        );
        assert_eq!(
            report.results.len(),
            subsub::kernels::all_kernels().len(),
            "the sweep must cover the whole registry"
        );
        any_fired |= report.results.iter().any(|r| !r.fired_sites.is_empty());
    }
    assert!(
        any_fired,
        "across the pinned seeds at least one injection must actually fire"
    );
}

/// End-to-end breaker scenario on a real kernel: a persistently faulting
/// parallel path trips the breaker after two invocations (attempt +
/// retry each), the kernel is pinned to serial for the whole cooldown
/// with bit-identical output, and a clean half-open trial re-admits and
/// closes the breaker.
#[test]
fn breaker_pins_faulting_kernel_and_readmits_after_cooldown() {
    let _t = serialize();
    failpoint::silence_injected_panics();
    let k = kernel_by_name("AMGmk").unwrap();
    let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
    let pool = ThreadPool::new(4);

    let mut golden_inst = k.prepare("test");
    golden_inst.run_serial();
    let golden = golden_inst.checksum();

    let mut inst = k.prepare("test");
    {
        let _armed = failpoint::arm(FailPlan::new().with(
            "bench.kernel.parallel",
            Arm::Panic,
            Fire::always(),
        ));
        // Each invocation: faulting attempt + faulting retry = 2
        // consecutive faults. The default threshold (3) is crossed on
        // the second invocation's first fault.
        for i in 0..2 {
            inst.reset();
            let out = harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
            assert!(
                matches!(out.reason, Some(ExecError::ParallelFault { .. })),
                "invocation {i}: {:?}",
                out.reason
            );
            assert_eq!(out.executed, Variant::Serial);
            assert_eq!(
                out.checksum.to_bits(),
                golden.to_bits(),
                "serial rescue must be bit-identical"
            );
        }
    }
    assert_eq!(harness.breaker_state(), BreakerState::Open { remaining: 8 });
    let s = harness.stats();
    assert_eq!(s.breaker_trips, 1, "{s:?}");
    assert_eq!(s.retries, 2, "{s:?}");

    // Cooldown: 8 admissions denied up front — no parallel attempt, no
    // fault-recovery cost, output still bit-identical serial.
    for i in 0..8 {
        inst.reset();
        let out = harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
        assert!(
            matches!(out.reason, Some(ExecError::BreakerOpen { .. })),
            "denial {i}: {:?}",
            out.reason
        );
        assert_eq!(out.executed, Variant::Serial);
        assert_eq!(out.checksum.to_bits(), golden.to_bits());
    }
    assert_eq!(harness.breaker_state(), BreakerState::HalfOpen);
    assert_eq!(harness.stats().breaker_short_circuits, 8);

    // The failpoint is disarmed: the half-open trial runs parallel,
    // succeeds, and the breaker closes.
    inst.reset();
    let out = harness.run(inst.as_mut(), &pool, Schedule::dynamic_default());
    assert!(
        out.reason.is_none(),
        "trial must be admitted: {:?}",
        out.reason
    );
    assert_eq!(out.path, GuardPath::Parallel);
    assert!(close(golden, out.checksum));
    assert_eq!(harness.breaker_state(), BreakerState::Closed { faults: 0 });
}

/// Satellite regression: a concurrent tamper *between* inspection
/// (phase 1) and dispatch (phase 2) bumps the array's write-version, and
/// the dispatch-time gate catches it — the stale inspection evidence is
/// not trusted and the run finishes serial.
#[test]
fn tamper_between_inspection_and_dispatch_is_caught() {
    let _t = serialize();
    let k = kernel_by_name("AMGmk").unwrap();
    let harness = GuardedHarness::new(k.as_ref(), AlgorithmLevel::New);
    let exec = GuardedExecutor::new(harness.check()).unwrap();
    let pool = ThreadPool::new(2);
    let mut inst = k.prepare("test");

    let bindings = inst.runtime_bindings();
    let decision = {
        let arrays = inst.index_arrays();
        exec.decide_recoverable("AMGmk", &bindings, &arrays, Some(&pool))
    };
    assert_eq!(
        decision.verdict.path,
        GuardPath::Parallel,
        "healthy instance must be admitted: {:?}",
        decision.verdict.reason
    );
    assert!(!decision.inspected.is_empty(), "AMGmk has index arrays");

    // A "concurrent writer" strikes between the phases: the existing
    // tamper hook corrupts the index arrays and bumps their versions.
    assert!(inst.tamper_index_arrays());

    let versions_owned: Vec<(String, u64)> = inst
        .index_arrays()
        .iter()
        .map(|v| (v.name.to_string(), v.version))
        .collect();
    let versions: Vec<(&str, u64)> = versions_owned
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();
    let (out, reason) = exec.execute_admitted(
        "AMGmk",
        &decision,
        &versions,
        || Ok("parallel"),
        || {},
        || "serial",
    );
    assert_eq!(out, "serial", "stale evidence must not admit parallel");
    assert!(
        matches!(reason, Some(ExecError::TamperDetected { .. })),
        "{reason:?}"
    );
    assert_eq!(exec.stats().tamper_detections, 1);
}
