//! End-to-end decision matrix: for every registry benchmark, the
//! analysis pipeline must reproduce the expected parallelization outcome
//! (the paper's Figure 17 for the original twelve, the widened pattern
//! language for the extensions):
//!
//! * plain **Cetus** (classical) improves CG, heat-3d, fdtd-2d,
//!   gramschmidt, syrk and MG;
//! * **Cetus+BaseAlgo** additionally handles CHOLMOD-Supernodal and the
//!   strided-recurrence scatter (constant-step SRA);
//! * **Cetus+NewAlgo** additionally promotes AMGmk, SDDMM and UA(transf)
//!   to outer-loop parallelism, proves the CSR-of-CSR two-level
//!   composition, and licenses the guarded prefix recurrence under its
//!   runtime guard;
//! * IS, Incomplete Cholesky and the block-periodic histogram stay
//!   serial everywhere (BlockHist's block parallelism is a runtime
//!   license, not a compile-time decision).
//!
//! A recognition regression on any kernel is a diff in this matrix, not
//! a silent serial fallback.

use subsub::core::{analyze_program, AlgorithmLevel};
use subsub::kernels::{all_kernels, Variant};

/// Maps a program report to the execution variant the harness would pick.
fn variant_for(src: &str, func: &str, level: AlgorithmLevel) -> Variant {
    let report = analyze_program(src, level).unwrap_or_else(|e| panic!("{func}: {e}"));
    let f = report
        .function(func)
        .unwrap_or_else(|| panic!("function {func} not found"));
    match f.last_nest_parallel() {
        None => Variant::Serial,
        Some(l) if l.depth == 0 => Variant::OuterParallel,
        Some(_) => Variant::InnerParallel,
    }
}

/// The expected decision matrix (kernel name → variant per level),
/// transcribing Figure 17.
fn expected(name: &str, level: AlgorithmLevel) -> Variant {
    use AlgorithmLevel::*;
    use Variant::*;
    match (name, level) {
        // Only the new algorithm parallelizes the outer loops of the three
        // headline applications; classical gets the inner loops.
        ("AMGmk" | "SDDMM" | "UA(transf)", New) => OuterParallel,
        ("AMGmk" | "SDDMM" | "UA(transf)", Classic | Base) => InnerParallel,
        // The base algorithm's benchmark.
        ("CHOLMOD-Supernodal", Base | New) => OuterParallel,
        ("CHOLMOD-Supernodal", Classic) => InnerParallel,
        // Classically parallel at the outermost loop.
        ("CG" | "syrk", _) => OuterParallel,
        // Classically parallel at inner (spatial / column) loops.
        ("heat-3d" | "fdtd-2d" | "gramschmidt" | "MG", _) => InnerParallel,
        // No technique helps.
        ("IS" | "Incomplete-Cholesky", _) => Serial,
        // Pattern-language extensions. The composed two-level gather
        // needs LEMMA 1 for its inner level; its use loop has no inner
        // nest, so lower levels get nothing.
        ("CSRoCSR", New) => OuterParallel,
        ("CSRoCSR", Classic | Base) => Serial,
        // Constant-step SRA is a base-algorithm concept.
        ("StridedScatter", Base | New) => OuterParallel,
        ("StridedScatter", Classic) => Serial,
        // The guarded recurrence is a novel concept; classical analysis
        // still parallelizes the affine inner segment loop.
        ("GuardedPrefix", New) => OuterParallel,
        ("GuardedPrefix", Classic | Base) => InnerParallel,
        // Block-monotonicity is a runtime property: serial at compile
        // time at every level.
        ("BlockHist", _) => Serial,
        (other, _) => panic!("unexpected kernel {other}"),
    }
}

#[test]
fn figure17_decision_matrix() {
    let mut failures = Vec::new();
    for k in all_kernels() {
        for level in [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ] {
            let got = variant_for(k.source(), k.func_name(), level);
            let want = expected(k.name(), level);
            if got != want {
                let report = analyze_program(k.source(), level).unwrap();
                failures.push(format!(
                    "{} @ {level}: expected {want}, got {got}\n{report}",
                    k.name()
                ));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The AMGmk decision at the New level carries the paper's runtime check.
#[test]
fn amgmk_new_emits_paper_runtime_check() {
    let k = subsub::kernels::kernel_by_name("AMGmk").unwrap();
    let report = analyze_program(k.source(), AlgorithmLevel::New).unwrap();
    let f = report.function(k.func_name()).unwrap();
    let l = f.last_nest_parallel().unwrap();
    let plan = l.decision.plan().unwrap();
    let check = plan.runtime_check.as_ref().expect("runtime check");
    assert_eq!(check.to_string(), "num_rownnz - 1 <= irownnz_max");
    // The structured check round-trips through its display form.
    assert_eq!(
        subsub::rtcheck::parse_check(&check.to_string()).unwrap(),
        *check
    );
}

/// SDDMM's check matches Section 3.2.
#[test]
fn sddmm_new_emits_paper_runtime_check() {
    let k = subsub::kernels::kernel_by_name("SDDMM").unwrap();
    let report = analyze_program(k.source(), AlgorithmLevel::New).unwrap();
    let f = report.function(k.func_name()).unwrap();
    let l = f.last_nest_parallel().unwrap();
    let plan = l.decision.plan().unwrap();
    let check = plan.runtime_check.as_ref().expect("runtime check");
    assert_eq!(check.to_string(), "n_cols - 1 <= holder_max");
    assert_eq!(
        subsub::rtcheck::parse_check(&check.to_string()).unwrap(),
        *check
    );
}

/// UA(transf) requires no runtime check: the idel bounds are compile-time.
#[test]
fn ua_new_needs_no_runtime_check() {
    let k = subsub::kernels::kernel_by_name("UA(transf)").unwrap();
    let report = analyze_program(k.source(), AlgorithmLevel::New).unwrap();
    let f = report.function(k.func_name()).unwrap();
    let l = f.last_nest_parallel().unwrap();
    assert_eq!(l.depth, 0);
    let plan = l.decision.plan().unwrap();
    assert_eq!(plan.runtime_check, None);
}
