//! Property-based soundness: for randomly generated fill loops, every
//! monotonicity property the analysis claims must hold on a concrete
//! execution of the same source through the C-subset interpreter.
//!
//! The generators cover the paper's pattern families — intermittent
//! counters (LEMMA 1), scalar-recurrence array assignments and array
//! self-recurrences (base algorithm), multi-dimensional fills (LEMMA 2) —
//! including *negative* parameterizations (decreasing steps, mismatched
//! conditions) where the analysis must stay silent or remain correct.

use subsub::cfront::{parse_program, ArrayVal, Machine};
use subsub::core::{analyze_function, AlgorithmLevel, Monotonicity, PropertyDb, PropertyKind};
use subsub::ir::lower_function;
use subsub::sparse::Rng64;
use subsub::symbolic::{Expr, RangeEnv, Symbol, SymbolKind};

/// Analyzes `src` and returns the property DB of its first function.
fn properties_of(src: &str) -> PropertyDb {
    let p = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    let f = lower_function(&p.funcs[0], &p.globals).unwrap();
    analyze_function(&f, AlgorithmLevel::New, &RangeEnv::new()).properties
}

/// Runs `src` in the interpreter with the given setup.
fn execute(src: &str, setup: impl FnOnce(&mut Machine)) -> Machine {
    let p = parse_program(src).unwrap();
    let mut m = Machine::new();
    setup(&mut m);
    m.run(&p.funcs[0])
        .unwrap_or_else(|e| panic!("interp: {e}\n{src}"));
    m
}

/// Evaluates a symbolic bound against the machine's final state:
/// plain symbols are parameters (unchanged for loop-invariant sizes),
/// `x_max` post-loop symbols read the final scalar value.
fn eval_bound(e: &Expr, m: &Machine) -> i64 {
    e.eval(
        &|s: &Symbol| match s.kind {
            SymbolKind::Var | SymbolKind::PostMax => m
                .scalar(&s.name)
                .map(|v| v.as_int())
                .unwrap_or_else(|| panic!("bound symbol {s} unbound")),
            other => panic!("unexpected symbol kind {other:?} in bound"),
        },
        &|_, _| panic!("array read in bound"),
    )
}

/// Checks every claimed property of `array` against the machine state.
fn check_claims(src: &str, m: &Machine, db: &PropertyDb, array: &str) {
    let Some(p) = db.get(array) else { return };
    let lo = eval_bound(&p.index_range.lo, m);
    let mut hi = eval_bound(&p.index_range.hi, m);
    // The paper's `[0 : ic_max]` convention for intermittent sequences
    // includes the one-past-written boundary slot (its runtime check makes
    // the use loop stop before it in practice). The sound claim covers the
    // written prefix: clamp by the final counter value.
    if let PropertyKind::Intermittent { counter } = &p.kind {
        let final_count = m.scalar(counter).map(|v| v.as_int()).unwrap_or(hi + 1);
        hi = hi.min(final_count - 1);
    }
    let a = m
        .array(array)
        .unwrap_or_else(|| panic!("array {array} missing"));
    let strict = p.monotonicity == Monotonicity::StrictlyMonotonic;
    if a.dims.len() == 1 {
        let data = a.to_ints();
        let hi = hi.min(data.len() as i64 - 1);
        let mut prev: Option<i64> = None;
        for i in lo..=hi {
            let v = data[i as usize];
            if let Some(pv) = prev {
                if strict {
                    assert!(pv < v, "{array}[{i}]={v} !> prev {pv} (claimed SMA)\n{src}");
                } else {
                    assert!(pv <= v, "{array}[{i}]={v} < prev {pv} (claimed MA)\n{src}");
                }
            }
            prev = Some(v);
        }
    } else {
        // Range monotonicity w.r.t. dimension p.dim (Definition 1): the
        // [min:max] of slice d must be ≤ (< for SMA) the range of d+1.
        let dim = p.dim;
        let hi = hi.min(a.dims[dim] as i64 - 1);
        let mut prev: Option<(i64, i64)> = None;
        for d in lo..=hi {
            let mut mn = i64::MAX;
            let mut mx = i64::MIN;
            let mut idx = vec![0usize; a.dims.len()];
            collect_slice(a, dim, d as usize, &mut idx, 0, &mut mn, &mut mx);
            if let Some((_, pmx)) = prev {
                if strict {
                    assert!(pmx < mn, "slice {d}: [{mn}..] !> prev max {pmx}\n{src}");
                } else {
                    assert!(pmx <= mn, "slice {d}: [{mn}..] < prev max {pmx}\n{src}");
                }
            }
            prev = Some((mn, mx));
        }
    }
}

fn collect_slice(
    a: &ArrayVal,
    dim: usize,
    fixed: usize,
    idx: &mut Vec<usize>,
    pos: usize,
    mn: &mut i64,
    mx: &mut i64,
) {
    if pos == a.dims.len() {
        let mut flat = 0usize;
        for (i, &d) in idx.iter().zip(&a.dims) {
            flat = flat * d + i;
        }
        let v = a.data[flat].as_int();
        *mn = (*mn).min(v);
        *mx = (*mx).max(v);
        return;
    }
    if pos == dim {
        idx[pos] = fixed;
        collect_slice(a, dim, fixed, idx, pos + 1, mn, mx);
    } else {
        for i in 0..a.dims[pos] {
            idx[pos] = i;
            collect_slice(a, dim, fixed, idx, pos + 1, mn, mx);
        }
    }
}

/// Pseudo-random 0/1 flag vector from a deterministic seed.
fn flags_vec(rng: &mut Rng64, len: usize) -> Vec<i64> {
    (0..len).map(|_| rng.gen_i64(0, 1)).collect()
}

/// LEMMA 1 family: intermittent counter fills. Analysis claims SMA;
/// the concrete prefix must be strictly increasing for any flags.
#[test]
fn intermittent_fill_sound() {
    let mut rng = Rng64::seed_from_u64(101);
    for case in 0..48u64 {
        let n = rng.gen_usize(1, 59);
        let flags = flags_vec(&mut rng, 60);
        let offset = case as i64 % 4;
        let src = format!(
            r#"
            void f(int n, int *flag, int *a) {{
                int i; int m;
                m = 0;
                for (i = 0; i < n; i++) {{
                    if (flag[i] > 0) {{
                        a[m] = i + {offset};
                        m = m + 1;
                    }}
                }}
            }}
            "#
        );
        let db = properties_of(&src);
        assert!(db.get("a").is_some(), "intermittent SMA should be proven");
        let m = execute(&src, |m| {
            m.set_int("n", n as i64);
            m.set_array("flag", ArrayVal::from_ints(&flags[..n.max(1)]));
            m.set_array("a", ArrayVal::int_zeros(vec![n + 8]));
        });
        check_claims(&src, &m, &db, "a");
    }
}

/// SRA family: a[i] = p; p = p + k. The analysis claims MA for k = 0,
/// SMA for k > 0 and nothing for k < 0; whatever it claims must hold.
#[test]
fn sra_fill_sound() {
    let mut rng = Rng64::seed_from_u64(102);
    for k in -3i64..6 {
        for p0 in -5i64..5 {
            let n = rng.gen_usize(1, 49);
            let src = format!(
                r#"
                void f(int n, int *a) {{
                    int i; int p;
                    p = {p0};
                    for (i = 0; i < n; i++) {{
                        a[i] = p;
                        p = p + {k};
                    }}
                }}
                "#
            );
            let db = properties_of(&src);
            if k > 0 {
                assert!(
                    db.get("a")
                        .map(|p| p.monotonicity.is_strict())
                        .unwrap_or(false),
                    "k={k} should give SMA"
                );
            }
            if k < 0 {
                assert!(db.get("a").is_none(), "decreasing must claim nothing");
            }
            let m = execute(&src, |m| {
                m.set_int("n", n as i64);
                m.set_array("a", ArrayVal::int_zeros(vec![n + 1]));
            });
            check_claims(&src, &m, &db, "a");
        }
    }
}

/// Figure 2(b) family: self-recurrence a[i+1] = a[i] + k.
#[test]
fn self_recurrence_sound() {
    let mut rng = Rng64::seed_from_u64(103);
    for k in 0i64..5 {
        for a0 in -4i64..4 {
            let n = rng.gen_usize(1, 39);
            let src = format!(
                r#"
                void f(int n, int *a) {{
                    int i;
                    a[0] = {a0};
                    for (i = 0; i < n; i++) {{
                        a[i+1] = a[i] + {k};
                    }}
                }}
                "#
            );
            let db = properties_of(&src);
            assert!(db.get("a").is_some(), "self-recurrence with k={k} >= 0");
            let m = execute(&src, |m| {
                m.set_int("n", n as i64);
                m.set_array("a", ArrayVal::int_zeros(vec![n + 1]));
            });
            check_claims(&src, &m, &db, "a");
        }
    }
}

/// LEMMA 2 family: ax[iel][j] = alpha*iel + [0 : spread]. The analysis
/// claims (strict) range monotonicity iff alpha + 0 ≥ spread; the
/// concrete slices must satisfy Definition 1.
#[test]
fn multidim_fill_sound() {
    let mut rng = Rng64::seed_from_u64(104);
    for width in 1usize..6 {
        for alpha in [1i64, 2, 3, 5, 8, 13, 21, 29] {
            // Per-j offsets 0..width-1 give the value range [0 : width-1].
            // The whole slice ax[iel][*] is written (as in the UA kernel);
            // Definition 1's `*` ranges over all legal values of the non-
            // monotone dimensions, so the array width matches the loop bound.
            let lelt = rng.gen_usize(1, 11);
            let src = format!(
                r#"
                void f(int LELT, int ax[16][{width}]) {{
                    int iel; int j;
                    for (iel = 0; iel < LELT; iel++) {{
                        for (j = 0; j < {width}; j++) {{
                            ax[iel][j] = {alpha} * iel + j;
                        }}
                    }}
                }}
                "#
            );
            let db = properties_of(&src);
            let spread = width as i64 - 1;
            if alpha > spread {
                assert!(
                    db.get("ax")
                        .map(|p| p.monotonicity.is_strict())
                        .unwrap_or(false),
                    "alpha={alpha} > spread={spread} must give SMA (LEMMA 2)"
                );
            }
            let m = execute(&src, |m| {
                m.set_int("LELT", lelt as i64);
                m.set_array("ax", ArrayVal::int_zeros(vec![16, width]));
            });
            check_claims(&src, &m, &db, "ax");
        }
    }
}

/// Negative family: counter stepped by 2 under the condition, or the
/// write guarded by a different condition — the analysis must not
/// claim LEMMA 1, and anything it does claim must still hold.
#[test]
fn mismatched_patterns_sound() {
    let mut rng = Rng64::seed_from_u64(105);
    for step in 2i64..4 {
        for _ in 0..12 {
            let n = rng.gen_usize(1, 39);
            let flags = flags_vec(&mut rng, 40);
            let src = format!(
                r#"
                void f(int n, int *flag, int *a) {{
                    int i; int m;
                    m = 0;
                    for (i = 0; i < n; i++) {{
                        if (flag[i] > 0) {{
                            a[m] = i;
                            m = m + {step};
                        }}
                    }}
                }}
                "#
            );
            let db = properties_of(&src);
            assert!(
                db.get("a").is_none(),
                "non-unit counter step must not match LEMMA 1"
            );
            let m = execute(&src, |m| {
                m.set_int("n", n as i64);
                m.set_array("flag", ArrayVal::from_ints(&flags[..n]));
                m.set_array("a", ArrayVal::int_zeros(vec![2 * n + 8]));
            });
            check_claims(&src, &m, &db, "a");
        }
    }
}

/// Deterministic cross-check of the three paper kernels: analysis claims
/// verified against interpretation on concrete inputs.
#[test]
fn paper_kernels_claims_hold_concretely() {
    // AMGmk fill.
    let src = r#"
        void f(int num_rows, int *A_i, int *A_rownnz) {
            int i; int adiag; int irownnz;
            irownnz = 0;
            for (i = 0; i < num_rows; i++) {
                adiag = A_i[i+1] - A_i[i];
                if (adiag > 0)
                    A_rownnz[irownnz++] = i;
            }
        }
    "#;
    let db = properties_of(src);
    let m = execute(src, |m| {
        m.set_int("num_rows", 6);
        m.set_array("A_i", ArrayVal::from_ints(&[0, 3, 3, 7, 7, 7, 12]));
        m.set_array("A_rownnz", ArrayVal::int_zeros(vec![6]));
    });
    check_claims(src, &m, &db, "A_rownnz");
    assert_eq!(m.scalar("irownnz").unwrap().as_int(), 3);

    // SDDMM fill.
    let src = r#"
        void fill(int nonzeros, int *col_val, int *col_ptr) {
            int i; int holder; int r;
            holder = 1; col_ptr[0] = 0; r = col_val[0];
            for (i = 0; i < nonzeros; i++) {
                if (col_val[i] != r) {
                    col_ptr[holder++] = i;
                    r = col_val[i];
                }
            }
        }
    "#;
    let db = properties_of(src);
    let m = execute(src, |m| {
        m.set_int("nonzeros", 8);
        m.set_array("col_val", ArrayVal::from_ints(&[0, 0, 1, 1, 1, 3, 3, 5]));
        m.set_array("col_ptr", ArrayVal::int_zeros(vec![9]));
    });
    check_claims(src, &m, &db, "col_ptr");
    assert_eq!(m.scalar("holder").unwrap().as_int(), 4);
}
