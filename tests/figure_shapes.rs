//! Locks the *shape* of every evaluation figure into the test suite: who
//! wins, in which direction the trend goes, and where the crossovers fall.
//! Absolute numbers are machine- and dataset-dependent (see
//! EXPERIMENTS.md); these invariants are what the reproduction claims.

use subsub::core::AlgorithmLevel;
use subsub::kernels::{kernel_by_name, Variant};
use subsub::omprt::{Schedule, ThreadPool};
use subsub_bench::harness::{measured_fork_join, Series};
use subsub_bench::variant_for;

fn series(name: &str, ds: &str, pool: &ThreadPool, fj: f64) -> Series {
    let k = kernel_by_name(name).unwrap();
    Series::new(
        k.as_ref(),
        ds,
        &[
            Variant::Serial,
            Variant::InnerParallel,
            Variant::OuterParallel,
        ],
        pool,
        fj,
    )
}

/// Figure 13's shape: for the three headline benchmarks the outer-parallel
/// strategy beats the classical inner-parallel strategy at every core
/// count, and the gap grows with cores.
#[test]
fn figure13_outer_beats_inner_and_gap_grows() {
    let pool = ThreadPool::new(2);
    let fj = measured_fork_join(&pool);
    for (name, ds) in [("AMGmk", "test"), ("SDDMM", "test"), ("UA(transf)", "test")] {
        let s = series(name, ds, &pool, fj);
        let mut last_gap = 0.0;
        for cores in [4usize, 8, 16] {
            let inner = s.sim(Variant::InnerParallel, cores, Schedule::static_default());
            let outer = s.sim(Variant::OuterParallel, cores, Schedule::static_default());
            let gap = inner / outer;
            assert!(gap > 1.0, "{name}@{cores}: outer must win (gap {gap:.2})");
            assert!(gap >= last_gap, "{name}: gap must grow with cores");
            last_gap = gap;
        }
    }
}

/// Figure 13's anomaly: the classical inner strategy is *slower than
/// serial* for AMGmk (one fork-join per 27-nonzero row).
#[test]
fn figure13_anomaly_inner_slower_than_serial() {
    let pool = ThreadPool::new(2);
    let fj = measured_fork_join(&pool);
    let s = series("AMGmk", "test", &pool, fj);
    let serial = s.sim(Variant::Serial, 16, Schedule::static_default());
    let inner = s.sim(Variant::InnerParallel, 16, Schedule::static_default());
    assert!(
        inner > serial,
        "inner {inner} must be slower than serial {serial}"
    );
}

/// Figure 14's shape: speedup over serial grows monotonically with cores
/// and AMGmk saturates lowest (bandwidth-bound).
#[test]
fn figure14_speedups_grow_and_amgmk_saturates() {
    let pool = ThreadPool::new(2);
    let fj = measured_fork_join(&pool);
    let mut at16 = Vec::new();
    for (name, ds) in [("AMGmk", "test"), ("SDDMM", "test"), ("UA(transf)", "test")] {
        let s = series(name, ds, &pool, fj);
        let mut last = 0.0;
        for cores in [4usize, 8, 16] {
            let t = s.sim(Variant::OuterParallel, cores, Schedule::static_default());
            let sp = s.sim(Variant::Serial, cores, Schedule::static_default()) / t;
            assert!(
                sp >= last - 1e-9,
                "{name}: speedup must not shrink with cores"
            );
            last = sp;
        }
        at16.push((name, last));
    }
    let amgmk = at16.iter().find(|(n, _)| *n == "AMGmk").unwrap().1;
    for (name, sp) in &at16 {
        assert!(
            amgmk <= *sp + 1e-9,
            "AMGmk ({amgmk:.2}) saturates at or below {name} ({sp:.2})"
        );
    }
}

/// Figure 16's shape: dynamic scheduling beats static on the skewed
/// matrices and does not lose (beyond noise) on the balanced one.
#[test]
fn figure16_dynamic_wins_on_skew() {
    let pool = ThreadPool::new(2);
    let fj = measured_fork_join(&pool);
    let k = kernel_by_name("SDDMM").unwrap();
    for (ds, expect_dynamic_win) in [
        ("gsm_106857", true),
        ("inline_1", true),
        ("af_shell1", false),
    ] {
        let s = Series::new(k.as_ref(), ds, &[Variant::OuterParallel], &pool, fj);
        let st = s.sim(Variant::OuterParallel, 16, Schedule::static_default());
        let dy = s.sim(Variant::OuterParallel, 16, Schedule::dynamic_default());
        if expect_dynamic_win {
            assert!(dy < st, "{ds}: dynamic ({dy}) must beat static ({st})");
        } else {
            assert!(dy / st < 1.05, "{ds}: balanced input must be a near-tie");
        }
    }
}

/// Figure 17's shape: at 16 cores, each level's improvement count matches
/// the paper (6, 7, 10 of 12) plus the pattern-language extensions: the
/// strided scatter improves from BaseAlgo up (constant-step SRA is a base
/// concept), and NewAlgo additionally wins the two-level CSR-of-CSR and
/// the guarded prefix (whose classical inner segments are too small to
/// amortize fork-join). BlockHist never improves at compile time — its
/// block parallelism is runtime-licensed. Uses a *fixed* synthetic
/// calibration —
/// one abstract work unit = 1 ns, fork-join = 2 µs (a Xeon-class OpenMP
/// runtime) — so the verdicts are deterministic regardless of machine
/// load; the figure17 binary reports the wall-clock-calibrated picture.
#[test]
fn figure17_improvement_counts() {
    use subsub_bench::harness::{simulate_variant, Calibration};
    use subsub_omprt::SimParams;
    let mut improved = [0usize; 3];
    for k in subsub::kernels::all_kernels() {
        let levels = [
            AlgorithmLevel::Classic,
            AlgorithmLevel::Base,
            AlgorithmLevel::New,
        ];
        let variants: Vec<_> = levels.iter().map(|&l| variant_for(k.as_ref(), l)).collect();
        // The Experiment-2 datasets: test-size problems are too small to
        // amortize fork-join for some classically-parallel kernels.
        let ds = k.datasets()[0];
        let inst = k.prepare(ds);
        let serial_units = subsub::kernels::common::serial_cost(&inst.inner_groups()).max(1.0);
        let cal = Calibration {
            serial_time: serial_units,
            unit: 1.0,
            params: SimParams {
                fork_join: 2_000.0,
                dispatch: 30.0,
                mem_frac: inst.mem_bound_fraction(),
                ..SimParams::default()
            },
        };
        for (i, &v) in variants.iter().enumerate() {
            let t = simulate_variant(inst.as_ref(), v, 16, Schedule::static_default(), &cal);
            if serial_units / t > 1.05 {
                improved[i] += 1;
            }
        }
    }
    assert_eq!(
        improved,
        [6, 8, 13],
        "paper (6, 7, 10 of 12) plus extensions: strided at Base; \
         strided + two-level + guarded at New"
    );
}
