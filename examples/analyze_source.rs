//! Analyze an arbitrary C file from the command line at all three levels.
//!
//! Run with:
//! `cargo run --example analyze_source -- path/to/file.c`
//! (without an argument it analyzes a built-in demo program).

use subsub::core::{analyze_program, AlgorithmLevel};

const DEMO: &str = r#"
void demo(int n, int *cnt, int *pos, double *x) {
    int i; int m;
    m = 0;
    for (i = 0; i < n; i++) {
        if (cnt[i] > 0) {
            pos[m] = i;
            m = m + 1;
        }
    }
    for (i = 0; i < n; i++) {
        x[pos[i]] = x[pos[i]] * 2.0;
    }
}
"#;

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => DEMO.to_string(),
    };
    for level in [
        AlgorithmLevel::Classic,
        AlgorithmLevel::Base,
        AlgorithmLevel::New,
    ] {
        match analyze_program(&src, level) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("analysis failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
