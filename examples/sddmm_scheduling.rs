//! SDDMM and loop scheduling (paper Sections 3.2 and 4.2, Figure 16).
//!
//! The analysis proves `col_ptr` monotonic (non-strict suffices: the
//! per-column nonzero segments are disjoint), parallelizing the outer
//! column loop. Column work then follows the nonzero distribution —
//! skewed for three of the four matrices — so the *schedule* matters:
//! dynamic self-scheduling rebalances what static chunking cannot.
//!
//! Run with: `cargo run --release --example sddmm_scheduling`

use subsub::core::{analyze_program, AlgorithmLevel};
use subsub::kernels::{kernel_by_name, Variant};
use subsub::omprt::{Schedule, ThreadPool};
use subsub::sparse::{Csc, DegreeStats};
use subsub_bench::harness::{calibrate, measured_fork_join, simulate_variant};

fn main() {
    let kernel = kernel_by_name("SDDMM").unwrap();

    println!("=== analysis ===");
    let report = analyze_program(kernel.source(), AlgorithmLevel::New).unwrap();
    let f = report.function(kernel.func_name()).unwrap();
    for p in &f.properties {
        println!("proven: {p}");
    }
    let best = f.last_nest_parallel().unwrap();
    println!("decision: {}\n", best.decision);

    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let fj = measured_fork_join(&pool);

    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>9}",
        "matrix", "imbalance", "static@8", "dynamic@8", "dyn/st"
    );
    for ds in ["gsm_106857", "dielFilterV2clx", "af_shell1", "inline_1"] {
        let spec = subsub::kernels::sddmm::spec_for(ds);
        let m = Csc::from_csr(&spec.build());
        let imb = DegreeStats::of_cols(&m).imbalance();

        let mut inst = kernel.prepare(ds);
        inst.run_serial();
        let reference = inst.checksum();
        inst.reset();
        inst.run(Variant::OuterParallel, &pool, Schedule::dynamic_default());
        assert!(subsub::kernels::common::close(reference, inst.checksum()));

        let cal = calibrate(inst.as_mut(), fj);
        let st = simulate_variant(
            inst.as_ref(),
            Variant::OuterParallel,
            8,
            Schedule::static_default(),
            &cal,
        );
        let dy = simulate_variant(
            inst.as_ref(),
            Variant::OuterParallel,
            8,
            Schedule::dynamic_default(),
            &cal,
        );
        println!(
            "{ds:<18} {imb:>9.2}x {st:>11.4}s {dy:>11.4}s {:>8.2}x",
            st / dy
        );
    }
    println!("\nDynamic scheduling wins exactly where column degrees are skewed");
    println!("(af_shell1's banded structure is already balanced) — Figure 16.");
}
