//! Quickstart: analyze a C loop nest for subscript-array monotonicity and
//! see the parallelization decision.
//!
//! Run with: `cargo run --example quickstart`

use subsub::core::{analyze_program, AlgorithmLevel};

fn main() {
    // A program in the paper's shape: a fill loop defines an index array
    // through an intermittent recurrence, then a compute loop updates a
    // host array through it (`y[ind[i]] += …`).
    let src = r#"
        void kernel(int n, int m_used, int *flag, int *ind, double *y, double *g) {
            int i; int m;
            m = 0;
            for (i = 0; i < n; i++) {
                if (flag[i] > 0) {
                    ind[m] = i;
                    m = m + 1;
                }
            }
            for (i = 0; i < m_used; i++) {
                y[ind[i]] = y[ind[i]] + g[i];
            }
        }
    "#;

    println!("=== input ===\n{src}");

    for level in [
        AlgorithmLevel::Classic,
        AlgorithmLevel::Base,
        AlgorithmLevel::New,
    ] {
        let report = analyze_program(src, level).expect("analysis");
        println!("{report}");
    }

    println!("Classical analysis must assume y[ind[i]] overlaps across iterations.");
    println!("The new algorithm proves `ind` strictly monotonic (LEMMA 1:");
    println!("intermittent monotonicity), hence injective, and parallelizes the");
    println!("second loop with a runtime check on the analysis bound m_max.");
}
