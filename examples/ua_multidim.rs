//! The UA `transf` multi-dimensional analysis (paper Section 3.3).
//!
//! Walks the three-level idel fill nest the way the algorithm does —
//! inside out, collapsing each loop — and shows the Phase-1/Phase-2
//! intermediate results the paper derives, ending with LEMMA 2's verdict:
//! `idel[0:LELT-1][0:5][0:4][0:4] = [0 : 125·(LELT-1)]#(SMA; 0) + [0:124]`.
//!
//! Run with: `cargo run --example ua_multidim`

use subsub::core::{analyze_function, AlgorithmLevel};
use subsub::ir::lower_function;
use subsub::symbolic::RangeEnv;

fn main() {
    let src = r#"
        void init(int LELT, int idel[64][6][5][5]) {
            int iel; int j; int i; int ntemp;
            for (iel = 0; iel < LELT; iel++) {
                ntemp = 125 * iel;
                for (j = 0; j < 5; j++) {
                    for (i = 0; i < 5; i++) {
                        idel[iel][0][j][i] = ntemp + i*5 + j*25 + 4;
                        idel[iel][1][j][i] = ntemp + i*5 + j*25;
                        idel[iel][2][j][i] = ntemp + i + j*25 + 20;
                        idel[iel][3][j][i] = ntemp + i + j*25;
                        idel[iel][4][j][i] = ntemp + i + j*5 + 100;
                        idel[iel][5][j][i] = ntemp + i + j*5;
                    }
                }
            }
        }
    "#;
    println!("=== input (paper Figure 12) ===\n{src}");

    let prog = subsub::cfront::parse_program(src).unwrap();
    let lowered = lower_function(&prog.funcs[0], &prog.globals).unwrap();
    let fa = analyze_function(&lowered, AlgorithmLevel::New, &RangeEnv::new());

    // Phase-1 SVDs per loop, inside out.
    for l in lowered.loops().iter().rev() {
        let la = fa.loop_analysis(l.id).unwrap();
        println!(
            "--- loop {} (index {}) Phase-1 SVD ---",
            l.id, l.original_index
        );
        println!("{}", la.svd.dump());
        let c = &fa.collapsed[&l.id];
        println!("collapsed effects:");
        for w in &c.arrays {
            print!("  {}", w.array);
            for s in &w.subs {
                print!("[{s}]");
            }
            println!(" = {}", w.val);
        }
        for s in &c.scalars {
            println!("  {} = {}", s.name, s.val);
        }
        println!();
    }

    println!("=== final property (LEMMA 2) ===");
    for p in fa.properties.iter() {
        println!("{p}");
    }
    println!("\nStrict range monotonicity w.r.t. dimension 0: element slices");
    println!("are pairwise disjoint, so the outer iel loop of the transf");
    println!("kernel parallelizes without any runtime check.");
}
