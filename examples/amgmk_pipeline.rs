//! The full AMGmk story (paper Section 3.1), end to end:
//!
//! 1. the compile-time pipeline analyzes the inline-expanded AMGmk source
//!    and proves `A_rownnz` strictly monotonic (intermittent, LEMMA 1);
//! 2. the decision selects the outer-parallel SpMV variant with the
//!    runtime check `num_rownnz - 1 <= irownnz_max`;
//! 3. the kernel executes serially, inner-parallel (the classical
//!    decision) and outer-parallel, validating identical results;
//! 4. the calibrated scheduling simulator reports the 4/8/16-core
//!    picture behind Figures 13–15.
//!
//! Run with: `cargo run --release --example amgmk_pipeline`

use subsub::core::{analyze_program, AlgorithmLevel};
use subsub::kernels::{kernel_by_name, Variant};
use subsub::omprt::{Schedule, ThreadPool};

fn main() {
    let kernel = kernel_by_name("AMGmk").expect("registered");

    // --- Compile-time side -------------------------------------------------
    println!("=== analysis (Cetus+NewAlgo) ===");
    let report = analyze_program(kernel.source(), AlgorithmLevel::New).unwrap();
    print!("{report}");
    let f = report.function(kernel.func_name()).unwrap();
    let best = f.last_nest_parallel().expect("outer loop parallel");
    println!("\nchosen loop: {} at depth {}", best.id, best.depth);
    println!("pragma: {}\n", best.decision);

    // --- Runtime side ------------------------------------------------------
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    let mut inst = kernel.prepare("MATRIX1");

    inst.run_serial();
    let reference = inst.checksum();
    println!("serial checksum        : {reference:.6}");

    inst.reset();
    inst.run(Variant::InnerParallel, &pool, Schedule::static_default());
    println!(
        "inner-parallel checksum: {:.6} (classical decision)",
        inst.checksum()
    );

    inst.reset();
    inst.run(Variant::OuterParallel, &pool, Schedule::static_default());
    println!(
        "outer-parallel checksum: {:.6} (new algorithm)\n",
        inst.checksum()
    );

    // --- Simulated multi-core picture --------------------------------------
    use subsub_bench::harness::{calibrate, measured_fork_join, simulate_variant};
    let fj = measured_fork_join(&pool);
    let cal = calibrate(inst.as_mut(), fj);
    println!(
        "measured fork-join: {:.2} µs; serial time {:.4} s",
        fj * 1e6,
        cal.serial_time
    );
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "cores", "serial", "inner-par", "outer-par"
    );
    for cores in [4usize, 8, 16] {
        let s = simulate_variant(
            inst.as_ref(),
            Variant::Serial,
            cores,
            Schedule::static_default(),
            &cal,
        );
        let i = simulate_variant(
            inst.as_ref(),
            Variant::InnerParallel,
            cores,
            Schedule::static_default(),
            &cal,
        );
        let o = simulate_variant(
            inst.as_ref(),
            Variant::OuterParallel,
            cores,
            Schedule::static_default(),
            &cal,
        );
        println!("{cores:<8} {s:>13.4}s {i:>13.4}s {o:>13.4}s");
    }
    println!("\nThe inner strategy pays one fork-join per matrix row — the");
    println!("paper's Figure 13 anomaly; the outer strategy approaches the");
    println!("memory-bandwidth roofline (Figure 14's 3.43x for AMGmk).");
}
